//! Paged virtual memory with RWX permissions.
//!
//! Memory is organized in 4 KiB pages. Every access is permission-checked
//! and an invalid access produces a [`Fault`] describing the address and
//! access kind — the raw material of both crash *and* crash-resistance:
//! the OS personalities decide whether a fault becomes a SIGSEGV, an
//! `-EFAULT` return, or a SEH dispatch.

use std::collections::HashMap;

/// Page size in bytes (4 KiB, like the systems the paper targets).
pub const PAGE_SIZE: u64 = 4096;

/// Page protection bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Prot {
    /// Readable.
    pub r: bool,
    /// Writable.
    pub w: bool,
    /// Executable.
    pub x: bool,
}

impl Prot {
    /// No access (guard page).
    pub const NONE: Prot = Prot {
        r: false,
        w: false,
        x: false,
    };
    /// Read-only.
    pub const R: Prot = Prot {
        r: true,
        w: false,
        x: false,
    };
    /// Read-write.
    pub const RW: Prot = Prot {
        r: true,
        w: true,
        x: false,
    };
    /// Read-execute.
    pub const RX: Prot = Prot {
        r: true,
        w: false,
        x: true,
    };
    /// Read-write-execute (tests only; targets are W^X).
    pub const RWX: Prot = Prot {
        r: true,
        w: true,
        x: true,
    };

    /// Whether the protection admits the given access kind.
    #[inline]
    pub fn allows(self, access: Access) -> bool {
        match access {
            Access::Read => self.r,
            Access::Write => self.w,
            Access::Exec => self.x,
        }
    }
}

impl std::fmt::Display for Prot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.r { 'r' } else { '-' },
            if self.w { 'w' } else { '-' },
            if self.x { 'x' } else { '-' }
        )
    }
}

/// Kind of memory access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Exec,
}

impl std::fmt::Display for Access {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Access::Read => "read",
            Access::Write => "write",
            Access::Exec => "exec",
        })
    }
}

/// An access violation: the address and the attempted access.
///
/// `mapped` distinguishes the two failure modes §VII-C of the paper keys
/// on: a permission fault on *mapped* memory (possibly intentional, e.g.
/// guard regions used for optimization) versus a fault on *unmapped*
/// memory (almost always a bug or a probing attempt).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fault {
    /// Faulting virtual address.
    pub addr: u64,
    /// Attempted access kind.
    pub access: Access,
    /// Whether a page is mapped at the address (permission fault) or not.
    pub mapped: bool,
}

impl std::fmt::Display for Fault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} fault at {:#x} ({})",
            self.access,
            self.addr,
            if self.mapped {
                "protection"
            } else {
                "unmapped"
            }
        )
    }
}

impl std::error::Error for Fault {}

struct Page {
    prot: Prot,
    data: Box<[u8; PAGE_SIZE as usize]>,
}

/// A 64-bit paged address space.
pub struct Memory {
    pages: HashMap<u64, Page>,
    generation: u64,
}

impl Default for Memory {
    fn default() -> Self {
        Memory::new()
    }
}

impl std::fmt::Debug for Memory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memory")
            .field("pages", &self.pages.len())
            .finish()
    }
}

impl Memory {
    /// An empty address space.
    pub fn new() -> Memory {
        Memory {
            pages: HashMap::new(),
            generation: 0,
        }
    }

    /// A counter bumped on every operation that could change executable
    /// bytes or mappings (map/unmap/protect and permission-bypassing
    /// writes). Instruction caches key their validity on it.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Map `[addr, addr+len)` with protection `prot`, zero-filled.
    /// Overlapping existing pages are re-protected, contents preserved.
    pub fn map(&mut self, addr: u64, len: u64, prot: Prot) {
        self.generation += 1;
        let first = addr / PAGE_SIZE;
        let last = (addr + len.max(1) - 1) / PAGE_SIZE;
        for pn in first..=last {
            self.pages
                .entry(pn)
                .or_insert_with(|| Page {
                    prot,
                    data: Box::new([0; PAGE_SIZE as usize]),
                })
                .prot = prot;
        }
    }

    /// Unmap all pages intersecting `[addr, addr+len)`.
    pub fn unmap(&mut self, addr: u64, len: u64) {
        self.generation += 1;
        let first = addr / PAGE_SIZE;
        let last = (addr + len.max(1) - 1) / PAGE_SIZE;
        for pn in first..=last {
            self.pages.remove(&pn);
        }
    }

    /// Change protections on already-mapped pages. Unmapped pages in the
    /// range are ignored.
    pub fn protect(&mut self, addr: u64, len: u64, prot: Prot) {
        self.generation += 1;
        let first = addr / PAGE_SIZE;
        let last = (addr + len.max(1) - 1) / PAGE_SIZE;
        for pn in first..=last {
            if let Some(p) = self.pages.get_mut(&pn) {
                p.prot = prot;
            }
        }
    }

    /// Whether any page is mapped at `addr`.
    #[inline]
    pub fn is_mapped(&self, addr: u64) -> bool {
        self.pages.contains_key(&(addr / PAGE_SIZE))
    }

    /// The protection of the page at `addr`, if mapped.
    pub fn prot_at(&self, addr: u64) -> Option<Prot> {
        self.pages.get(&(addr / PAGE_SIZE)).map(|p| p.prot)
    }

    /// Number of mapped pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Iterate over mapped pages as `(base address, protection)`.
    pub fn pages(&self) -> impl Iterator<Item = (u64, Prot)> + '_ {
        self.pages.iter().map(|(&pn, p)| (pn * PAGE_SIZE, p.prot))
    }

    /// Verify that `[addr, addr+len)` is mapped with permission for
    /// `access` — the `access_ok`/`copy_from_user` style check the Linux
    /// personality uses to return `-EFAULT` instead of faulting.
    ///
    /// # Errors
    ///
    /// Returns the first [`Fault`] in the range.
    pub fn check(&self, addr: u64, len: u64, access: Access) -> Result<(), Fault> {
        if len == 0 {
            return Ok(());
        }
        let first = addr / PAGE_SIZE;
        let last = (addr + len - 1) / PAGE_SIZE;
        for pn in first..=last {
            match self.pages.get(&pn) {
                None => {
                    return Err(Fault {
                        addr: (pn * PAGE_SIZE).max(addr),
                        access,
                        mapped: false,
                    })
                }
                Some(p) if !p.prot.allows(access) => {
                    return Err(Fault {
                        addr: (pn * PAGE_SIZE).max(addr),
                        access,
                        mapped: true,
                    })
                }
                Some(_) => {}
            }
        }
        Ok(())
    }

    /// Read bytes with permission checking.
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] at the first inaccessible byte; `buf` contents
    /// are unspecified on error.
    pub fn read(&self, addr: u64, buf: &mut [u8]) -> Result<(), Fault> {
        self.access(addr, buf.len() as u64, Access::Read, |page, off, i, n| {
            buf[i..i + n].copy_from_slice(&page.data[off..off + n]);
        })
    }

    /// Write bytes with permission checking.
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] at the first inaccessible byte. Writes are not
    /// transactional: bytes before the fault may have been written.
    pub fn write(&mut self, addr: u64, buf: &[u8]) -> Result<(), Fault> {
        self.access_mut(addr, buf.len() as u64, Access::Write, |page, off, i, n| {
            page.data[off..off + n].copy_from_slice(&buf[i..i + n]);
        })
    }

    /// Fetch instruction bytes (exec permission); reads up to `buf.len()`
    /// bytes, returning how many were readable. Zero readable bytes at
    /// `addr` is a fault.
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] if the first byte is not executable.
    pub fn fetch(&self, addr: u64, buf: &mut [u8]) -> Result<usize, Fault> {
        let mut done = 0usize;
        while done < buf.len() {
            let a = addr + done as u64;
            let pn = a / PAGE_SIZE;
            let off = (a % PAGE_SIZE) as usize;
            match self.pages.get(&pn) {
                Some(p) if p.prot.allows(Access::Exec) => {
                    let n = (buf.len() - done).min(PAGE_SIZE as usize - off);
                    buf[done..done + n].copy_from_slice(&p.data[off..off + n]);
                    done += n;
                }
                Some(_) if done > 0 => break,
                None if done > 0 => break,
                Some(_) => {
                    return Err(Fault {
                        addr: a,
                        access: Access::Exec,
                        mapped: true,
                    })
                }
                None => {
                    return Err(Fault {
                        addr: a,
                        access: Access::Exec,
                        mapped: false,
                    })
                }
            }
        }
        Ok(done)
    }

    /// Write bytes ignoring permissions (loader / attacker R/W primitive).
    /// Pages must be mapped.
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] if a page in the range is unmapped.
    pub fn poke(&mut self, addr: u64, buf: &[u8]) -> Result<(), Fault> {
        self.generation += 1;
        self.access_mut(addr, buf.len() as u64, Access::Write, |page, off, i, n| {
            page.data[off..off + n].copy_from_slice(&buf[i..i + n]);
        })
        .or_else(|f| {
            if f.mapped {
                // Permission fault: bypass (debugger-style write).
                self.poke_force(addr, buf)
            } else {
                Err(f)
            }
        })
    }

    fn poke_force(&mut self, addr: u64, buf: &[u8]) -> Result<(), Fault> {
        let mut i = 0usize;
        while i < buf.len() {
            let a = addr + i as u64;
            let pn = a / PAGE_SIZE;
            let off = (a % PAGE_SIZE) as usize;
            let page = self.pages.get_mut(&pn).ok_or(Fault {
                addr: a,
                access: Access::Write,
                mapped: false,
            })?;
            let n = (buf.len() - i).min(PAGE_SIZE as usize - off);
            page.data[off..off + n].copy_from_slice(&buf[i..i + n]);
            i += n;
        }
        Ok(())
    }

    /// Read bytes ignoring permissions (debugger / attacker read).
    ///
    /// # Errors
    ///
    /// Returns a [`Fault`] if a page in the range is unmapped.
    pub fn peek(&self, addr: u64, buf: &mut [u8]) -> Result<(), Fault> {
        let mut i = 0usize;
        while i < buf.len() {
            let a = addr + i as u64;
            let pn = a / PAGE_SIZE;
            let off = (a % PAGE_SIZE) as usize;
            let page = self.pages.get(&pn).ok_or(Fault {
                addr: a,
                access: Access::Read,
                mapped: false,
            })?;
            let n = (buf.len() - i).min(PAGE_SIZE as usize - off);
            buf[i..i + n].copy_from_slice(&page.data[off..off + n]);
            i += n;
        }
        Ok(())
    }

    /// Read a little-endian u64.
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`Fault`].
    pub fn read_u64(&self, addr: u64) -> Result<u64, Fault> {
        let mut b = [0u8; 8];
        self.read(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Write a little-endian u64.
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`Fault`].
    pub fn write_u64(&mut self, addr: u64, v: u64) -> Result<(), Fault> {
        self.write(addr, &v.to_le_bytes())
    }

    /// Read a value of `width` bytes (1, 4 or 8), zero-extended.
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`Fault`].
    pub fn read_width(&self, addr: u64, width: usize) -> Result<u64, Fault> {
        let mut b = [0u8; 8];
        self.read(addr, &mut b[..width])?;
        Ok(u64::from_le_bytes(b))
    }

    /// Write the low `width` bytes of `v`.
    ///
    /// # Errors
    ///
    /// Propagates the underlying [`Fault`].
    pub fn write_width(&mut self, addr: u64, v: u64, width: usize) -> Result<(), Fault> {
        self.write(addr, &v.to_le_bytes()[..width])
    }

    fn access(
        &self,
        addr: u64,
        len: u64,
        access: Access,
        mut f: impl FnMut(&Page, usize, usize, usize),
    ) -> Result<(), Fault> {
        let mut i = 0usize;
        while (i as u64) < len {
            let a = addr + i as u64;
            let pn = a / PAGE_SIZE;
            let off = (a % PAGE_SIZE) as usize;
            match self.pages.get(&pn) {
                None => {
                    return Err(Fault {
                        addr: a,
                        access,
                        mapped: false,
                    })
                }
                Some(p) if !p.prot.allows(access) => {
                    return Err(Fault {
                        addr: a,
                        access,
                        mapped: true,
                    })
                }
                Some(p) => {
                    let n = (len as usize - i).min(PAGE_SIZE as usize - off);
                    f(p, off, i, n);
                    i += n;
                }
            }
        }
        Ok(())
    }

    fn access_mut(
        &mut self,
        addr: u64,
        len: u64,
        access: Access,
        mut f: impl FnMut(&mut Page, usize, usize, usize),
    ) -> Result<(), Fault> {
        let mut i = 0usize;
        while (i as u64) < len {
            let a = addr + i as u64;
            let pn = a / PAGE_SIZE;
            let off = (a % PAGE_SIZE) as usize;
            match self.pages.get_mut(&pn) {
                None => {
                    return Err(Fault {
                        addr: a,
                        access,
                        mapped: false,
                    })
                }
                Some(p) if !p.prot.allows(access) => {
                    return Err(Fault {
                        addr: a,
                        access,
                        mapped: true,
                    })
                }
                Some(p) => {
                    let n = (len as usize - i).min(PAGE_SIZE as usize - off);
                    f(p, off, i, n);
                    i += n;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_read_write() {
        let mut m = Memory::new();
        m.map(0x1000, 0x2000, Prot::RW);
        m.write_u64(0x1ff8, 0xdead_beef).unwrap();
        assert_eq!(m.read_u64(0x1ff8).unwrap(), 0xdead_beef);
        // Cross-page write.
        m.write(0x1fff, &[1, 2, 3]).unwrap();
        let mut b = [0u8; 3];
        m.read(0x1fff, &mut b).unwrap();
        assert_eq!(b, [1, 2, 3]);
    }

    #[test]
    fn unmapped_faults() {
        let m = Memory::new();
        let err = m.read_u64(0x5000).unwrap_err();
        assert_eq!(
            err,
            Fault {
                addr: 0x5000,
                access: Access::Read,
                mapped: false
            }
        );
    }

    #[test]
    fn permission_faults() {
        let mut m = Memory::new();
        m.map(0x1000, 0x1000, Prot::R);
        assert!(m.read_u64(0x1000).is_ok());
        let err = m.write_u64(0x1000, 1).unwrap_err();
        assert!(err.mapped);
        assert_eq!(err.access, Access::Write);
    }

    #[test]
    fn exec_fetch_respects_x() {
        let mut m = Memory::new();
        m.map(0x1000, 0x1000, Prot::RW);
        let mut buf = [0u8; 15];
        let err = m.fetch(0x1000, &mut buf).unwrap_err();
        assert_eq!(err.access, Access::Exec);
        assert!(err.mapped);
        m.protect(0x1000, 0x1000, Prot::RX);
        assert_eq!(m.fetch(0x1000, &mut buf).unwrap(), 15);
    }

    #[test]
    fn fetch_truncates_at_boundary() {
        let mut m = Memory::new();
        m.map(0x1000, 0x1000, Prot::RX);
        let mut buf = [0u8; 15];
        // 10 bytes before the end of the mapped page.
        let n = m.fetch(0x1ff6, &mut buf).unwrap();
        assert_eq!(n, 10);
    }

    #[test]
    fn check_range() {
        let mut m = Memory::new();
        m.map(0x1000, 0x1000, Prot::RW);
        assert!(m.check(0x1000, 0x1000, Access::Read).is_ok());
        assert!(m.check(0x1800, 0x1000, Access::Read).is_err()); // crosses into unmapped
        assert!(m.check(0x1000, 0, Access::Write).is_ok()); // empty range
    }

    #[test]
    fn unmap_removes_pages() {
        let mut m = Memory::new();
        m.map(0x1000, 0x3000, Prot::RW);
        m.unmap(0x2000, 0x1000);
        assert!(m.is_mapped(0x1000));
        assert!(!m.is_mapped(0x2000));
        assert!(m.is_mapped(0x3000));
    }

    #[test]
    fn peek_poke_bypass_permissions() {
        let mut m = Memory::new();
        m.map(0x1000, 0x1000, Prot::R);
        m.poke(0x1000, &[0x41]).unwrap();
        let mut b = [0u8];
        m.peek(0x1000, &mut b).unwrap();
        assert_eq!(b[0], 0x41);
        // But unmapped still faults.
        assert!(m.poke(0x9000, &[0]).is_err());
        assert!(m.peek(0x9000, &mut b).is_err());
    }

    #[test]
    fn remap_preserves_contents() {
        let mut m = Memory::new();
        m.map(0x1000, 0x1000, Prot::RW);
        m.write_u64(0x1000, 42).unwrap();
        m.map(0x1000, 0x1000, Prot::R); // re-protect via map
        assert_eq!(m.read_u64(0x1000).unwrap(), 42);
        assert!(m.write_u64(0x1000, 1).is_err());
    }

    #[test]
    fn fault_display() {
        let f = Fault {
            addr: 0x1234,
            access: Access::Write,
            mapped: false,
        };
        assert_eq!(f.to_string(), "write fault at 0x1234 (unmapped)");
    }
}
