//! Instrumentation hooks — the emulator's equivalent of Pin/DynamoRIO.
//!
//! A [`Hook`] observes retired instructions, data accesses and control
//! transfers. The taint engine, the execution-path harvester and the
//! fault-rate detector are all implemented as hooks, mirroring how the
//! paper's tooling instruments real binaries.

use crate::cpu::Cpu;
use crate::mem::Memory;
use cr_isa::Inst;
use std::collections::HashSet;

/// Observer of a CPU's execution.
///
/// All methods have empty default bodies so hooks only implement what
/// they need. Methods are called *during* [`Cpu::step`]:
///
/// * [`Hook::on_inst`] before the instruction's effects are applied —
///   with *mutable* memory access, so fault-injection monitors (pointer
///   invalidation, §IV-A of the paper) can be built as hooks;
/// * [`Hook::on_mem_read`]/[`Hook::on_mem_write`] after a successful
///   data access (faulting accesses never reach the hook);
/// * [`Hook::on_call`]/[`Hook::on_ret`] when the transfer is committed.
pub trait Hook {
    /// An instruction at `va` (of encoded length `len`) is about to
    /// execute. `mem` is the live address space; mutating it *before* the
    /// instruction runs is the supported fault-injection mechanism.
    fn on_inst(&mut self, cpu: &Cpu, mem: &mut Memory, inst: &Inst, va: u64, len: usize) {
        let _ = (cpu, mem, inst, va, len);
    }

    /// `len` bytes were read from `va`.
    fn on_mem_read(&mut self, cpu: &Cpu, va: u64, len: usize) {
        let _ = (cpu, va, len);
    }

    /// `len` bytes were written to `va`.
    fn on_mem_write(&mut self, cpu: &Cpu, va: u64, len: usize) {
        let _ = (cpu, va, len);
    }

    /// A call retired: return address `ret_to`, destination `target`.
    fn on_call(&mut self, cpu: &Cpu, ret_to: u64, target: u64) {
        let _ = (cpu, ret_to, target);
    }

    /// A return retired to `ret_to`.
    fn on_ret(&mut self, cpu: &Cpu, ret_to: u64) {
        let _ = (cpu, ret_to);
    }
}

/// A hook that observes nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullHook;

impl Hook for NullHook {}

/// Records basic-block-ish coverage: every executed instruction address,
/// plus the dynamic call edges. The exception-handler analysis
/// cross-references guarded code regions against `visited` exactly like
/// the paper cross-references DynamoRIO traces (§V-C).
#[derive(Debug, Clone, Default)]
pub struct CoverageHook {
    /// Every instruction address that retired.
    pub visited: HashSet<u64>,
    /// Dynamic call edges `(call site return address, callee)`.
    pub calls: Vec<(u64, u64)>,
    /// Current call stack (return addresses), innermost last.
    pub call_stack: Vec<u64>,
}

impl CoverageHook {
    /// An empty coverage recorder.
    pub fn new() -> CoverageHook {
        CoverageHook::default()
    }

    /// Whether any address in `[begin, end)` was executed.
    pub fn visited_range(&self, begin: u64, end: u64) -> bool {
        // Sets are small relative to ranges in our workloads; iterate set.
        self.visited.iter().any(|&va| va >= begin && va < end)
    }
}

impl Hook for CoverageHook {
    fn on_inst(&mut self, _cpu: &Cpu, _mem: &mut Memory, _inst: &Inst, va: u64, _len: usize) {
        self.visited.insert(va);
    }

    fn on_call(&mut self, _cpu: &Cpu, ret_to: u64, target: u64) {
        self.calls.push((ret_to, target));
        self.call_stack.push(ret_to);
    }

    fn on_ret(&mut self, _cpu: &Cpu, ret_to: u64) {
        // Pop until we find the matching frame (tolerates tail calls).
        while let Some(&top) = self.call_stack.last() {
            self.call_stack.pop();
            if top == ret_to {
                break;
            }
        }
    }
}

/// Chains two hooks, invoking both.
#[derive(Debug, Default)]
pub struct PairHook<A, B>(pub A, pub B);

impl<A: Hook, B: Hook> Hook for PairHook<A, B> {
    fn on_inst(&mut self, cpu: &Cpu, mem: &mut Memory, inst: &Inst, va: u64, len: usize) {
        self.0.on_inst(cpu, mem, inst, va, len);
        self.1.on_inst(cpu, mem, inst, va, len);
    }

    fn on_mem_read(&mut self, cpu: &Cpu, va: u64, len: usize) {
        self.0.on_mem_read(cpu, va, len);
        self.1.on_mem_read(cpu, va, len);
    }

    fn on_mem_write(&mut self, cpu: &Cpu, va: u64, len: usize) {
        self.0.on_mem_write(cpu, va, len);
        self.1.on_mem_write(cpu, va, len);
    }

    fn on_call(&mut self, cpu: &Cpu, ret_to: u64, target: u64) {
        self.0.on_call(cpu, ret_to, target);
        self.1.on_call(cpu, ret_to, target);
    }

    fn on_ret(&mut self, cpu: &Cpu, ret_to: u64) {
        self.0.on_ret(cpu, ret_to);
        self.1.on_ret(cpu, ret_to);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cpu::{Cpu, Exit};
    use crate::mem::{Memory, Prot};
    use cr_isa::Asm;

    #[test]
    fn coverage_records_calls_and_visits() {
        let mut a = Asm::new(0x1000);
        let f = a.fresh();
        a.call_label(f);
        a.hlt();
        a.bind(f);
        a.name("callee", f);
        a.ret();
        let asm = a.assemble().unwrap();
        let mut mem = Memory::new();
        mem.map(0x1000, 0x1000, Prot::RX);
        mem.poke(0x1000, &asm.code).unwrap();
        mem.map(0xF000, 0x1000, Prot::RW);
        let mut cpu = Cpu::new();
        cpu.rip = 0x1000;
        cpu.set_reg(cr_isa::Reg::Rsp, 0xFF00);
        let mut cov = CoverageHook::new();
        loop {
            match cpu.step(&mut mem, &mut cov) {
                Exit::Normal => {}
                Exit::Halt => break,
                e => panic!("unexpected {e:?}"),
            }
        }
        assert!(cov.visited.contains(&0x1000));
        assert_eq!(cov.calls.len(), 1);
        assert_eq!(cov.calls[0].1, asm.sym("callee"));
        assert!(cov.visited_range(asm.sym("callee"), asm.sym("callee") + 1));
        assert!(cov.call_stack.is_empty(), "ret must pop the frame");
    }
}
