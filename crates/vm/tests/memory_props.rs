//! Property tests over the paged memory model — the foundation every
//! fault-semantics claim rests on.

use cr_vm::{Access, Memory, Prot, PAGE_SIZE};
use proptest::prelude::*;

fn arb_prot() -> impl Strategy<Value = Prot> {
    prop_oneof![
        Just(Prot::NONE),
        Just(Prot::R),
        Just(Prot::RW),
        Just(Prot::RX),
        Just(Prot::RWX),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn write_read_roundtrip(
        page in 1u64..0x1000,
        off in 0u64..(PAGE_SIZE - 64),
        data in proptest::collection::vec(any::<u8>(), 1..64),
    ) {
        let mut m = Memory::new();
        m.map(page * PAGE_SIZE, PAGE_SIZE * 2, Prot::RW);
        let addr = page * PAGE_SIZE + off;
        m.write(addr, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        m.read(addr, &mut back).unwrap();
        prop_assert_eq!(back, data);
    }

    #[test]
    fn cross_page_writes_are_consistent(
        page in 1u64..0x1000,
        data in proptest::collection::vec(any::<u8>(), 1..256),
    ) {
        // Straddle a page boundary on purpose.
        let mut m = Memory::new();
        m.map(page * PAGE_SIZE, PAGE_SIZE * 2, Prot::RW);
        let addr = page * PAGE_SIZE + PAGE_SIZE - data.len() as u64 / 2 - 1;
        m.write(addr, &data).unwrap();
        let mut back = vec![0u8; data.len()];
        m.read(addr, &mut back).unwrap();
        prop_assert_eq!(back, data);
    }

    #[test]
    fn check_agrees_with_read_write(
        page in 1u64..0x100,
        len in 1u64..(3 * PAGE_SIZE),
        prot in arb_prot(),
    ) {
        let mut m = Memory::new();
        let base = page * PAGE_SIZE;
        m.map(base, PAGE_SIZE, prot);
        // Read agreement.
        let ok_read = m.check(base, len, Access::Read).is_ok();
        let mut buf = vec![0u8; len as usize];
        prop_assert_eq!(ok_read, m.read(base, &mut buf).is_ok());
        // Write agreement.
        let ok_write = m.check(base, len, Access::Write).is_ok();
        prop_assert_eq!(ok_write, m.write(base, &buf).is_ok());
        // Containment: a range fitting the mapped page succeeds iff the
        // protection allows it.
        if len <= PAGE_SIZE {
            prop_assert_eq!(ok_read, prot.r);
            prop_assert_eq!(ok_write, prot.w);
        } else {
            prop_assert!(!ok_read && !ok_write, "range exceeds the mapping");
        }
    }

    #[test]
    fn unmap_restores_fault_behaviour(page in 1u64..0x100) {
        let mut m = Memory::new();
        let base = page * PAGE_SIZE;
        m.map(base, PAGE_SIZE, Prot::RW);
        m.write_u64(base, 7).unwrap();
        m.unmap(base, PAGE_SIZE);
        let err = m.read_u64(base).unwrap_err();
        prop_assert!(!err.mapped);
        // Remapping zeroes contents.
        m.map(base, PAGE_SIZE, Prot::RW);
        prop_assert_eq!(m.read_u64(base).unwrap(), 0);
    }

    #[test]
    fn fault_reports_first_bad_address(
        page in 1u64..0x100,
        len in 1u64..PAGE_SIZE,
    ) {
        let mut m = Memory::new();
        let base = page * PAGE_SIZE;
        m.map(base, PAGE_SIZE, Prot::RW);
        // Read starting in-bounds and running off the end.
        let start = base + PAGE_SIZE - len;
        let mut buf = vec![0u8; (len + 16) as usize];
        let err = m.read(start, &mut buf).unwrap_err();
        prop_assert_eq!(err.addr, base + PAGE_SIZE, "fault at the first unmapped byte");
    }

    #[test]
    fn peek_poke_ignore_permissions_but_not_mapping(
        page in 1u64..0x100,
        prot in arb_prot(),
        v in any::<u64>(),
    ) {
        let mut m = Memory::new();
        let base = page * PAGE_SIZE;
        m.map(base, PAGE_SIZE, prot);
        m.poke(base, &v.to_le_bytes()).unwrap();
        let mut b = [0u8; 8];
        m.peek(base, &mut b).unwrap();
        prop_assert_eq!(u64::from_le_bytes(b), v);
        prop_assert!(m.peek(base + PAGE_SIZE, &mut b).is_err());
    }
}
