//! Tseitin bit-blasting of bitvector constraints to CNF.
//!
//! Turns [`BoolExpr`] constraint sets into [`Cnf`] formulas and decodes
//! satisfying assignments back into per-variable bitvector values. This is
//! the decision procedure behind filter vetting: the only query class the
//! pipeline needs is QF_BV satisfiability, so a ripple-carry/comparator
//! encoding plus DPLL replaces the paper's use of Z3.

use crate::expr::{mask_of, BinOp, BoolExpr, CmpOp, Expr};
use crate::sat::{solve, Cnf, SolveOutcome};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of [`check`] invocations.
///
/// Lets harnesses (the campaign engine's warm-cache acceptance check,
/// benchmarks) assert how much solver work a pipeline actually did —
/// e.g. that a fully cached rerun performs **zero** solver calls.
static SOLVER_CALLS: AtomicU64 = AtomicU64::new(0);

/// Total satisfiability checks performed by this process so far.
pub fn solver_calls() -> u64 {
    SOLVER_CALLS.load(Ordering::Relaxed)
}

/// A satisfying assignment: variable name → value.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Model {
    values: HashMap<String, u64>,
}

impl Model {
    /// Value of `name` (0 if the variable did not occur).
    pub fn get(&self, name: &str) -> u64 {
        self.values.get(name).copied().unwrap_or(0)
    }

    /// Iterate over `(name, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.values.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

/// Result of a satisfiability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a witness model.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
    /// The formula uses a construct the encoder cannot handle
    /// (currently: shifts by non-constant amounts).
    Unknown(&'static str),
}

impl SatResult {
    /// Whether the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

/// Check satisfiability of the conjunction of `constraints`.
pub fn check(constraints: &[BoolExpr]) -> SatResult {
    SOLVER_CALLS.fetch_add(1, Ordering::Relaxed);
    let mut b = Blaster::new();
    let mut roots = Vec::new();
    for c in constraints {
        match c {
            BoolExpr::True => continue,
            BoolExpr::False => return SatResult::Unsat,
            _ => match b.bool_lit(c) {
                Ok(l) => roots.push(l),
                Err(e) => return SatResult::Unknown(e),
            },
        }
    }
    for l in roots {
        b.cnf.clause(&[l]);
    }
    match solve(&b.cnf) {
        SolveOutcome::Unsat => SatResult::Unsat,
        SolveOutcome::BudgetExhausted => SatResult::Unknown("SAT decision budget exhausted"),
        SolveOutcome::Sat(assign) => {
            let mut model = Model::default();
            for (name, (bits, lits)) in &b.vars {
                let mut v = 0u64;
                for (i, &lit) in lits.iter().enumerate() {
                    if assign[(lit.unsigned_abs() - 1) as usize] {
                        v |= 1 << i;
                    }
                }
                model.values.insert(name.clone(), v & mask_of(*bits));
            }
            SatResult::Sat(model)
        }
    }
}

struct Blaster {
    cnf: Cnf,
    /// Constant-true literal.
    t: i32,
    /// name → (bits, bit literals LSB-first, length = bits).
    vars: HashMap<String, (u32, Vec<i32>)>,
    /// Expression cache by DAG node identity.
    cache: HashMap<usize, Vec<i32>>,
}

type Bits = Vec<i32>;

impl Blaster {
    fn new() -> Blaster {
        let mut cnf = Cnf::new();
        let t = cnf.fresh();
        cnf.clause(&[t]);
        Blaster {
            cnf,
            t,
            vars: HashMap::new(),
            cache: HashMap::new(),
        }
    }

    fn lit_false(&self) -> i32 {
        -self.t
    }

    fn const_bits(&self, v: u64) -> Bits {
        (0..64)
            .map(|i| if v & (1 << i) != 0 { self.t } else { -self.t })
            .collect()
    }

    fn and_gate(&mut self, a: i32, b: i32) -> i32 {
        if a == self.t {
            return b;
        }
        if b == self.t {
            return a;
        }
        if a == -self.t || b == -self.t {
            return -self.t;
        }
        let o = self.cnf.fresh();
        self.cnf.clause(&[-o, a]);
        self.cnf.clause(&[-o, b]);
        self.cnf.clause(&[o, -a, -b]);
        o
    }

    fn or_gate(&mut self, a: i32, b: i32) -> i32 {
        -self.and_gate(-a, -b)
    }

    fn xor_gate(&mut self, a: i32, b: i32) -> i32 {
        if a == self.t {
            return -b;
        }
        if a == -self.t {
            return b;
        }
        if b == self.t {
            return -a;
        }
        if b == -self.t {
            return a;
        }
        let o = self.cnf.fresh();
        self.cnf.clause(&[-o, a, b]);
        self.cnf.clause(&[-o, -a, -b]);
        self.cnf.clause(&[o, -a, b]);
        self.cnf.clause(&[o, a, -b]);
        o
    }

    fn xor3(&mut self, a: i32, b: i32, c: i32) -> i32 {
        let ab = self.xor_gate(a, b);
        self.xor_gate(ab, c)
    }

    fn maj(&mut self, a: i32, b: i32, c: i32) -> i32 {
        let ab = self.and_gate(a, b);
        let ac = self.and_gate(a, c);
        let bc = self.and_gate(b, c);
        let t = self.or_gate(ab, ac);
        self.or_gate(t, bc)
    }

    fn adder(&mut self, a: &Bits, b: &Bits, carry_in: i32) -> Bits {
        let mut out = Vec::with_capacity(64);
        let mut carry = carry_in;
        for i in 0..64 {
            out.push(self.xor3(a[i], b[i], carry));
            carry = self.maj(a[i], b[i], carry);
        }
        out
    }

    fn expr_bits(&mut self, e: &Rc<Expr>) -> Result<Bits, &'static str> {
        let key = Rc::as_ptr(e) as usize;
        if let Some(b) = self.cache.get(&key) {
            return Ok(b.clone());
        }
        let bits = match &**e {
            Expr::Const(v) => self.const_bits(*v),
            Expr::Var { name, bits } => {
                if !self.vars.contains_key(name) {
                    let lits: Vec<i32> = (0..*bits).map(|_| self.cnf.fresh()).collect();
                    self.vars.insert(name.clone(), (*bits, lits));
                }
                let (nbits, lits) = &self.vars[name];
                let mut full = lits.clone();
                debug_assert_eq!(*nbits as usize, full.len());
                full.resize(64, self.lit_false());
                full
            }
            Expr::Bin(op, a, b) => {
                let ab = self.expr_bits(a)?;
                let bb = self.expr_bits(b)?;
                match op {
                    BinOp::And => (0..64).map(|i| self.and_gate(ab[i], bb[i])).collect(),
                    BinOp::Or => (0..64).map(|i| self.or_gate(ab[i], bb[i])).collect(),
                    BinOp::Xor => (0..64).map(|i| self.xor_gate(ab[i], bb[i])).collect(),
                    BinOp::Add => self.adder(&ab, &bb, self.lit_false()),
                    BinOp::Sub => {
                        let nb: Bits = bb.iter().map(|&l| -l).collect();
                        self.adder(&ab, &nb, self.t)
                    }
                    BinOp::Shl | BinOp::Shr => {
                        let n: usize = b.as_const().ok_or("shift by non-constant amount")? as usize;
                        let mut out = vec![self.lit_false(); 64];
                        for (i, o) in out.iter_mut().enumerate() {
                            let src = if *op == BinOp::Shl {
                                i.checked_sub(n)
                            } else {
                                let j = i + n;
                                (j < 64).then_some(j)
                            };
                            if let Some(s) = src {
                                *o = ab[s];
                            }
                        }
                        out
                    }
                }
            }
            Expr::Not(a) => {
                let ab = self.expr_bits(a)?;
                ab.iter().map(|&l| -l).collect()
            }
        };
        self.cache.insert(key, bits.clone());
        Ok(bits)
    }

    fn eq_lit(&mut self, a: &Bits, b: &Bits, width: u32) -> i32 {
        let mut acc = self.t;
        for i in 0..width as usize {
            let x = self.xor_gate(a[i], b[i]);
            acc = self.and_gate(acc, -x);
        }
        acc
    }

    fn ult_lit(&mut self, a: &Bits, b: &Bits, width: u32) -> i32 {
        // LSB-to-MSB borrow chain: lt = (!a & b) | ((a == b) & lt_prev)
        let mut lt = self.lit_false();
        for i in 0..width as usize {
            let na_and_b = self.and_gate(-a[i], b[i]);
            let eq = -self.xor_gate(a[i], b[i]);
            let keep = self.and_gate(eq, lt);
            lt = self.or_gate(na_and_b, keep);
        }
        lt
    }

    fn bool_lit(&mut self, e: &BoolExpr) -> Result<i32, &'static str> {
        Ok(match e {
            BoolExpr::True => self.t,
            BoolExpr::False => self.lit_false(),
            BoolExpr::Cmp { op, width, a, b } => {
                let ab = self.expr_bits(a)?;
                let bb = self.expr_bits(b)?;
                match op {
                    CmpOp::Eq => self.eq_lit(&ab, &bb, *width),
                    CmpOp::Ne => -self.eq_lit(&ab, &bb, *width),
                    CmpOp::Ult => self.ult_lit(&ab, &bb, *width),
                    CmpOp::Slt => {
                        // Flip sign bits then unsigned compare.
                        let s = (*width - 1) as usize;
                        let mut af = ab.clone();
                        let mut bf = bb.clone();
                        af[s] = -af[s];
                        bf[s] = -bf[s];
                        self.ult_lit(&af, &bf, *width)
                    }
                }
            }
            BoolExpr::And(a, b) => {
                let (la, lb) = (self.bool_lit(a)?, self.bool_lit(b)?);
                self.and_gate(la, lb)
            }
            BoolExpr::Or(a, b) => {
                let (la, lb) = (self.bool_lit(a)?, self.bool_lit(b)?);
                self.or_gate(la, lb)
            }
            BoolExpr::Not(a) => -self.bool_lit(a)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, BoolExpr, CmpOp, Expr};

    fn eq64(a: Rc<Expr>, b: Rc<Expr>) -> BoolExpr {
        BoolExpr::cmp(CmpOp::Eq, 64, a, b)
    }

    #[test]
    fn var_equality_model() {
        let x = Expr::var("x", 32);
        let r = check(&[eq64(x, Expr::c(0xC000_0005))]);
        match r {
            SatResult::Sat(m) => assert_eq!(m.get("x"), 0xC000_0005),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn var_width_bounds_values() {
        // An 8-bit variable can never equal 0x100.
        let x = Expr::var("x", 8);
        assert_eq!(check(&[eq64(x, Expr::c(0x100))]), SatResult::Unsat);
    }

    #[test]
    fn addition_is_correct() {
        let x = Expr::var("x", 64);
        let y = Expr::var("y", 64);
        let sum = Expr::bin(BinOp::Add, x.clone(), y.clone());
        let cs = [
            eq64(x, Expr::c(0xFFFF_FFFF_FFFF_FFF0)),
            eq64(y, Expr::c(0x20)),
            eq64(sum, Expr::c(0x10)), // wraps
        ];
        assert!(check(&cs).is_sat());
    }

    #[test]
    fn subtraction_and_inequality() {
        let x = Expr::var("x", 32);
        let d = Expr::bin(BinOp::Sub, x.clone(), Expr::c(5));
        // x - 5 == 0 and x != 5 is unsat.
        let cs = [
            eq64(d.clone(), Expr::c(0)),
            BoolExpr::cmp(CmpOp::Ne, 64, x.clone(), Expr::c(5)),
        ];
        assert_eq!(check(&cs), SatResult::Unsat);
        let cs = [eq64(d, Expr::c(0))];
        match check(&cs) {
            SatResult::Sat(m) => assert_eq!(m.get("x"), 5),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unsigned_and_signed_compare() {
        let x = Expr::var("x", 8);
        // x < 3 unsigned and x > 0x7f signed-negative impossible together
        // at 8 bits unless... x in {0,1,2} are all non-negative → unsat.
        let cs = [
            BoolExpr::cmp(CmpOp::Ult, 8, x.clone(), Expr::c(3)),
            BoolExpr::cmp(CmpOp::Slt, 8, x.clone(), Expr::c(0)),
        ];
        assert_eq!(check(&cs), SatResult::Unsat);
        // x signed-negative at 8 bits: model has high bit set.
        let cs = [BoolExpr::cmp(CmpOp::Slt, 8, x, Expr::c(0))];
        match check(&cs) {
            SatResult::Sat(m) => assert!(m.get("x") & 0x80 != 0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn masking_dword() {
        // (x & 0xFFFF0000) == 0xC0000000 has solutions with arbitrary low
        // bits; conjoin x == 0xC0000005 to pin one.
        let x = Expr::var("x", 32);
        let masked = Expr::bin(BinOp::And, x.clone(), Expr::c(0xFFFF_0000));
        let cs = [
            eq64(masked, Expr::c(0xC000_0000)),
            eq64(x, Expr::c(0xC000_0005)),
        ];
        assert!(check(&cs).is_sat());
    }

    #[test]
    fn shifts_by_constant() {
        let x = Expr::var("x", 32);
        let sh = Expr::bin(BinOp::Shr, x.clone(), Expr::c(28));
        // high nibble == 0xC constrains x's top bits.
        let cs = [
            eq64(sh, Expr::c(0xC)),
            eq64(x.clone(), Expr::c(0xC000_0005)),
        ];
        assert!(check(&cs).is_sat());
        let cs = [
            eq64(Expr::bin(BinOp::Shr, x.clone(), Expr::c(28)), Expr::c(0xC)),
            eq64(x, Expr::c(0x1000_0005)),
        ];
        assert_eq!(check(&cs), SatResult::Unsat);
    }

    #[test]
    fn shift_by_variable_is_unknown() {
        let x = Expr::var("x", 32);
        let n = Expr::var("n", 32);
        let sh = Rc::new(Expr::Bin(BinOp::Shl, x, n));
        match check(&[eq64(sh, Expr::c(4))]) {
            SatResult::Unknown(_) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn or_and_not_structure() {
        // (x == 1 ∨ x == 2) ∧ ¬(x == 1) → x == 2.
        let x = Expr::var("x", 32);
        let c = BoolExpr::and(
            BoolExpr::or(eq64(x.clone(), Expr::c(1)), eq64(x.clone(), Expr::c(2))),
            BoolExpr::not(eq64(x, Expr::c(1))),
        );
        match check(&[c]) {
            SatResult::Sat(m) => assert_eq!(m.get("x"), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn model_satisfies_constraints() {
        // Randomized end-to-end sanity: every SAT model must evaluate true.
        let x = Expr::var("x", 16);
        let y = Expr::var("y", 16);
        let cs = [
            BoolExpr::cmp(CmpOp::Ult, 16, x.clone(), y.clone()),
            BoolExpr::cmp(
                CmpOp::Eq,
                16,
                Expr::bin(BinOp::And, Expr::bin(BinOp::Add, x, y), Expr::c(0xFF)),
                Expr::c(0x42),
            ),
        ];
        match check(&cs) {
            SatResult::Sat(m) => {
                for c in &cs {
                    assert!(c.eval(&|n| m.get(n)), "model must satisfy {c:?}");
                }
            }
            other => panic!("{other:?}"),
        }
    }
}
