//! Tseitin bit-blasting of bitvector constraints to CNF.
//!
//! Turns [`BoolExpr`] constraint sets into [`Cnf`] formulas and decodes
//! satisfying assignments back into per-variable bitvector values. This is
//! the decision procedure behind filter vetting: the only query class the
//! pipeline needs is QF_BV satisfiability, so a ripple-carry/comparator
//! encoding plus DPLL replaces the paper's use of Z3.
//!
//! The procedure runs on interned terms (see [`crate::term`]): each
//! query is folded into a persistent per-thread [`TermArena`], so the
//! encoder keys its cache by `u32` term id instead of hashing whole
//! subtrees, structurally equal subterms are encoded once regardless of
//! how the `Rc` DAG was built, and the per-worker scratch (arena,
//! clause buffer, literal pools) is reused across queries. Beneath the
//! caller-visible verdict caches sits a process-wide **normalized-query
//! memo**: the constraint set is canonicalized with variables renamed
//! in first-occurrence order, and structurally identical queries — the
//! same filter logic duplicated across modules under different byte
//! encodings or variable names — are answered without blasting or
//! solving. The memo is sound because blasting and solving are pure
//! deterministic functions of the normalized structure.

use crate::expr::{mask_of, BinOp, BoolExpr, CmpOp, Expr};
use crate::sat::{solve, solve_reference, Cnf, IncrementalSat, SolveOutcome};
use crate::term::{
    sym_intern, sym_lookup, sym_name, BoolId, BoolNode, SymId, TermArena, TermId, TermNode,
};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, HashMap};
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Process-wide count of [`check`] invocations.
///
/// Lets harnesses (the campaign engine's warm-cache acceptance check,
/// benchmarks) assert how much solver work a pipeline actually did —
/// e.g. that a fully cached rerun performs **zero** solver calls. Memo
/// hits still count: they are check invocations, answered cheaply.
static SOLVER_CALLS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of normalized-query memo probes.
static MEMO_LOOKUPS: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of normalized-query memo hits.
static MEMO_HITS: AtomicU64 = AtomicU64::new(0);

/// Total satisfiability checks performed by this process so far.
pub fn solver_calls() -> u64 {
    SOLVER_CALLS.load(Ordering::Relaxed)
}

/// Total normalized-query memo probes so far.
pub fn memo_lookups() -> u64 {
    MEMO_LOOKUPS.load(Ordering::Relaxed)
}

/// Total normalized-query memo hits so far.
pub fn memo_hits() -> u64 {
    MEMO_HITS.load(Ordering::Relaxed)
}

/// Memoized outcome of one normalized query. Sat models are stored by
/// normalized variable index and renamed back on a hit.
#[derive(Debug, Clone)]
enum MemoEntry {
    Sat(Vec<u64>),
    Unsat,
    Unknown(&'static str),
}

/// One memo slot: the cached outcome plus the global insertion
/// generation, so batch-scoped readers (the parallel explorer's
/// canonical counter replay) can tell entries that predate their batch
/// from entries raced in by a sibling worker mid-batch.
#[derive(Debug, Clone)]
struct MemoSlot {
    gen: u64,
    entry: MemoEntry,
}

/// Shard fanout of the normalized-query memo. Fixed power of two so the
/// shard of a key is a mask, not a modulo.
const MEMO_SHARDS: usize = 16;

/// The process-wide normalized-query memo, sharded by key hash so
/// concurrent exploration workers contend on 1/16th of a lock instead
/// of one global one. `BTreeMap` because its empty constructor is
/// `const`; keys are full canonical serializations (not hashes), so a
/// hit is a structural identity, not a probabilistic one.
static QUERY_MEMO: [Mutex<BTreeMap<Vec<u8>, MemoSlot>>; MEMO_SHARDS] =
    [const { Mutex::new(BTreeMap::new()) }; MEMO_SHARDS];

/// Monotone insertion clock for [`MemoSlot::gen`].
static MEMO_GEN: AtomicU64 = AtomicU64::new(0);

/// FNV-1a over the canonical key — stable, dependency-free, and good
/// enough to spread structurally distinct queries across shards.
fn memo_shard(key: &[u8]) -> usize {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in key {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    (h as usize) & (MEMO_SHARDS - 1)
}

/// Probe the memo for `key`, returning the cached outcome and its
/// insertion generation.
fn memo_probe(key: &[u8]) -> Option<MemoSlot> {
    QUERY_MEMO[memo_shard(key)]
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .get(key)
        .cloned()
}

/// Insert an outcome for `key`, first-wins: if a sibling worker raced
/// the same normalized query in, its entry (an identical verdict — the
/// memo is a pure function of the key) is kept.
fn memo_insert(key: Vec<u8>, entry: MemoEntry) {
    let gen = MEMO_GEN.fetch_add(1, Ordering::Relaxed) + 1;
    QUERY_MEMO[memo_shard(&key)]
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .entry(key)
        .or_insert(MemoSlot { gen, entry });
}

/// Current memo insertion generation — the epoch a logged batch opens
/// with (see [`query_log_begin`]).
pub(crate) fn memo_generation() -> u64 {
    MEMO_GEN.load(Ordering::Relaxed)
}

/// Drop every entry in the normalized-query memo. Benchmarks use this
/// to measure honestly cold runs; production code never needs it.
pub fn reset_query_memo() {
    for shard in &QUERY_MEMO {
        shard.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

/// One solver invocation, as seen by the per-thread query log.
///
/// `Short` is a call that never reached the memo (a constraint interned
/// to constant false, or the reference pipeline); `Probed` carries the
/// canonical key and whether the entry it found predates the logging
/// batch. The parallel explorer replays these in canonical path order
/// to reconstruct the solver/lookup/hit counters a sequential quiet
/// process would have reported — the process-global counters above keep
/// counting *actual* work, which under speculation is more.
#[derive(Debug, Clone)]
pub(crate) enum QueryEvent {
    Short,
    Probed { key: Vec<u8>, pre_existing: bool },
}

struct QueryLog {
    enabled: bool,
    /// Memo generation at batch start: entries at or below it were
    /// inserted before the batch began.
    epoch: u64,
    events: Vec<QueryEvent>,
}

thread_local! {
    static REFERENCE: Cell<bool> = const { Cell::new(false) };
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::new());
    static QUERY_LOG: RefCell<QueryLog> = const {
        RefCell::new(QueryLog { enabled: false, epoch: 0, events: Vec::new() })
    };
}

/// Start logging this thread's solver invocations against memo `epoch`
/// (from [`memo_generation`] at batch start).
pub(crate) fn query_log_begin(epoch: u64) {
    QUERY_LOG.with(|l| {
        let mut l = l.borrow_mut();
        l.enabled = true;
        l.epoch = epoch;
        l.events.clear();
    });
}

/// Drain the events logged since the last drain (or [`query_log_begin`]).
pub(crate) fn query_log_drain() -> Vec<QueryEvent> {
    QUERY_LOG.with(|l| std::mem::take(&mut l.borrow_mut().events))
}

/// Stop logging on this thread and discard any undrained events.
pub(crate) fn query_log_end() {
    QUERY_LOG.with(|l| {
        let mut l = l.borrow_mut();
        l.enabled = false;
        l.events.clear();
    });
}

fn log_short() {
    QUERY_LOG.with(|l| {
        let mut l = l.borrow_mut();
        if l.enabled {
            l.events.push(QueryEvent::Short);
        }
    });
}

fn log_probe(key: &[u8], gen: Option<u64>) {
    QUERY_LOG.with(|l| {
        let mut l = l.borrow_mut();
        if l.enabled {
            let pre_existing = gen.is_some_and(|g| g <= l.epoch);
            l.events.push(QueryEvent::Probed {
                key: key.to_vec(),
                pre_existing,
            });
        }
    });
}

/// Whether [`with_reference_pipeline`] is active on this thread — the
/// parallel explorer propagates the flag into its workers.
pub(crate) fn reference_pipeline_active() -> bool {
    REFERENCE.with(Cell::get)
}

/// Run `f` with [`check`] routed through the pre-interning pipeline
/// (`Rc`-pointer-keyed blaster, scan-every-clause DPLL, no memo) on
/// this thread. Test and benchmark hook: the differential proptests
/// compare verdicts across both pipelines, and `solver_bench` uses it
/// as the measured baseline.
pub fn with_reference_pipeline<R>(f: impl FnOnce() -> R) -> R {
    REFERENCE.with(|r| {
        let prev = r.replace(true);
        let out = f();
        r.set(prev);
        out
    })
}

/// A satisfying assignment: variable → value. Stores interned
/// [`SymId`]s internally; [`Model::get`] keeps the string interface
/// callers already use.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Model {
    /// `(symbol, value)` pairs, sorted by symbol id.
    values: Vec<(SymId, u64)>,
}

impl Model {
    fn from_pairs(mut values: Vec<(SymId, u64)>) -> Model {
        values.sort_unstable_by_key(|&(s, _)| s);
        Model { values }
    }

    fn get_sym(&self, sym: SymId) -> Option<u64> {
        self.values
            .binary_search_by_key(&sym, |&(s, _)| s)
            .ok()
            .map(|i| self.values[i].1)
    }

    /// Value of `name` (0 if the variable did not occur).
    pub fn get(&self, name: &str) -> u64 {
        sym_lookup(name).and_then(|s| self.get_sym(s)).unwrap_or(0)
    }

    /// Iterate over `(name, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.values.iter().map(|&(s, v)| (sym_name(s), v))
    }
}

/// Result of a satisfiability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a witness model.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
    /// The formula uses a construct the encoder cannot handle
    /// (currently: shifts by non-constant amounts) or the solver gave
    /// up within its budget.
    Unknown(&'static str),
}

impl SatResult {
    /// Whether the result is `Sat`.
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

/// Check satisfiability of the conjunction of `constraints`.
pub fn check(constraints: &[BoolExpr]) -> SatResult {
    SOLVER_CALLS.fetch_add(1, Ordering::Relaxed);
    if REFERENCE.with(Cell::get) {
        log_short();
        return reference::check_reference_inner(constraints);
    }
    SCRATCH.with(|s| check_interned(&mut s.borrow_mut(), constraints))
}

/// Check satisfiability through the pre-interning pipeline directly.
/// Same verdict semantics as [`check`] (see [`with_reference_pipeline`]).
///
/// Routed through the arena-native entry first: the constraints are
/// interned into this thread's [`TermArena`] exactly as [`check`] would
/// intern them, so a differential run compares the two pipelines over
/// *identical* interner state instead of leaving the production arena
/// cold while the reference runs in its own private world.
pub fn check_reference(constraints: &[BoolExpr]) -> SatResult {
    SOLVER_CALLS.fetch_add(1, Ordering::Relaxed);
    log_short();
    SCRATCH.with(|s| {
        let s = &mut *s.borrow_mut();
        // Per-call pointer memo, same contract as `begin_query`: `Rc`
        // identity must not outlive the call.
        s.ptr_memo.clear();
        for c in constraints {
            let _ = s.intern_bool(c);
        }
    });
    reference::check_reference_inner(constraints)
}

/// Size of this thread's term interner as `(terms, bools)`.
///
/// Test hook for the arena-native routing contract: after
/// [`check_reference`] has interned a constraint set, a production
/// [`check`] of the same set must not grow the arena further.
pub fn thread_arena_size() -> (usize, usize) {
    SCRATCH.with(|s| {
        let s = s.borrow();
        (s.arena.num_terms(), s.arena.num_bools())
    })
}

fn check_interned(s: &mut Scratch, constraints: &[BoolExpr]) -> SatResult {
    let mut span = cr_trace::span_advisory(cr_trace::Stage::Symex, "solver.check");
    s.begin_query();
    for c in constraints {
        let id = s.intern_bool(c);
        if id == TermArena::FALSE {
            span.set_detail(|| "memo=short verdict=unsat".into());
            log_short();
            return SatResult::Unsat;
        }
        if id == TermArena::TRUE {
            continue;
        }
        s.roots.push(id);
    }
    let shape = s.arena.normalize(&s.roots);
    MEMO_LOOKUPS.fetch_add(1, Ordering::Relaxed);
    let hit = memo_probe(&shape.key);
    log_probe(&shape.key, hit.as_ref().map(|slot| slot.gen));
    if let Some(slot) = hit {
        MEMO_HITS.fetch_add(1, Ordering::Relaxed);
        span.set_detail(|| format!("memo=hit vars={}", shape.vars.len()));
        return match slot.entry {
            MemoEntry::Unsat => SatResult::Unsat,
            MemoEntry::Unknown(e) => SatResult::Unknown(e),
            MemoEntry::Sat(vals) => SatResult::Sat(Model::from_pairs(
                shape
                    .vars
                    .iter()
                    .zip(vals)
                    .map(|(&(sym, _), v)| (sym, v))
                    .collect(),
            )),
        };
    }
    let result = s.blast_and_solve();
    let entry = match &result {
        SatResult::Unsat => MemoEntry::Unsat,
        SatResult::Unknown(e) => MemoEntry::Unknown(e),
        SatResult::Sat(model) => MemoEntry::Sat(
            shape
                .vars
                .iter()
                .map(|&(sym, _)| model.get_sym(sym).unwrap_or(0))
                .collect(),
        ),
    };
    span.set_detail(|| {
        format!(
            "memo=miss vars={} clauses={}",
            shape.vars.len(),
            s.cnf.num_clauses()
        )
    });
    memo_insert(shape.key, entry);
    result
}

/// One constraint on a [`Session`]'s stack.
enum Pushed {
    /// Interned to `True`: no assumption needed.
    Trivial,
    /// Interned to `False`: the whole stack is UNSAT while this frame
    /// is live.
    False,
    /// A real constraint: interned root and its assumption literal.
    Root(BoolId, i32),
}

/// An incremental satisfiability session: a constraint stack solved by
/// assumptions over persistent two-watched-literal state.
///
/// This is the decision-procedure side of the path explorer's one-door
/// API. Where [`check`] re-blasts every query from scratch, a `Session`
/// owns a private [`Scratch`] whose encoder epoch never advances: every
/// pushed constraint is interned and Tseitin-encoded exactly once into
/// one monotone [`Cnf`], the [`IncrementalSat`] absorbs new clauses
/// append-only, and each [`Session::check`] decides the current stack
/// by passing the live constraint roots as *assumption literals*.
/// Sibling paths that share a constraint prefix therefore share its
/// encoding and its watch lists — popping back to the fork point costs
/// nothing and re-checking the other side re-blasts nothing.
///
/// Soundness of [`Session::pop_to`] without clause retraction: Tseitin
/// clauses only define gate variables (`g ↔ f(inputs)`); a constraint
/// is asserted solely by its root assumption literal, so dropping the
/// frame fully retracts it (see [`IncrementalSat`]).
///
/// Queries still flow through the process-wide normalized-query memo,
/// keyed on the *shape of the whole live constraint stack*, and bump
/// the same [`solver_calls`]/[`memo_lookups`]/[`memo_hits`] counters as
/// [`check`] — warm reruns of an exploration answer every path from
/// the memo with zero solving.
pub struct Session {
    s: Scratch,
    inc: IncrementalSat,
    stack: Vec<Pushed>,
    /// Live `Pushed::False` frames (stack is trivially UNSAT if > 0).
    false_count: usize,
}

impl Default for Session {
    fn default() -> Session {
        Session::new()
    }
}

impl Session {
    /// A fresh session with an empty constraint stack.
    pub fn new() -> Session {
        let mut s = Scratch::new();
        s.begin_query();
        Session {
            s,
            inc: IncrementalSat::new(),
            stack: Vec::new(),
            false_count: 0,
        }
    }

    /// Current stack depth (number of live pushed constraints).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Push `c` onto the constraint stack: intern, encode once, and
    /// record its root as an assumption for subsequent checks.
    ///
    /// # Errors
    ///
    /// If the encoder cannot handle `c` (shift by a non-constant
    /// amount), nothing is pushed and the error is returned — the
    /// caller decides whether the path is abandoned.
    pub fn push(&mut self, c: &BoolExpr) -> Result<(), &'static str> {
        self.s.ptr_memo.clear();
        let id = self.s.intern_bool(c);
        let frame = if id == TermArena::FALSE {
            self.false_count += 1;
            Pushed::False
        } else if id == TermArena::TRUE {
            Pushed::Trivial
        } else {
            let lit = self.s.bool_lit(id)?;
            Pushed::Root(id, lit)
        };
        self.stack.push(frame);
        Ok(())
    }

    /// Pop back to `depth` (as returned by [`Session::depth`] at the
    /// fork point). Retracts every constraint above it; their encodings
    /// stay cached for when a sibling pushes the same structure.
    pub fn pop_to(&mut self, depth: usize) {
        debug_assert!(depth <= self.stack.len(), "pop_to past the stack top");
        for f in self.stack.drain(depth..) {
            if matches!(f, Pushed::False) {
                self.false_count -= 1;
            }
        }
    }

    /// Decide the conjunction of the current stack.
    pub fn check(&mut self) -> SatResult {
        self.check_assuming(&[])
    }

    /// Decide the current stack conjoined with `extras`, without
    /// persisting `extras` on the stack — the explorer's feasibility
    /// probe (`path ∧ branch-cond`) and verdict query
    /// (`path ∧ code = AV ∧ ret ≠ 0`).
    pub fn check_assuming(&mut self, extras: &[BoolExpr]) -> SatResult {
        SOLVER_CALLS.fetch_add(1, Ordering::Relaxed);
        let mut span = cr_trace::span_advisory(cr_trace::Stage::Symex, "solver.check");
        if self.false_count > 0 {
            span.set_detail(|| "memo=short verdict=unsat".into());
            log_short();
            return SatResult::Unsat;
        }
        self.s.ptr_memo.clear();
        let mut roots: Vec<BoolId> = Vec::with_capacity(self.stack.len() + extras.len());
        let mut lits: Vec<i32> = Vec::with_capacity(self.stack.len() + extras.len());
        for f in &self.stack {
            if let Pushed::Root(id, lit) = *f {
                roots.push(id);
                lits.push(lit);
            }
        }
        let stack_roots = roots.len();
        for c in extras {
            let id = self.s.intern_bool(c);
            if id == TermArena::FALSE {
                span.set_detail(|| "memo=short verdict=unsat".into());
                log_short();
                return SatResult::Unsat;
            }
            if id != TermArena::TRUE {
                roots.push(id);
            }
        }
        let shape = self.s.arena.normalize(&roots);
        MEMO_LOOKUPS.fetch_add(1, Ordering::Relaxed);
        let hit = memo_probe(&shape.key);
        log_probe(&shape.key, hit.as_ref().map(|slot| slot.gen));
        if let Some(slot) = hit {
            MEMO_HITS.fetch_add(1, Ordering::Relaxed);
            span.set_detail(|| format!("memo=hit vars={}", shape.vars.len()));
            return match slot.entry {
                MemoEntry::Unsat => SatResult::Unsat,
                MemoEntry::Unknown(e) => SatResult::Unknown(e),
                MemoEntry::Sat(vals) => SatResult::Sat(Model::from_pairs(
                    shape
                        .vars
                        .iter()
                        .zip(vals)
                        .map(|(&(sym, _), v)| (sym, v))
                        .collect(),
                )),
            };
        }
        // Miss: encode the transient extras (stack frames encoded at
        // push time), absorb whatever the encoder appended, and decide
        // under the live assumptions.
        let mut result = None;
        for &id in &roots[stack_roots..] {
            match self.s.bool_lit(id) {
                Ok(l) => lits.push(l),
                Err(e) => {
                    result = Some(SatResult::Unknown(e));
                    break;
                }
            }
        }
        let result = result.unwrap_or_else(|| {
            self.inc.absorb(&self.s.cnf);
            match self.inc.solve_under(&lits) {
                SolveOutcome::Unsat => SatResult::Unsat,
                SolveOutcome::BudgetExhausted => {
                    SatResult::Unknown("SAT decision budget exhausted")
                }
                SolveOutcome::Sat(assign) => {
                    let mut pairs = Vec::with_capacity(self.s.query_vars.len());
                    for qv in &self.s.query_vars {
                        let mut v = 0u64;
                        let lits =
                            &self.s.var_lits[qv.lit_off as usize..(qv.lit_off + qv.bits) as usize];
                        for (i, &lit) in lits.iter().enumerate() {
                            if assign[(lit.unsigned_abs() - 1) as usize] {
                                v |= 1 << i;
                            }
                        }
                        pairs.push((qv.sym, v & mask_of(qv.bits)));
                    }
                    SatResult::Sat(Model::from_pairs(pairs))
                }
            }
        });
        let entry = match &result {
            SatResult::Unsat => MemoEntry::Unsat,
            SatResult::Unknown(e) => MemoEntry::Unknown(e),
            SatResult::Sat(model) => MemoEntry::Sat(
                shape
                    .vars
                    .iter()
                    .map(|&(sym, _)| model.get_sym(sym).unwrap_or(0))
                    .collect(),
            ),
        };
        span.set_detail(|| {
            format!(
                "memo=miss vars={} clauses={}",
                shape.vars.len(),
                self.s.cnf.num_clauses()
            )
        });
        memo_insert(shape.key, entry);
        result
    }
}

/// One query variable: interned name, declared width, and where its
/// fresh bit literals start in [`Scratch::var_lits`].
struct QueryVar {
    sym: SymId,
    bits: u32,
    lit_off: u32,
}

/// Per-thread decision-procedure state, persistent across queries.
///
/// The arena and its id-indexed caches live for the thread; per-query
/// state (clause buffer, literal pools) is reset by [`Scratch::begin_query`]
/// without freeing allocations, and the id-indexed encoder caches are
/// invalidated wholesale by bumping `epoch` instead of clearing.
struct Scratch {
    arena: TermArena,
    /// `Rc::as_ptr` → interned id for the current query only (`Rc`
    /// allocations are reused across queries, so pointer identity must
    /// not outlive the query).
    ptr_memo: HashMap<usize, TermId>,
    /// Interned non-trivial constraint roots of the current query.
    roots: Vec<BoolId>,
    cnf: Cnf,
    /// Constant-true literal of the current query's formula.
    t: i32,
    epoch: u64,
    /// Encoder cache: term id → offset of its 64 bit-literals in `pool`.
    enc_epoch: Vec<u64>,
    enc_off: Vec<u32>,
    /// Encoder cache: bool id → its CNF literal.
    blit_epoch: Vec<u64>,
    blit: Vec<i32>,
    /// Symbol id → index into `query_vars` for the current query.
    var_epoch: Vec<u64>,
    var_slot: Vec<u32>,
    query_vars: Vec<QueryVar>,
    /// Fresh bit literals of every query variable, concatenated.
    var_lits: Vec<i32>,
    /// Bit-literal pool: each encoded term owns 64 consecutive slots.
    pool: Vec<i32>,
}

impl Scratch {
    fn new() -> Scratch {
        Scratch {
            arena: TermArena::new(),
            ptr_memo: HashMap::new(),
            roots: Vec::new(),
            cnf: Cnf::new(),
            t: 0,
            epoch: 0,
            enc_epoch: Vec::new(),
            enc_off: Vec::new(),
            blit_epoch: Vec::new(),
            blit: Vec::new(),
            var_epoch: Vec::new(),
            var_slot: Vec::new(),
            query_vars: Vec::new(),
            var_lits: Vec::new(),
            pool: Vec::new(),
        }
    }

    fn begin_query(&mut self) {
        self.epoch += 1;
        self.ptr_memo.clear();
        self.roots.clear();
        self.query_vars.clear();
        self.var_lits.clear();
        self.pool.clear();
        self.cnf.clear();
        self.t = self.cnf.fresh();
        let t = self.t;
        self.cnf.clause(&[t]);
    }

    fn intern_expr(&mut self, e: &Rc<Expr>) -> TermId {
        let key = Rc::as_ptr(e) as usize;
        if let Some(&id) = self.ptr_memo.get(&key) {
            return id;
        }
        let id = match &**e {
            Expr::Const(v) => self.arena.cst(*v),
            Expr::Var { name, bits } => {
                let sym = sym_intern(name);
                self.arena.var(sym, *bits)
            }
            Expr::Bin(op, a, b) => {
                let ia = self.intern_expr(a);
                let ib = self.intern_expr(b);
                self.arena.bin(*op, ia, ib)
            }
            Expr::Not(a) => {
                let ia = self.intern_expr(a);
                self.arena.not(ia)
            }
        };
        self.ptr_memo.insert(key, id);
        id
    }

    fn intern_bool(&mut self, e: &BoolExpr) -> BoolId {
        match e {
            BoolExpr::True => TermArena::TRUE,
            BoolExpr::False => TermArena::FALSE,
            BoolExpr::Cmp { op, width, a, b } => {
                let ia = self.intern_expr(a);
                let ib = self.intern_expr(b);
                self.arena.cmp(*op, *width, ia, ib)
            }
            BoolExpr::And(a, b) => {
                let ia = self.intern_bool(a);
                let ib = self.intern_bool(b);
                self.arena.and_b(ia, ib)
            }
            BoolExpr::Or(a, b) => {
                let ia = self.intern_bool(a);
                let ib = self.intern_bool(b);
                self.arena.or_b(ia, ib)
            }
            BoolExpr::Not(a) => {
                let ia = self.intern_bool(a);
                self.arena.not_b(ia)
            }
        }
    }

    fn blast_and_solve(&mut self) -> SatResult {
        for i in 0..self.roots.len() {
            let root = self.roots[i];
            match self.bool_lit(root) {
                Ok(l) => self.cnf.clause(&[l]),
                Err(e) => return SatResult::Unknown(e),
            }
        }
        match solve(&self.cnf) {
            SolveOutcome::Unsat => SatResult::Unsat,
            SolveOutcome::BudgetExhausted => SatResult::Unknown("SAT decision budget exhausted"),
            SolveOutcome::Sat(assign) => {
                let mut pairs = Vec::with_capacity(self.query_vars.len());
                for qv in &self.query_vars {
                    let mut v = 0u64;
                    let lits = &self.var_lits[qv.lit_off as usize..(qv.lit_off + qv.bits) as usize];
                    for (i, &lit) in lits.iter().enumerate() {
                        if assign[(lit.unsigned_abs() - 1) as usize] {
                            v |= 1 << i;
                        }
                    }
                    pairs.push((qv.sym, v & mask_of(qv.bits)));
                }
                SatResult::Sat(Model::from_pairs(pairs))
            }
        }
    }

    fn lit_false(&self) -> i32 {
        -self.t
    }

    fn and_gate(&mut self, a: i32, b: i32) -> i32 {
        if a == self.t {
            return b;
        }
        if b == self.t {
            return a;
        }
        if a == -self.t || b == -self.t {
            return -self.t;
        }
        let o = self.cnf.fresh();
        self.cnf.clause(&[-o, a]);
        self.cnf.clause(&[-o, b]);
        self.cnf.clause(&[o, -a, -b]);
        o
    }

    fn or_gate(&mut self, a: i32, b: i32) -> i32 {
        -self.and_gate(-a, -b)
    }

    fn xor_gate(&mut self, a: i32, b: i32) -> i32 {
        if a == self.t {
            return -b;
        }
        if a == -self.t {
            return b;
        }
        if b == self.t {
            return -a;
        }
        if b == -self.t {
            return a;
        }
        let o = self.cnf.fresh();
        self.cnf.clause(&[-o, a, b]);
        self.cnf.clause(&[-o, -a, -b]);
        self.cnf.clause(&[o, -a, b]);
        self.cnf.clause(&[o, a, -b]);
        o
    }

    fn xor3(&mut self, a: i32, b: i32, c: i32) -> i32 {
        let ab = self.xor_gate(a, b);
        self.xor_gate(ab, c)
    }

    fn maj(&mut self, a: i32, b: i32, c: i32) -> i32 {
        let ab = self.and_gate(a, b);
        let ac = self.and_gate(a, c);
        let bc = self.and_gate(b, c);
        let t = self.or_gate(ab, ac);
        self.or_gate(t, bc)
    }

    /// Reserve a fresh 64-slot encoding in `pool`, returning its offset.
    fn alloc_slot(&mut self) -> usize {
        let off = self.pool.len();
        self.pool.resize(off + 64, 0);
        off
    }

    /// Bit literals of a variable for the current query, creating its
    /// fresh CNF variables on first use (keyed by symbol, mirroring the
    /// name-keyed table of the reference blaster).
    fn var_slot_of(&mut self, sym: SymId, bits: u32) -> usize {
        let si = sym.index();
        if self.var_epoch.len() <= si {
            self.var_epoch.resize(si + 1, 0);
            self.var_slot.resize(si + 1, 0);
        }
        if self.var_epoch[si] != self.epoch {
            let lit_off = self.var_lits.len() as u32;
            for _ in 0..bits {
                let l = self.cnf.fresh();
                self.var_lits.push(l);
            }
            self.var_slot[si] = self.query_vars.len() as u32;
            self.query_vars.push(QueryVar { sym, bits, lit_off });
            self.var_epoch[si] = self.epoch;
        }
        self.var_slot[si] as usize
    }

    /// Encode term `id`, returning the offset of its 64 bit-literals
    /// (LSB first) in `pool`. Cached per term id for the query.
    fn expr_bits(&mut self, id: TermId) -> Result<usize, &'static str> {
        let ti = id.index();
        if self.enc_epoch.len() <= ti {
            let n = self.arena.num_terms().max(ti + 1);
            self.enc_epoch.resize(n, 0);
            self.enc_off.resize(n, 0);
        }
        if self.enc_epoch[ti] == self.epoch {
            return Ok(self.enc_off[ti] as usize);
        }
        let off = match self.arena.term(id) {
            TermNode::Const(v) => {
                let off = self.alloc_slot();
                for i in 0..64 {
                    self.pool[off + i] = if v & (1 << i) != 0 { self.t } else { -self.t };
                }
                off
            }
            TermNode::Var { sym, bits } => {
                let slot = self.var_slot_of(sym, bits);
                let qv = &self.query_vars[slot];
                let (lit_off, nbits) = (qv.lit_off as usize, qv.bits as usize);
                let off = self.alloc_slot();
                let f = self.lit_false();
                for i in 0..64 {
                    self.pool[off + i] = if i < nbits {
                        self.var_lits[lit_off + i]
                    } else {
                        f
                    };
                }
                off
            }
            TermNode::Bin(op, a, b) => {
                let ao = self.expr_bits(a)?;
                let bo = self.expr_bits(b)?;
                let mut out = [0i32; 64];
                match op {
                    BinOp::And => {
                        for (i, o) in out.iter_mut().enumerate() {
                            let (x, y) = (self.pool[ao + i], self.pool[bo + i]);
                            *o = self.and_gate(x, y);
                        }
                    }
                    BinOp::Or => {
                        for (i, o) in out.iter_mut().enumerate() {
                            let (x, y) = (self.pool[ao + i], self.pool[bo + i]);
                            *o = self.or_gate(x, y);
                        }
                    }
                    BinOp::Xor => {
                        for (i, o) in out.iter_mut().enumerate() {
                            let (x, y) = (self.pool[ao + i], self.pool[bo + i]);
                            *o = self.xor_gate(x, y);
                        }
                    }
                    BinOp::Add => self.adder_into(ao, bo, false, &mut out),
                    BinOp::Sub => self.adder_into(ao, bo, true, &mut out),
                    BinOp::Shl | BinOp::Shr => {
                        let n = self
                            .arena
                            .const_of(b)
                            .ok_or("shift by non-constant amount")?
                            as usize;
                        let f = self.lit_false();
                        for (i, o) in out.iter_mut().enumerate() {
                            let src = if op == BinOp::Shl {
                                i.checked_sub(n)
                            } else {
                                let j = i + n;
                                (j < 64).then_some(j)
                            };
                            *o = match src {
                                Some(s) => self.pool[ao + s],
                                None => f,
                            };
                        }
                    }
                }
                let off = self.alloc_slot();
                self.pool[off..off + 64].copy_from_slice(&out);
                off
            }
            TermNode::Not(a) => {
                let ao = self.expr_bits(a)?;
                let off = self.alloc_slot();
                for i in 0..64 {
                    self.pool[off + i] = -self.pool[ao + i];
                }
                off
            }
        };
        self.enc_epoch[ti] = self.epoch;
        self.enc_off[ti] = off as u32;
        Ok(off)
    }

    /// Ripple-carry add of the encodings at `ao` and `bo`; `sub`
    /// negates `b` and seeds the carry (two's-complement subtract).
    fn adder_into(&mut self, ao: usize, bo: usize, sub: bool, out: &mut [i32; 64]) {
        let mut carry = if sub { self.t } else { self.lit_false() };
        for (i, o) in out.iter_mut().enumerate() {
            let x = self.pool[ao + i];
            let y = if sub {
                -self.pool[bo + i]
            } else {
                self.pool[bo + i]
            };
            *o = self.xor3(x, y, carry);
            carry = self.maj(x, y, carry);
        }
    }

    /// Comparator literal over the encodings at `ao`/`bo`. `signed`
    /// flips the sign bit of both operands first (two's-complement
    /// order is unsigned order with the sign bit inverted).
    fn ult_lit(&mut self, ao: usize, bo: usize, width: u32, signed: bool) -> i32 {
        // LSB-to-MSB borrow chain: lt = (!a & b) | ((a == b) & lt_prev)
        let s = (width - 1) as usize;
        let mut lt = self.lit_false();
        for i in 0..width as usize {
            let flip = signed && i == s;
            let a = if flip {
                -self.pool[ao + i]
            } else {
                self.pool[ao + i]
            };
            let b = if flip {
                -self.pool[bo + i]
            } else {
                self.pool[bo + i]
            };
            let na_and_b = self.and_gate(-a, b);
            let eq = -self.xor_gate(a, b);
            let keep = self.and_gate(eq, lt);
            lt = self.or_gate(na_and_b, keep);
        }
        lt
    }

    fn eq_lit(&mut self, ao: usize, bo: usize, width: u32) -> i32 {
        let mut acc = self.t;
        for i in 0..width as usize {
            let (a, b) = (self.pool[ao + i], self.pool[bo + i]);
            let x = self.xor_gate(a, b);
            acc = self.and_gate(acc, -x);
        }
        acc
    }

    /// CNF literal of boolean term `id`. Cached per bool id for the
    /// query (the arena makes boolean structure a DAG too).
    fn bool_lit(&mut self, id: BoolId) -> Result<i32, &'static str> {
        let bi = id.index();
        if self.blit_epoch.len() <= bi {
            let n = self.arena.num_bools().max(bi + 1);
            self.blit_epoch.resize(n, 0);
            self.blit.resize(n, 0);
        }
        if self.blit_epoch[bi] == self.epoch {
            return Ok(self.blit[bi]);
        }
        let lit = match self.arena.bool_node(id) {
            BoolNode::True => self.t,
            BoolNode::False => self.lit_false(),
            BoolNode::Cmp { op, width, a, b } => {
                let ao = self.expr_bits(a)?;
                let bo = self.expr_bits(b)?;
                match op {
                    CmpOp::Eq => self.eq_lit(ao, bo, width),
                    CmpOp::Ne => -self.eq_lit(ao, bo, width),
                    CmpOp::Ult => self.ult_lit(ao, bo, width, false),
                    CmpOp::Slt => self.ult_lit(ao, bo, width, true),
                }
            }
            BoolNode::And(a, b) => {
                let (la, lb) = (self.bool_lit(a)?, self.bool_lit(b)?);
                self.and_gate(la, lb)
            }
            BoolNode::Or(a, b) => {
                let (la, lb) = (self.bool_lit(a)?, self.bool_lit(b)?);
                self.or_gate(la, lb)
            }
            BoolNode::Not(a) => -self.bool_lit(a)?,
        };
        self.blit_epoch[bi] = self.epoch;
        self.blit[bi] = lit;
        Ok(lit)
    }
}

/// The pre-interning pipeline, kept verbatim: an `Rc`-pointer-keyed
/// Tseitin blaster feeding the scan-every-clause DPLL. Baseline for
/// `solver_bench` and oracle for the differential proptests.
mod reference {
    use super::*;

    pub(super) fn check_reference_inner(constraints: &[BoolExpr]) -> SatResult {
        let mut b = Blaster::new();
        let mut roots = Vec::new();
        for c in constraints {
            match c {
                BoolExpr::True => continue,
                BoolExpr::False => return SatResult::Unsat,
                _ => match b.bool_lit(c) {
                    Ok(l) => roots.push(l),
                    Err(e) => return SatResult::Unknown(e),
                },
            }
        }
        for l in roots {
            b.cnf.clause(&[l]);
        }
        match solve_reference(&b.cnf) {
            SolveOutcome::Unsat => SatResult::Unsat,
            SolveOutcome::BudgetExhausted => SatResult::Unknown("SAT decision budget exhausted"),
            SolveOutcome::Sat(assign) => {
                let mut pairs = Vec::with_capacity(b.vars.len());
                for (name, (bits, lits)) in &b.vars {
                    let mut v = 0u64;
                    for (i, &lit) in lits.iter().enumerate() {
                        if assign[(lit.unsigned_abs() - 1) as usize] {
                            v |= 1 << i;
                        }
                    }
                    pairs.push((sym_intern(name), v & mask_of(*bits)));
                }
                SatResult::Sat(Model::from_pairs(pairs))
            }
        }
    }

    struct Blaster {
        pub(super) cnf: Cnf,
        /// Constant-true literal.
        t: i32,
        /// name → (bits, bit literals LSB-first, length = bits).
        pub(super) vars: HashMap<String, (u32, Vec<i32>)>,
        /// Expression cache by DAG node identity.
        cache: HashMap<usize, Vec<i32>>,
    }

    type Bits = Vec<i32>;

    impl Blaster {
        fn new() -> Blaster {
            let mut cnf = Cnf::new();
            let t = cnf.fresh();
            cnf.clause(&[t]);
            Blaster {
                cnf,
                t,
                vars: HashMap::new(),
                cache: HashMap::new(),
            }
        }

        fn lit_false(&self) -> i32 {
            -self.t
        }

        fn const_bits(&self, v: u64) -> Bits {
            (0..64)
                .map(|i| if v & (1 << i) != 0 { self.t } else { -self.t })
                .collect()
        }

        fn and_gate(&mut self, a: i32, b: i32) -> i32 {
            if a == self.t {
                return b;
            }
            if b == self.t {
                return a;
            }
            if a == -self.t || b == -self.t {
                return -self.t;
            }
            let o = self.cnf.fresh();
            self.cnf.clause(&[-o, a]);
            self.cnf.clause(&[-o, b]);
            self.cnf.clause(&[o, -a, -b]);
            o
        }

        fn or_gate(&mut self, a: i32, b: i32) -> i32 {
            -self.and_gate(-a, -b)
        }

        fn xor_gate(&mut self, a: i32, b: i32) -> i32 {
            if a == self.t {
                return -b;
            }
            if a == -self.t {
                return b;
            }
            if b == self.t {
                return -a;
            }
            if b == -self.t {
                return a;
            }
            let o = self.cnf.fresh();
            self.cnf.clause(&[-o, a, b]);
            self.cnf.clause(&[-o, -a, -b]);
            self.cnf.clause(&[o, -a, b]);
            self.cnf.clause(&[o, a, -b]);
            o
        }

        fn xor3(&mut self, a: i32, b: i32, c: i32) -> i32 {
            let ab = self.xor_gate(a, b);
            self.xor_gate(ab, c)
        }

        fn maj(&mut self, a: i32, b: i32, c: i32) -> i32 {
            let ab = self.and_gate(a, b);
            let ac = self.and_gate(a, c);
            let bc = self.and_gate(b, c);
            let t = self.or_gate(ab, ac);
            self.or_gate(t, bc)
        }

        fn adder(&mut self, a: &Bits, b: &Bits, carry_in: i32) -> Bits {
            let mut out = Vec::with_capacity(64);
            let mut carry = carry_in;
            for i in 0..64 {
                out.push(self.xor3(a[i], b[i], carry));
                carry = self.maj(a[i], b[i], carry);
            }
            out
        }

        fn expr_bits(&mut self, e: &Rc<Expr>) -> Result<Bits, &'static str> {
            let key = Rc::as_ptr(e) as usize;
            if let Some(b) = self.cache.get(&key) {
                return Ok(b.clone());
            }
            let bits = match &**e {
                Expr::Const(v) => self.const_bits(*v),
                Expr::Var { name, bits } => {
                    if !self.vars.contains_key(name) {
                        let lits: Vec<i32> = (0..*bits).map(|_| self.cnf.fresh()).collect();
                        self.vars.insert(name.clone(), (*bits, lits));
                    }
                    let (nbits, lits) = &self.vars[name];
                    let mut full = lits.clone();
                    debug_assert_eq!(*nbits as usize, full.len());
                    full.resize(64, self.lit_false());
                    full
                }
                Expr::Bin(op, a, b) => {
                    let ab = self.expr_bits(a)?;
                    let bb = self.expr_bits(b)?;
                    match op {
                        BinOp::And => (0..64).map(|i| self.and_gate(ab[i], bb[i])).collect(),
                        BinOp::Or => (0..64).map(|i| self.or_gate(ab[i], bb[i])).collect(),
                        BinOp::Xor => (0..64).map(|i| self.xor_gate(ab[i], bb[i])).collect(),
                        BinOp::Add => self.adder(&ab, &bb, self.lit_false()),
                        BinOp::Sub => {
                            let nb: Bits = bb.iter().map(|&l| -l).collect();
                            self.adder(&ab, &nb, self.t)
                        }
                        BinOp::Shl | BinOp::Shr => {
                            let n: usize =
                                b.as_const().ok_or("shift by non-constant amount")? as usize;
                            let mut out = vec![self.lit_false(); 64];
                            for (i, o) in out.iter_mut().enumerate() {
                                let src = if *op == BinOp::Shl {
                                    i.checked_sub(n)
                                } else {
                                    let j = i + n;
                                    (j < 64).then_some(j)
                                };
                                if let Some(s) = src {
                                    *o = ab[s];
                                }
                            }
                            out
                        }
                    }
                }
                Expr::Not(a) => {
                    let ab = self.expr_bits(a)?;
                    ab.iter().map(|&l| -l).collect()
                }
            };
            self.cache.insert(key, bits.clone());
            Ok(bits)
        }

        fn eq_lit(&mut self, a: &Bits, b: &Bits, width: u32) -> i32 {
            let mut acc = self.t;
            for i in 0..width as usize {
                let x = self.xor_gate(a[i], b[i]);
                acc = self.and_gate(acc, -x);
            }
            acc
        }

        fn ult_lit(&mut self, a: &Bits, b: &Bits, width: u32) -> i32 {
            // LSB-to-MSB borrow chain: lt = (!a & b) | ((a == b) & lt_prev)
            let mut lt = self.lit_false();
            for i in 0..width as usize {
                let na_and_b = self.and_gate(-a[i], b[i]);
                let eq = -self.xor_gate(a[i], b[i]);
                let keep = self.and_gate(eq, lt);
                lt = self.or_gate(na_and_b, keep);
            }
            lt
        }

        fn bool_lit(&mut self, e: &BoolExpr) -> Result<i32, &'static str> {
            Ok(match e {
                BoolExpr::True => self.t,
                BoolExpr::False => self.lit_false(),
                BoolExpr::Cmp { op, width, a, b } => {
                    let ab = self.expr_bits(a)?;
                    let bb = self.expr_bits(b)?;
                    match op {
                        CmpOp::Eq => self.eq_lit(&ab, &bb, *width),
                        CmpOp::Ne => -self.eq_lit(&ab, &bb, *width),
                        CmpOp::Ult => self.ult_lit(&ab, &bb, *width),
                        CmpOp::Slt => {
                            // Flip sign bits then unsigned compare.
                            let s = (*width - 1) as usize;
                            let mut af = ab.clone();
                            let mut bf = bb.clone();
                            af[s] = -af[s];
                            bf[s] = -bf[s];
                            self.ult_lit(&af, &bf, *width)
                        }
                    }
                }
                BoolExpr::And(a, b) => {
                    let (la, lb) = (self.bool_lit(a)?, self.bool_lit(b)?);
                    self.and_gate(la, lb)
                }
                BoolExpr::Or(a, b) => {
                    let (la, lb) = (self.bool_lit(a)?, self.bool_lit(b)?);
                    self.or_gate(la, lb)
                }
                BoolExpr::Not(a) => -self.bool_lit(a)?,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{BinOp, BoolExpr, CmpOp, Expr};

    fn eq64(a: Rc<Expr>, b: Rc<Expr>) -> BoolExpr {
        BoolExpr::cmp(CmpOp::Eq, 64, a, b)
    }

    #[test]
    fn var_equality_model() {
        let x = Expr::var("x", 32);
        let r = check(&[eq64(x, Expr::c(0xC000_0005))]);
        match r {
            SatResult::Sat(m) => assert_eq!(m.get("x"), 0xC000_0005),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn var_width_bounds_values() {
        // An 8-bit variable can never equal 0x100.
        let x = Expr::var("x", 8);
        assert_eq!(check(&[eq64(x, Expr::c(0x100))]), SatResult::Unsat);
    }

    #[test]
    fn addition_is_correct() {
        let x = Expr::var("x", 64);
        let y = Expr::var("y", 64);
        let sum = Expr::bin(BinOp::Add, x.clone(), y.clone());
        let cs = [
            eq64(x, Expr::c(0xFFFF_FFFF_FFFF_FFF0)),
            eq64(y, Expr::c(0x20)),
            eq64(sum, Expr::c(0x10)), // wraps
        ];
        assert!(check(&cs).is_sat());
    }

    #[test]
    fn subtraction_and_inequality() {
        let x = Expr::var("x", 32);
        let d = Expr::bin(BinOp::Sub, x.clone(), Expr::c(5));
        // x - 5 == 0 and x != 5 is unsat.
        let cs = [
            eq64(d.clone(), Expr::c(0)),
            BoolExpr::cmp(CmpOp::Ne, 64, x.clone(), Expr::c(5)),
        ];
        assert_eq!(check(&cs), SatResult::Unsat);
        let cs = [eq64(d, Expr::c(0))];
        match check(&cs) {
            SatResult::Sat(m) => assert_eq!(m.get("x"), 5),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn unsigned_and_signed_compare() {
        let x = Expr::var("x", 8);
        // x < 3 unsigned and x > 0x7f signed-negative impossible together
        // at 8 bits unless... x in {0,1,2} are all non-negative → unsat.
        let cs = [
            BoolExpr::cmp(CmpOp::Ult, 8, x.clone(), Expr::c(3)),
            BoolExpr::cmp(CmpOp::Slt, 8, x.clone(), Expr::c(0)),
        ];
        assert_eq!(check(&cs), SatResult::Unsat);
        // x signed-negative at 8 bits: model has high bit set.
        let cs = [BoolExpr::cmp(CmpOp::Slt, 8, x, Expr::c(0))];
        match check(&cs) {
            SatResult::Sat(m) => assert!(m.get("x") & 0x80 != 0),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn masking_dword() {
        // (x & 0xFFFF0000) == 0xC0000000 has solutions with arbitrary low
        // bits; conjoin x == 0xC0000005 to pin one.
        let x = Expr::var("x", 32);
        let masked = Expr::bin(BinOp::And, x.clone(), Expr::c(0xFFFF_0000));
        let cs = [
            eq64(masked, Expr::c(0xC000_0000)),
            eq64(x, Expr::c(0xC000_0005)),
        ];
        assert!(check(&cs).is_sat());
    }

    #[test]
    fn shifts_by_constant() {
        let x = Expr::var("x", 32);
        let sh = Expr::bin(BinOp::Shr, x.clone(), Expr::c(28));
        // high nibble == 0xC constrains x's top bits.
        let cs = [
            eq64(sh, Expr::c(0xC)),
            eq64(x.clone(), Expr::c(0xC000_0005)),
        ];
        assert!(check(&cs).is_sat());
        let cs = [
            eq64(Expr::bin(BinOp::Shr, x.clone(), Expr::c(28)), Expr::c(0xC)),
            eq64(x, Expr::c(0x1000_0005)),
        ];
        assert_eq!(check(&cs), SatResult::Unsat);
    }

    #[test]
    fn shift_by_variable_is_unknown() {
        let x = Expr::var("x", 32);
        let n = Expr::var("n", 32);
        let sh = Rc::new(Expr::Bin(BinOp::Shl, x, n));
        match check(&[eq64(sh, Expr::c(4))]) {
            SatResult::Unknown(_) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn or_and_not_structure() {
        // (x == 1 ∨ x == 2) ∧ ¬(x == 1) → x == 2.
        let x = Expr::var("x", 32);
        let c = BoolExpr::and(
            BoolExpr::or(eq64(x.clone(), Expr::c(1)), eq64(x.clone(), Expr::c(2))),
            BoolExpr::not(eq64(x, Expr::c(1))),
        );
        match check(&[c]) {
            SatResult::Sat(m) => assert_eq!(m.get("x"), 2),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn model_satisfies_constraints() {
        // Randomized end-to-end sanity: every SAT model must evaluate true.
        let x = Expr::var("x", 16);
        let y = Expr::var("y", 16);
        let cs = [
            BoolExpr::cmp(CmpOp::Ult, 16, x.clone(), y.clone()),
            BoolExpr::cmp(
                CmpOp::Eq,
                16,
                Expr::bin(BinOp::And, Expr::bin(BinOp::Add, x, y), Expr::c(0xFF)),
                Expr::c(0x42),
            ),
        ];
        match check(&cs) {
            SatResult::Sat(m) => {
                for c in &cs {
                    assert!(c.eval(&|n| m.get(n)), "model must satisfy {c:?}");
                }
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn memo_hits_on_alpha_equivalent_queries() {
        reset_query_memo();
        // Fresh names so no earlier test primed these structures.
        let p = Expr::var("memo_test_p", 32);
        let q = Expr::var("memo_test_q", 32);
        let lookups0 = memo_lookups();
        let hits0 = memo_hits();
        let r1 = check(&[eq64(p, Expr::c(0x1234_5678))]);
        assert_eq!(memo_hits() - hits0, 0, "first query is a miss");
        let r2 = check(&[eq64(q, Expr::c(0x1234_5678))]);
        assert!(memo_lookups() - lookups0 >= 2);
        assert_eq!(
            memo_hits() - hits0,
            1,
            "alpha-equivalent query must hit the memo"
        );
        match (r1, r2) {
            (SatResult::Sat(m1), SatResult::Sat(m2)) => {
                assert_eq!(m1.get("memo_test_p"), 0x1234_5678);
                assert_eq!(m2.get("memo_test_q"), 0x1234_5678, "hit renames the model");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn memo_replays_all_outcome_kinds() {
        reset_query_memo();
        let x = Expr::var("memo_kinds_x", 8);
        let unsat = [eq64(x.clone(), Expr::c(0x100))];
        assert_eq!(check(&unsat), SatResult::Unsat);
        assert_eq!(check(&unsat), SatResult::Unsat, "unsat replays");
        let n = Expr::var("memo_kinds_n", 8);
        let sh = Rc::new(Expr::Bin(BinOp::Shl, x, n));
        let unknown = [eq64(sh, Expr::c(4))];
        let first = check(&unknown);
        assert_eq!(check(&unknown), first, "unknown replays");
    }

    #[test]
    fn session_stack_matches_single_shot() {
        let x = Expr::var("sess_x", 32);
        let y = Expr::var("sess_y", 32);
        let a = eq64(
            Expr::bin(BinOp::And, x.clone(), Expr::c(0xFF)),
            Expr::c(0x41),
        );
        let b = BoolExpr::cmp(CmpOp::Ult, 32, y.clone(), x.clone());
        let c = eq64(y.clone(), Expr::c(0x1_0000));
        let mut sess = Session::new();
        sess.push(&a).unwrap();
        let d1 = sess.depth();
        sess.push(&b).unwrap();
        sess.push(&c).unwrap();
        // Full stack vs single-shot: same verdict, model satisfies.
        match (sess.check(), check(&[a.clone(), b.clone(), c.clone()])) {
            (SatResult::Sat(m), SatResult::Sat(_)) => {
                for cs in [&a, &b, &c] {
                    assert!(cs.eval(&|n| m.get(n)), "session model violates {cs:?}");
                }
            }
            (g, w) => panic!("session {g:?} vs single-shot {w:?}"),
        }
        // Pop to the fork and take a contradictory sibling.
        sess.pop_to(d1);
        let contra = eq64(
            Expr::bin(BinOp::And, x.clone(), Expr::c(0xFF)),
            Expr::c(0x42),
        );
        sess.push(&contra).unwrap();
        assert_eq!(sess.check(), SatResult::Unsat);
        // Retraction works both ways.
        sess.pop_to(d1);
        assert!(sess.check().is_sat());
    }

    #[test]
    fn session_false_frames_are_sticky_until_popped() {
        let mut sess = Session::new();
        let x = Expr::var("sess_false_x", 8);
        sess.push(&eq64(x.clone(), Expr::c(3))).unwrap();
        let d = sess.depth();
        sess.push(&BoolExpr::False).unwrap();
        assert_eq!(sess.check(), SatResult::Unsat);
        assert_eq!(
            sess.check_assuming(&[eq64(x.clone(), Expr::c(3))]),
            SatResult::Unsat
        );
        sess.pop_to(d);
        assert!(sess.check().is_sat());
    }

    #[test]
    fn session_check_assuming_is_transient() {
        let mut sess = Session::new();
        let x = Expr::var("sess_tmp_x", 16);
        sess.push(&BoolExpr::cmp(CmpOp::Ult, 16, x.clone(), Expr::c(0x100)))
            .unwrap();
        let one = eq64(x.clone(), Expr::c(1));
        let two = eq64(x.clone(), Expr::c(2));
        assert!(sess.check_assuming(std::slice::from_ref(&one)).is_sat());
        // `one` must not have stuck to the stack.
        assert!(sess.check_assuming(&[two]).is_sat());
        assert!(!sess.check_assuming(&[one, eq64(x, Expr::c(2))]).is_sat());
    }

    #[test]
    fn session_unknowns_surface_from_push_and_check() {
        let mut sess = Session::new();
        let x = Expr::var("sess_unk_x", 32);
        let n = Expr::var("sess_unk_n", 32);
        let sh = Rc::new(Expr::Bin(BinOp::Shl, x.clone(), n));
        let bad = eq64(sh, Expr::c(4));
        // Push rejects the unencodable constraint and leaves the stack
        // untouched.
        let d = sess.depth();
        assert!(sess.push(&bad).is_err());
        assert_eq!(sess.depth(), d);
        // As a transient extra it surfaces as Unknown.
        match sess.check_assuming(&[bad]) {
            SatResult::Unknown(_) => {}
            other => panic!("{other:?}"),
        }
        assert!(sess.check().is_sat(), "stack still clean");
    }

    #[test]
    fn session_queries_flow_through_the_memo() {
        reset_query_memo();
        let p = Expr::var("sess_memo_p", 32);
        let q = Expr::var("sess_memo_q", 32);
        let hits0 = memo_hits();
        let calls0 = solver_calls();
        let mut sess = Session::new();
        sess.push(&eq64(p, Expr::c(0xDEAD_0001))).unwrap();
        let r1 = sess.check();
        assert_eq!(memo_hits() - hits0, 0, "cold query misses");
        // Alpha-equivalent single-shot query hits the session's entry.
        let r2 = check(&[eq64(q, Expr::c(0xDEAD_0001))]);
        assert_eq!(memo_hits() - hits0, 1, "shape is shared across doors");
        assert_eq!(solver_calls() - calls0, 2, "both doors count as checks");
        match (r1, r2) {
            (SatResult::Sat(m1), SatResult::Sat(m2)) => {
                assert_eq!(m1.get("sess_memo_p"), 0xDEAD_0001);
                assert_eq!(m2.get("sess_memo_q"), 0xDEAD_0001);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn check_reference_warms_the_production_interner() {
        // Arena-native routing: after the reference door has interned a
        // constraint set, the production door must find every term
        // already interned.
        let x = Expr::var("warm_ref_x", 24);
        let cs = [
            eq64(
                Expr::bin(BinOp::Xor, x.clone(), Expr::c(0x5A5A)),
                Expr::c(0x1234),
            ),
            BoolExpr::cmp(CmpOp::Ult, 24, x, Expr::c(0x10_0000)),
        ];
        let r_ref = check_reference(&cs);
        let after_ref = thread_arena_size();
        let r_prod = check(&cs);
        let after_prod = thread_arena_size();
        assert_eq!(
            after_ref, after_prod,
            "production check must not grow an arena the reference door already warmed"
        );
        assert_eq!(
            std::mem::discriminant(&r_ref),
            std::mem::discriminant(&r_prod)
        );
    }

    #[test]
    fn reference_pipeline_agrees() {
        let x = Expr::var("ref_x", 16);
        let y = Expr::var("ref_y", 16);
        // Antisymmetric var-var compares at 4 bits: wide enough to
        // exercise the comparator chain, small enough to stay inside
        // the reference solver's decision budget (the watched solver
        // proves the 16-bit variant in-budget; the baseline cannot).
        let s = Expr::var("ref_s", 4);
        let t = Expr::var("ref_t", 4);
        let sets: Vec<Vec<BoolExpr>> = vec![
            vec![eq64(x.clone(), Expr::c(7))],
            vec![
                BoolExpr::cmp(CmpOp::Ult, 4, s.clone(), t.clone()),
                BoolExpr::cmp(CmpOp::Ult, 4, t.clone(), s.clone()),
            ],
            vec![
                BoolExpr::cmp(CmpOp::Ult, 16, x.clone(), Expr::c(3)),
                BoolExpr::cmp(CmpOp::Ult, 16, Expr::c(3), x.clone()),
            ],
            vec![BoolExpr::cmp(
                CmpOp::Eq,
                16,
                Expr::bin(
                    BinOp::And,
                    Expr::bin(BinOp::Add, x.clone(), y.clone()),
                    Expr::c(0xFF),
                ),
                Expr::c(0x42),
            )],
        ];
        for cs in &sets {
            let new = check(cs);
            let old = with_reference_pipeline(|| check(cs));
            let direct = check_reference(cs);
            assert_eq!(
                std::mem::discriminant(&new),
                std::mem::discriminant(&old),
                "pipelines must agree on {cs:?}"
            );
            assert_eq!(old, direct);
            if let (SatResult::Sat(m), SatResult::Sat(mr)) = (&new, &old) {
                for c in cs {
                    assert!(c.eval(&|n| m.get(n)));
                    assert!(c.eval(&|n| mr.get(n)));
                }
            }
        }
    }
}
