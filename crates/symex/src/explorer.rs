//! Worklist path explorer for exception filters.
//!
//! The single-shot executor ([`crate::SymExec`]) runs every path to its
//! end and only then asks the solver one question per completed path —
//! it never checks whether a branch is *reachable*, so loopy filters
//! fork forever until the path budget dies, and its memory model drops
//! a stored value on any width-widening read. This module is the
//! replacement front door:
//!
//! * a **worklist explorer** that forks at each *feasible* branch —
//!   both sides of a fork are probed against the current path
//!   condition and infeasible sides are pruned, which is what makes
//!   bounded loops terminate (the "stay in the loop" branch eventually
//!   contradicts the path condition);
//! * a **bounded loop-unroll budget** per fork site as the safety net
//!   for genuinely unbounded loops;
//! * **incremental solving**: the per-path constraint set lives on a
//!   [`Session`] stack, so sibling paths share the encoding and the
//!   two-watched-literal state of their common prefix instead of
//!   re-blasting from scratch (`incremental(false)` keeps the
//!   N-independent-blasts mode as the measured baseline);
//! * the **widening memory model** ([`crate::exec`]'s `load` with
//!   `widen = true`): a narrow store read back wider keeps its low
//!   bits, closing the store-forwarding hole the single-shot executor
//!   retains as a differential reference.
//!
//! The one-door API is [`FilterExplorer::builder`] →
//! [`FilterExplorer::explore`] → [`ExplorationReport`] (per-path
//! verdicts, merged filter classification, path/solver/memo counters).

use crate::blast::{check, SatResult, Session};
use crate::exec::{
    step_inst, CodeSource, FilterAnalysis, FilterVerdict, PathEnd, StepOut, SymExec, SymState,
    CODE_VAR, EXCEPTION_ACCESS_VIOLATION,
};
use crate::expr::{BoolExpr, CmpOp, Expr};
use cr_isa::{decode, Inst};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide count of explorer paths run to a `ret`.
static PATHS_COMPLETED: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of branch sides pruned as infeasible.
static PATHS_PRUNED: AtomicU64 = AtomicU64::new(0);

/// Total explorer paths completed by this process so far (campaign
/// metrics delta these, like [`crate::solver_calls`]).
pub fn paths_completed() -> u64 {
    PATHS_COMPLETED.load(Ordering::Relaxed)
}

/// Total infeasible branch sides pruned by this process so far.
pub fn paths_pruned() -> u64 {
    PATHS_PRUNED.load(Ordering::Relaxed)
}

/// Verdict for one explored path.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub enum PathVerdict {
    /// This path returns ≠ 0 for some access violation.
    AcceptsAv {
        /// Concrete accepted `ExceptionCode` (the AV code by
        /// construction of the query).
        witness_code: u64,
    },
    /// This path returns 0 for every access violation (or is not
    /// reachable with `ExceptionCode == AV` at all).
    RejectsAv,
    /// The solver could not decide this path's query.
    Unknown(&'static str),
    /// Execution left the supported fragment before returning.
    Aborted(&'static str),
}

/// One explored path.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct PathReport {
    /// Per-path verdict.
    pub verdict: PathVerdict,
    /// Instructions executed along this path (prefix included).
    pub steps: usize,
    /// Number of branch constraints on this path's condition.
    pub depth: usize,
}

/// Structured result of exploring one filter: per-path verdicts, the
/// merged classification, and the work counters the campaign metrics
/// and benches consume.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct ExplorationReport {
    /// Merged filter classification, with single-shot verdict-priority
    /// semantics: an accept witness wins, otherwise the first abort
    /// reason, otherwise solver unknowns, otherwise rejection.
    pub verdict: FilterVerdict,
    /// Every path, in deterministic DFS discovery order.
    pub paths: Vec<PathReport>,
    /// Paths that reached a `ret`.
    pub completed_paths: usize,
    /// Abort reasons, in path order.
    pub aborted_paths: Vec<&'static str>,
    /// Branch sides pruned as infeasible (this is what bounds loops).
    pub pruned_branches: usize,
    /// Total instructions symbolically executed.
    pub steps: usize,
    /// Satisfiability checks issued during this exploration
    /// (feasibility probes + per-path verdict queries).
    pub solver_calls: u64,
    /// Normalized-query memo probes during this exploration.
    pub memo_lookups: u64,
    /// Normalized-query memo hits during this exploration.
    pub memo_hits: u64,
}

impl ExplorationReport {
    /// View as the single-shot [`FilterAnalysis`] shape (drop-in for
    /// callers that predate the explorer).
    pub fn to_analysis(&self) -> FilterAnalysis {
        FilterAnalysis {
            verdict: self.verdict.clone(),
            completed_paths: self.completed_paths,
            aborted_paths: self.aborted_paths.clone(),
            steps: self.steps,
        }
    }
}

/// Path-enumerating filter analysis with incremental solving — the
/// one-door replacement for scattered `analyze_filter`/`check` call
/// sites. Construct through [`FilterExplorer::builder`].
#[derive(Debug, Clone, Copy)]
pub struct FilterExplorer {
    max_paths: usize,
    max_steps: usize,
    max_unroll: usize,
    incremental: bool,
}

impl Default for FilterExplorer {
    fn default() -> FilterExplorer {
        FilterExplorer::builder().build()
    }
}

/// Builder for [`FilterExplorer`] (budgets and solver mode).
#[derive(Debug, Clone, Copy)]
pub struct FilterExplorerBuilder {
    inner: FilterExplorer,
}

impl FilterExplorerBuilder {
    /// Maximum paths (completed + aborted) before giving up.
    pub fn max_paths(mut self, n: usize) -> Self {
        self.inner.max_paths = n;
        self
    }

    /// Maximum instructions per path. Defaults to the single-shot
    /// executor's budget, including any [`crate::with_step_budget`]
    /// override active on this thread — the fault-injection hook
    /// reaches the explorer the same way.
    pub fn max_steps(mut self, n: usize) -> Self {
        self.inner.max_steps = n;
        self
    }

    /// Maximum forks taken at one branch site per path — the loop
    /// unroll budget for loops whose trip count feasibility pruning
    /// cannot bound.
    pub fn max_unroll(mut self, n: usize) -> Self {
        self.inner.max_unroll = n;
        self
    }

    /// `true` (default): solve sibling paths by push/pop on a shared
    /// [`Session`]. `false`: blast every query independently through
    /// [`check`] — the bench baseline.
    pub fn incremental(mut self, on: bool) -> Self {
        self.inner.incremental = on;
        self
    }

    /// Finalize the configuration.
    pub fn build(self) -> FilterExplorer {
        self.inner
    }
}

/// One suspended sibling branch: the forked state plus the branch
/// condition to assert when it resumes, and the [`Session`] depth of
/// the shared prefix it forked from.
struct Work {
    st: SymState,
    /// Fork counts per branch site along this path (unroll budget).
    unroll: HashMap<u64, usize>,
    /// Session depth of the path prefix below `cond`.
    fork_depth: usize,
    /// Branch condition to push when this item resumes (`None` for the
    /// root).
    cond: Option<BoolExpr>,
}

impl FilterExplorer {
    /// Start configuring an explorer. Defaults: 256 paths, the
    /// single-shot step budget (512 unless overridden), 64 unrolls per
    /// branch site, incremental solving on.
    pub fn builder() -> FilterExplorerBuilder {
        FilterExplorerBuilder {
            inner: FilterExplorer {
                max_paths: 256,
                max_steps: SymExec::default().max_steps,
                max_unroll: 64,
                incremental: true,
            },
        }
    }

    /// Explore the filter function entered at `entry` under the
    /// Windows x64 filter-call harness (same ABI as
    /// [`SymExec::analyze_filter`]).
    pub fn explore(&self, code: &dyn CodeSource, entry: u64) -> ExplorationReport {
        // Advisory, like the single-shot "filter.vet" span: whether an
        // exploration happens at all can depend on cache scheduling.
        let mut span = cr_trace::span_advisory(cr_trace::Stage::Symex, "filter.explore");
        let report = self.explore_inner(code, entry);
        span.set_detail(|| {
            let verdict = match report.verdict {
                FilterVerdict::AcceptsAccessViolation { .. } => "accepts_av",
                FilterVerdict::RejectsAccessViolation => "rejects_av",
                FilterVerdict::Unknown(_) => "unknown",
            };
            format!(
                "paths={} completed={} aborted={} pruned={} steps={} verdict={verdict}",
                report.paths.len(),
                report.completed_paths,
                report.aborted_paths.len(),
                report.pruned_branches,
                report.steps,
            )
        });
        report
    }

    fn explore_inner(&self, code: &dyn CodeSource, entry: u64) -> ExplorationReport {
        let calls0 = crate::blast::solver_calls();
        let lookups0 = crate::blast::memo_lookups();
        let hits0 = crate::blast::memo_hits();
        let mut session = self.incremental.then(Session::new);
        let mut worklist = vec![Work {
            st: SymState::filter_harness(entry),
            unroll: HashMap::new(),
            fork_depth: 0,
            cond: None,
        }];
        let mut paths: Vec<PathReport> = Vec::new();
        let mut aborted: Vec<&'static str> = Vec::new();
        let mut completed = 0usize;
        let mut pruned = 0usize;
        let mut total_steps = 0usize;
        let mut accept_witness = None;
        let mut any_unknown_solver = false;
        let mut fresh = 0u32;
        // Path-independent AV pin, shared across every per-path query.
        let code_is_av = BoolExpr::cmp(
            CmpOp::Eq,
            32,
            Expr::var(CODE_VAR, 32),
            Expr::c(EXCEPTION_ACCESS_VIOLATION),
        );

        'work: while let Some(mut w) = worklist.pop() {
            if paths.len() >= self.max_paths {
                aborted.push("path budget exhausted");
                paths.push(PathReport {
                    verdict: PathVerdict::Aborted("path budget exhausted"),
                    steps: w.st.steps,
                    depth: w.st.path.len(),
                });
                break;
            }
            let mut pspan = cr_trace::span_advisory(cr_trace::Stage::Symex, "filter.path");
            // Resume: rewind the session to the shared prefix and
            // assert this sibling's branch condition.
            let mut resume_err = None;
            if let Some(cond) = w.cond.take() {
                if let Some(sess) = session.as_mut() {
                    sess.pop_to(w.fork_depth);
                    if let Err(e) = sess.push(&cond) {
                        resume_err = Some(e);
                    }
                }
                w.st.path.push(cond);
            }
            let end = if let Some(e) = resume_err {
                PathEnd::Aborted(e)
            } else {
                loop {
                    if w.st.steps >= self.max_steps {
                        break PathEnd::Aborted("step budget exhausted");
                    }
                    let mut bytes = [0u8; 15];
                    let n = code.read_code(w.st.rip, &mut bytes);
                    if n == 0 {
                        break PathEnd::Aborted("fell off code");
                    }
                    let Ok(d) = decode(&bytes[..n]) else {
                        break PathEnd::Aborted("undecodable instruction");
                    };
                    w.st.steps += 1;
                    total_steps += 1;
                    match step_inst(&mut w.st, &d.inst, d.len, &mut fresh, true) {
                        StepOut::Continue => {}
                        StepOut::Fork(cond) => {
                            let next = w.st.rip.wrapping_add(d.len as u64);
                            let Inst::Jcc { rel, .. } = d.inst else {
                                unreachable!()
                            };
                            let target = next.wrapping_add(rel as i64 as u64);
                            let site = w.st.rip;
                            let seen = w.unroll.entry(site).or_insert(0);
                            *seen += 1;
                            if *seen > self.max_unroll {
                                break PathEnd::Aborted("loop unroll budget exhausted");
                            }
                            let not_cond = BoolExpr::not(cond.clone());
                            let take_ok = feasible(session.as_mut(), &w.st.path, &cond);
                            let fall_ok = feasible(session.as_mut(), &w.st.path, &not_cond);
                            match (take_ok, fall_ok) {
                                (true, true) => {
                                    let mut taken = w.st.clone();
                                    taken.rip = target;
                                    worklist.push(Work {
                                        st: taken,
                                        unroll: w.unroll.clone(),
                                        fork_depth: session.as_ref().map_or(0, Session::depth),
                                        cond: Some(cond),
                                    });
                                    if let Err(e) = assert_cond(session.as_mut(), not_cond, &mut w)
                                    {
                                        break PathEnd::Aborted(e);
                                    }
                                    w.st.rip = next;
                                }
                                (true, false) => {
                                    pruned += 1;
                                    PATHS_PRUNED.fetch_add(1, Ordering::Relaxed);
                                    if let Err(e) = assert_cond(session.as_mut(), cond, &mut w) {
                                        break PathEnd::Aborted(e);
                                    }
                                    w.st.rip = target;
                                }
                                (false, true) => {
                                    pruned += 1;
                                    PATHS_PRUNED.fetch_add(1, Ordering::Relaxed);
                                    if let Err(e) = assert_cond(session.as_mut(), not_cond, &mut w)
                                    {
                                        break PathEnd::Aborted(e);
                                    }
                                    w.st.rip = next;
                                }
                                (false, false) => {
                                    // The prefix itself is unsatisfiable
                                    // (reachable only via an explored
                                    // Unknown probe): drop the path, it
                                    // constrains nothing.
                                    pruned += 2;
                                    PATHS_PRUNED.fetch_add(2, Ordering::Relaxed);
                                    continue 'work;
                                }
                            }
                        }
                        StepOut::End(e) => break e,
                    }
                }
            };
            let report = match end {
                PathEnd::Aborted(r) => {
                    aborted.push(r);
                    PathReport {
                        verdict: PathVerdict::Aborted(r),
                        steps: w.st.steps,
                        depth: w.st.path.len(),
                    }
                }
                PathEnd::Ret { value, path } => {
                    completed += 1;
                    PATHS_COMPLETED.fetch_add(1, Ordering::Relaxed);
                    // Query: path ∧ code == AV ∧ eax != 0.
                    let ret_nz = BoolExpr::cmp(CmpOp::Ne, 32, value, Expr::c(0));
                    let r = match session.as_mut() {
                        Some(sess) => sess.check_assuming(&[code_is_av.clone(), ret_nz]),
                        None => {
                            let mut cs = path;
                            cs.push(code_is_av.clone());
                            cs.push(ret_nz);
                            check(&cs)
                        }
                    };
                    let verdict = match r {
                        SatResult::Sat(m) => {
                            let witness_code = m.get(CODE_VAR);
                            if accept_witness.is_none() {
                                accept_witness = Some(witness_code);
                            }
                            PathVerdict::AcceptsAv { witness_code }
                        }
                        SatResult::Unsat => PathVerdict::RejectsAv,
                        SatResult::Unknown(e) => {
                            any_unknown_solver = true;
                            PathVerdict::Unknown(e)
                        }
                    };
                    PathReport {
                        verdict,
                        steps: w.st.steps,
                        depth: w.st.path.len(),
                    }
                }
            };
            pspan.set_detail(|| {
                let v = match &report.verdict {
                    PathVerdict::AcceptsAv { .. } => "accepts_av",
                    PathVerdict::RejectsAv => "rejects_av",
                    PathVerdict::Unknown(_) => "unknown",
                    PathVerdict::Aborted(_) => "aborted",
                };
                format!("verdict={v} steps={} depth={}", report.steps, report.depth)
            });
            paths.push(report);
        }

        // Same verdict priority as the single-shot pipeline.
        let verdict = match accept_witness {
            Some(witness_code) => FilterVerdict::AcceptsAccessViolation { witness_code },
            None if !aborted.is_empty() => FilterVerdict::Unknown(aborted[0]),
            None if any_unknown_solver => FilterVerdict::Unknown("solver gave up"),
            None if completed == 0 => FilterVerdict::Unknown("no complete path"),
            None => FilterVerdict::RejectsAccessViolation,
        };
        ExplorationReport {
            verdict,
            paths,
            completed_paths: completed,
            aborted_paths: aborted,
            pruned_branches: pruned,
            steps: total_steps,
            solver_calls: crate::blast::solver_calls() - calls0,
            memo_lookups: crate::blast::memo_lookups() - lookups0,
            memo_hits: crate::blast::memo_hits() - hits0,
        }
    }
}

/// Probe whether `cond` is satisfiable under the current path prefix.
/// `Unknown` counts as feasible — exploring the side is sound, the
/// final per-path query decides.
fn feasible(session: Option<&mut Session>, prefix: &[BoolExpr], cond: &BoolExpr) -> bool {
    let r = match session {
        Some(sess) => sess.check_assuming(std::slice::from_ref(cond)),
        None => {
            let mut cs: Vec<BoolExpr> = prefix.to_vec();
            cs.push(cond.clone());
            check(&cs)
        }
    };
    !matches!(r, SatResult::Unsat)
}

/// Assert `cond` on the live path: push it onto the session stack (if
/// incremental) and onto the state's path condition.
fn assert_cond(
    session: Option<&mut Session>,
    cond: BoolExpr,
    w: &mut Work,
) -> Result<(), &'static str> {
    if let Some(sess) = session {
        sess.push(&cond)?;
    }
    w.st.path.push(cond);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::FilterVerdict;
    use cr_isa::{Asm, Cond, Inst, Mem as MemOp, Reg, Rm, Width};

    fn filter(build: impl FnOnce(&mut Asm)) -> (u64, Vec<u8>) {
        let mut a = Asm::new(0x1_0000);
        build(&mut a);
        (0x1_0000, a.assemble().unwrap().code)
    }

    fn explore(code: &(u64, Vec<u8>)) -> ExplorationReport {
        let src = (code.0, code.1.as_slice());
        FilterExplorer::default().explore(&src, code.0)
    }

    fn single_shot(code: &(u64, Vec<u8>)) -> FilterVerdict {
        let src = (code.0, code.1.as_slice());
        SymExec::default().analyze_filter(&src, code.0).verdict
    }

    fn load_code_into_eax(a: &mut Asm) {
        a.load(Reg::Rax, MemOp::base(Reg::Rcx));
        a.inst(Inst::MovRRm {
            dst: Reg::Rax,
            src: Rm::Mem(MemOp::base(Reg::Rax)),
            width: Width::B4,
        });
    }

    fn cmp_eax_imm(a: &mut Asm, imm: u32) {
        a.inst(Inst::AluRmI {
            op: cr_isa::AluOp::Cmp,
            dst: Rm::Reg(Reg::Rax),
            imm: imm as i32,
            width: Width::B4,
        });
    }

    /// `code >> k` until zero, then accept iff code == `accept_code`.
    /// Only the exit-after-32-shifts path admits an AV code, so the
    /// single-shot executor forks past its path budget while the
    /// explorer prunes the loop closed.
    fn shrink_loop_filter(accept_code: u32) -> (u64, Vec<u8>) {
        filter(|a| {
            load_code_into_eax(a);
            a.inst(Inst::MovRmR {
                dst: Rm::Reg(Reg::Rbx),
                src: Reg::Rax,
                width: Width::B4,
            });
            let top = a.fresh();
            a.bind(top);
            a.shr(Reg::Rbx, 1);
            a.cmp_ri(Reg::Rbx, 0);
            a.jcc(Cond::Ne, top);
            cmp_eax_imm(a, accept_code);
            let reject = a.fresh();
            a.jcc(Cond::Ne, reject);
            a.mov_ri(Reg::Rax, 1);
            a.ret();
            a.bind(reject);
            a.zero(Reg::Rax);
            a.ret();
        })
    }

    /// Spill eax (32-bit) to the stack, reload 64-bit, accept iff the
    /// reload equals 0x10. Truth: the low 32 bits are the exception
    /// code, so an AV can never be accepted. The single-shot memory
    /// model drops the spilled value on the widening read and reports
    /// an accept.
    fn spill_widen_filter() -> (u64, Vec<u8>) {
        filter(|a| {
            load_code_into_eax(a);
            a.inst(Inst::MovRmR {
                dst: Rm::Mem(MemOp::base_disp(Reg::Rsp, -8)),
                src: Reg::Rax,
                width: Width::B4,
            });
            a.inst(Inst::MovRRm {
                dst: Reg::Rax,
                src: Rm::Mem(MemOp::base_disp(Reg::Rsp, -8)),
                width: Width::B8,
            });
            a.inst(Inst::AluRmI {
                op: cr_isa::AluOp::Cmp,
                dst: Rm::Reg(Reg::Rax),
                imm: 0x10,
                width: Width::B8,
            });
            let reject = a.fresh();
            a.jcc(Cond::Ne, reject);
            a.mov_ri(Reg::Rax, 1);
            a.ret();
            a.bind(reject);
            a.zero(Reg::Rax);
            a.ret();
        })
    }

    #[test]
    fn explorer_agrees_with_single_shot_on_straightline_filters() {
        let accept = filter(|a| {
            a.mov_ri(Reg::Rax, 1);
            a.ret();
        });
        let reject = filter(|a| {
            a.zero(Reg::Rax);
            a.ret();
        });
        let av_eq = filter(|a| {
            load_code_into_eax(a);
            cmp_eax_imm(a, 0xC000_0005);
            let no = a.fresh();
            a.jcc(Cond::Ne, no);
            a.mov_ri(Reg::Rax, 1);
            a.ret();
            a.bind(no);
            a.zero(Reg::Rax);
            a.ret();
        });
        for f in [&accept, &reject, &av_eq] {
            assert_eq!(explore(f).verdict, single_shot(f));
        }
    }

    #[test]
    fn explorer_prunes_shrink_loop_and_accepts_av() {
        let f = shrink_loop_filter(0xC000_0005);
        // Single-shot stumbles onto the witness before its path budget
        // dies (the witness outranks the abort), but it still burns the
        // whole budget forking an infeasible loop tail.
        let src = (f.0, f.1.as_slice());
        let ss = SymExec::default().analyze_filter(&src, f.0);
        assert!(matches!(
            ss.verdict,
            FilterVerdict::AcceptsAccessViolation { .. }
        ));
        assert!(ss.aborted_paths.contains(&"path budget exhausted"));
        let r = explore(&f);
        assert_eq!(
            r.verdict,
            FilterVerdict::AcceptsAccessViolation {
                witness_code: EXCEPTION_ACCESS_VIOLATION
            }
        );
        assert!(r.pruned_branches > 0, "loop must close by pruning");
        assert!(r.aborted_paths.is_empty(), "{:?}", r.aborted_paths);
        // One exit path per feasible shift count (1..=32 for a 32-bit
        // nonzero value, plus the zero-input fall-through).
        assert_eq!(r.completed_paths, r.paths.len());
    }

    #[test]
    fn explorer_prunes_shrink_loop_and_rejects_non_av() {
        let f = shrink_loop_filter(0xC000_0094);
        assert!(matches!(single_shot(&f), FilterVerdict::Unknown(_)));
        let r = explore(&f);
        assert_eq!(r.verdict, FilterVerdict::RejectsAccessViolation);
        assert!(r
            .paths
            .iter()
            .all(|p| matches!(p.verdict, PathVerdict::RejectsAv)));
    }

    #[test]
    fn explorer_fixes_spill_widen_misclassification() {
        let f = spill_widen_filter();
        // Pinned divergence: the single-shot memory model is wrong here.
        assert!(matches!(
            single_shot(&f),
            FilterVerdict::AcceptsAccessViolation { .. }
        ));
        assert_eq!(explore(&f).verdict, FilterVerdict::RejectsAccessViolation);
    }

    #[test]
    fn unroll_budget_bounds_symbolic_loops() {
        let f = shrink_loop_filter(0xC000_0005);
        let r = FilterExplorer::builder()
            .max_unroll(4)
            .build()
            .explore(&(f.0, f.1.as_slice()), f.0);
        assert_eq!(
            r.verdict,
            FilterVerdict::Unknown("loop unroll budget exhausted")
        );
        assert!(r.aborted_paths.contains(&"loop unroll budget exhausted"));
    }

    #[test]
    fn path_budget_caps_exploration() {
        let f = shrink_loop_filter(0xC000_0094);
        let r = FilterExplorer::builder()
            .max_paths(4)
            .build()
            .explore(&(f.0, f.1.as_slice()), f.0);
        assert_eq!(r.verdict, FilterVerdict::Unknown("path budget exhausted"));
        assert_eq!(r.paths.len(), 5, "4 paths + the budget marker");
    }

    #[test]
    fn independent_mode_matches_incremental_verdicts() {
        for f in [
            shrink_loop_filter(0xC000_0005),
            shrink_loop_filter(0xC000_0094),
            spill_widen_filter(),
        ] {
            let src = (f.0, f.1.as_slice());
            let inc = FilterExplorer::builder().build().explore(&src, f.0);
            let ind = FilterExplorer::builder()
                .incremental(false)
                .build()
                .explore(&src, f.0);
            assert_eq!(inc.verdict, ind.verdict);
            assert_eq!(inc.completed_paths, ind.completed_paths);
            assert_eq!(inc.pruned_branches, ind.pruned_branches);
            let pv = |r: &ExplorationReport| {
                r.paths
                    .iter()
                    .map(|p| p.verdict.clone())
                    .collect::<Vec<_>>()
            };
            assert_eq!(pv(&inc), pv(&ind), "per-path parity");
        }
    }

    #[test]
    fn exploration_counters_and_analysis_view() {
        let f = shrink_loop_filter(0xC000_0005);
        let r = explore(&f);
        assert!(r.solver_calls > 0);
        assert!(r.memo_lookups > 0);
        assert!(r.steps > 0);
        let a = r.to_analysis();
        assert_eq!(a.verdict, r.verdict);
        assert_eq!(a.completed_paths, r.completed_paths);
        assert_eq!(a.steps, r.steps);
    }

    #[test]
    fn step_budget_override_reaches_explorer_defaults() {
        let clamped = crate::with_step_budget(3, || FilterExplorer::builder().build());
        let f = filter(|a| {
            a.mov_ri(Reg::Rax, 1);
            a.ret();
        });
        let r = clamped.explore(&(f.0, f.1.as_slice()), f.0);
        // Depending on the filter length the clamp may or may not bite;
        // what matters is the configured budget, so use a filter long
        // enough that 3 steps cannot finish it.
        let long = filter(|a| {
            load_code_into_eax(a);
            cmp_eax_imm(a, 0xC000_0005);
            let no = a.fresh();
            a.jcc(Cond::Ne, no);
            a.mov_ri(Reg::Rax, 1);
            a.ret();
            a.bind(no);
            a.zero(Reg::Rax);
            a.ret();
        });
        let r2 = crate::with_step_budget(3, || {
            FilterExplorer::builder()
                .build()
                .explore(&(long.0, long.1.as_slice()), long.0)
        });
        assert_eq!(r2.verdict, FilterVerdict::Unknown("step budget exhausted"));
        drop(r);
    }
}
