//! Worklist path explorer for exception filters.
//!
//! The single-shot executor ([`crate::SymExec`]) runs every path to its
//! end and only then asks the solver one question per completed path —
//! it never checks whether a branch is *reachable*, so loopy filters
//! fork forever until the path budget dies, and its memory model drops
//! a stored value on any width-widening read. This module is the
//! replacement front door:
//!
//! * a **worklist explorer** that forks at each *feasible* branch —
//!   both sides of a fork are probed against the current path
//!   condition and infeasible sides are pruned, which is what makes
//!   bounded loops terminate (the "stay in the loop" branch eventually
//!   contradicts the path condition);
//! * a **bounded loop-unroll budget** per fork site as the safety net
//!   for genuinely unbounded loops;
//! * **incremental solving**: the per-path constraint set lives on a
//!   [`Session`] stack, so sibling paths share the encoding and the
//!   two-watched-literal state of their common prefix instead of
//!   re-blasting from scratch (`incremental(false)` keeps the
//!   N-independent-blasts mode as the measured baseline);
//! * the **widening memory model** ([`crate::exec`]'s `load` with
//!   `widen = true`): a narrow store read back wider keeps its low
//!   bits, closing the store-forwarding hole the single-shot executor
//!   retains as a differential reference.
//!
//! The one-door API is [`FilterExplorer::builder`] →
//! [`FilterExplorer::explore`] → [`ExplorationReport`] (per-path
//! verdicts, merged filter classification, path/solver/memo counters),
//! plus [`FilterExplorer::explore_batch`] for many filters of one
//! image in one call.
//!
//! # Parallel exploration
//!
//! With `jobs(n)`, `n > 1`, exploration runs as a deterministic fork
//! scheduler over N workers. Each worker owns a private incremental
//! [`Session`] (push/pop state cannot be shared across threads) and a
//! private fresh-variable counter. Work is handed off at fork points:
//! when a both-feasible fork fires and the shared queue is hungry, the
//! taken side is *published* as a decision-bit prefix instead of being
//! kept on the local LIFO worklist. A thief rebuilds the subtree root
//! by **prefix replay** — re-decoding and re-stepping the shared path
//! prefix into its own session, consuming one recorded decision bit
//! per fork, issuing *zero* solver queries. Replay cost is bounded by
//! path depth and is far cheaper than re-blasting; it is measured in
//! [`ParallelStats::replay_steps`] against fresh
//! [`ParallelStats::run_steps`].
//!
//! Determinism is restored at the end by a **canonical merge**: every
//! attempt (one worklist pop) is keyed by its decision-bit string —
//! `0` = fall-through, `1` = taken, appended at every fork — and the
//! sequential explorer's LIFO pop order is exactly ascending
//! lexicographic order of those strings (later-spawned siblings carry
//! an earlier `0`). Sorting all attempt records by prefix therefore
//! reconstructs the sequential order no matter which worker ran what,
//! and the path budget is applied at merge time on the canonical walk,
//! so merged verdicts, path order, and the `paths_completed` /
//! `paths_pruned` metrics are byte-identical across `jobs(1..=n)`.
//! Solver/memo counters in the report are likewise reconstructed from
//! per-attempt query logs replayed in canonical order against a
//! batch-shared seen-set (the process-global counters keep counting
//! *actual* work, which under speculation is more).

use crate::blast::{
    check, memo_generation, query_log_begin, query_log_drain, query_log_end,
    reference_pipeline_active, with_reference_pipeline, QueryEvent, SatResult, Session,
};
use crate::exec::{
    step_inst, CodeSource, FilterAnalysis, FilterVerdict, PathEnd, StepOut, SymExec, SymState,
    CODE_VAR, EXCEPTION_ACCESS_VIOLATION,
};
use crate::expr::{BoolExpr, CmpOp, Expr};
use cr_isa::{decode, Inst};
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Process-wide count of explorer paths run to a `ret`.
static PATHS_COMPLETED: AtomicU64 = AtomicU64::new(0);

/// Process-wide count of branch sides pruned as infeasible.
static PATHS_PRUNED: AtomicU64 = AtomicU64::new(0);

/// Total explorer paths completed by this process so far (campaign
/// metrics delta these, like [`crate::solver_calls`]).
pub fn paths_completed() -> u64 {
    PATHS_COMPLETED.load(Ordering::Relaxed)
}

/// Total infeasible branch sides pruned by this process so far.
pub fn paths_pruned() -> u64 {
    PATHS_PRUNED.load(Ordering::Relaxed)
}

/// A point-in-time snapshot of the five process-global solver and
/// explorer work counters.
///
/// The counters themselves are process-global and bleed across
/// concurrently running tests (and across parallel exploration
/// workers), so absolute values are meaningless in any process that
/// runs more than one thing. Scope an assertion instead: snapshot
/// before the work, assert on [`SolverCounters::delta`] after. In a
/// quiet single-threaded section the delta is exactly the section's
/// own work.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverCounters {
    /// Satisfiability checks issued ([`crate::solver_calls`]).
    pub solver_calls: u64,
    /// Normalized-query memo probes ([`crate::memo_lookups`]).
    pub memo_lookups: u64,
    /// Normalized-query memo hits ([`crate::memo_hits`]).
    pub memo_hits: u64,
    /// Explorer paths run to a `ret` ([`paths_completed`]).
    pub paths_completed: u64,
    /// Branch sides pruned as infeasible ([`paths_pruned`]).
    pub paths_pruned: u64,
}

impl SolverCounters {
    /// Snapshot the current process-global counter values.
    pub fn snapshot() -> SolverCounters {
        SolverCounters {
            solver_calls: crate::blast::solver_calls(),
            memo_lookups: crate::blast::memo_lookups(),
            memo_hits: crate::blast::memo_hits(),
            paths_completed: paths_completed(),
            paths_pruned: paths_pruned(),
        }
    }

    /// Work done by this process since `self` was snapped.
    pub fn delta(&self) -> SolverCounters {
        let now = SolverCounters::snapshot();
        SolverCounters {
            solver_calls: now.solver_calls - self.solver_calls,
            memo_lookups: now.memo_lookups - self.memo_lookups,
            memo_hits: now.memo_hits - self.memo_hits,
            paths_completed: now.paths_completed - self.paths_completed,
            paths_pruned: now.paths_pruned - self.paths_pruned,
        }
    }
}

/// Verdict for one explored path.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub enum PathVerdict {
    /// This path returns ≠ 0 for some access violation.
    AcceptsAv {
        /// Concrete accepted `ExceptionCode` (the AV code by
        /// construction of the query).
        witness_code: u64,
    },
    /// This path returns 0 for every access violation (or is not
    /// reachable with `ExceptionCode == AV` at all).
    RejectsAv,
    /// The solver could not decide this path's query.
    Unknown(&'static str),
    /// Execution left the supported fragment before returning.
    Aborted(&'static str),
}

/// One explored path.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct PathReport {
    /// Per-path verdict.
    pub verdict: PathVerdict,
    /// Instructions executed along this path (prefix included).
    pub steps: usize,
    /// Number of branch constraints on this path's condition.
    pub depth: usize,
}

/// Structured result of exploring one filter: per-path verdicts, the
/// merged classification, and the work counters the campaign metrics
/// and benches consume.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct ExplorationReport {
    /// Merged filter classification, with single-shot verdict-priority
    /// semantics: an accept witness wins, otherwise the first abort
    /// reason, otherwise solver unknowns, otherwise rejection.
    pub verdict: FilterVerdict,
    /// Every path, in deterministic DFS discovery order.
    pub paths: Vec<PathReport>,
    /// Paths that reached a `ret`.
    pub completed_paths: usize,
    /// Abort reasons, in path order.
    pub aborted_paths: Vec<&'static str>,
    /// Branch sides pruned as infeasible (this is what bounds loops).
    pub pruned_branches: usize,
    /// Total instructions symbolically executed.
    pub steps: usize,
    /// Satisfiability checks issued during this exploration
    /// (feasibility probes + per-path verdict queries).
    pub solver_calls: u64,
    /// Normalized-query memo probes during this exploration.
    pub memo_lookups: u64,
    /// Normalized-query memo hits during this exploration.
    pub memo_hits: u64,
}

impl ExplorationReport {
    /// View as the single-shot [`FilterAnalysis`] shape (drop-in for
    /// callers that predate the explorer).
    pub fn to_analysis(&self) -> FilterAnalysis {
        FilterAnalysis {
            verdict: self.verdict.clone(),
            completed_paths: self.completed_paths,
            aborted_paths: self.aborted_paths.clone(),
            steps: self.steps,
        }
    }
}

/// Work accounting for one [`FilterExplorer::explore_batch`] call.
///
/// Replay is the price of subtree hand-off: a stolen subtree re-steps
/// its shared path prefix into the thief's session instead of cloning
/// unsendable state. `replay_steps / run_steps` is therefore the
/// parallelism overhead ratio the bench reports. Unlike the merged
/// [`ExplorationReport`]s, these numbers depend on scheduling and are
/// **not** deterministic across runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct ParallelStats {
    /// Worker count the batch ran with.
    pub jobs: usize,
    /// Tasks executed (per-filter roots + stolen subtrees + retries).
    pub tasks: u64,
    /// Subtree hand-offs published to the shared queue.
    pub published: u64,
    /// Instructions re-executed rebuilding stolen path prefixes.
    pub replay_steps: u64,
    /// Fresh exploration instructions executed.
    pub run_steps: u64,
}

/// Path-enumerating filter analysis with incremental solving — the
/// one-door replacement for scattered `analyze_filter`/`check` call
/// sites. Construct through [`FilterExplorer::builder`].
#[derive(Debug, Clone, Copy)]
pub struct FilterExplorer {
    max_paths: usize,
    max_steps: usize,
    max_unroll: usize,
    incremental: bool,
    jobs: usize,
    chaos: Option<fn(usize, u64)>,
}

impl Default for FilterExplorer {
    fn default() -> FilterExplorer {
        FilterExplorer::builder().build()
    }
}

/// Builder for [`FilterExplorer`] (budgets, solver mode, parallelism).
#[derive(Debug, Clone, Copy)]
pub struct FilterExplorerBuilder {
    inner: FilterExplorer,
}

impl FilterExplorerBuilder {
    /// Maximum paths (completed + aborted) before giving up.
    pub fn max_paths(mut self, n: usize) -> Self {
        self.inner.max_paths = n;
        self
    }

    /// Maximum instructions per path. Defaults to the single-shot
    /// executor's budget, including any [`crate::with_step_budget`]
    /// override active on this thread — the fault-injection hook
    /// reaches the explorer the same way (the budget is resolved here,
    /// at build time, so exploration workers on other threads honor
    /// it too).
    pub fn max_steps(mut self, n: usize) -> Self {
        self.inner.max_steps = n;
        self
    }

    /// Maximum forks taken at one branch site per path — the loop
    /// unroll budget for loops whose trip count feasibility pruning
    /// cannot bound.
    pub fn max_unroll(mut self, n: usize) -> Self {
        self.inner.max_unroll = n;
        self
    }

    /// `true` (default): solve sibling paths by push/pop on a shared
    /// [`Session`]. `false`: blast every query independently through
    /// [`check`] — the bench baseline.
    pub fn incremental(mut self, on: bool) -> Self {
        self.inner.incremental = on;
        self
    }

    /// Exploration workers (default 1). `1` explores inline on the
    /// calling thread in exact sequential order; `n > 1` runs the
    /// deterministic fork scheduler over `n` threads. Reports are
    /// byte-identical either way (see the module docs).
    pub fn jobs(mut self, n: usize) -> Self {
        self.inner.jobs = n.max(1);
        self
    }

    /// Fault-injection hook, called as `(worker, attempt)` before each
    /// exploration attempt. A panic from the hook exercises the
    /// worker-crash recovery path: the poisoned task is retried once
    /// on a rebuilt session, then propagated.
    #[doc(hidden)]
    pub fn chaos_hook(mut self, hook: fn(usize, u64)) -> Self {
        self.inner.chaos = Some(hook);
        self
    }

    /// Finalize the configuration.
    pub fn build(self) -> FilterExplorer {
        self.inner
    }
}

/// One suspended sibling branch on a worker's local LIFO worklist: the
/// forked state plus the branch condition to assert when it resumes,
/// the [`Session`] depth of the shared prefix it forked from, and its
/// spawn coordinates for the canonical merge.
struct LocalWork {
    st: SymState,
    /// Fork counts per branch site along this path (unroll budget).
    unroll: HashMap<u64, usize>,
    /// Session depth of the path prefix below `cond`.
    fork_depth: usize,
    /// Branch condition to push when this item resumes (`None` for a
    /// task root — its conditions were asserted by prefix replay).
    cond: Option<BoolExpr>,
    /// Decision-bit string. At spawn this is the attempt's canonical
    /// identity; it grows by one bit per fork while the attempt runs.
    prefix: Vec<bool>,
    /// Parent's step count at the spawning fork (budget-marker steps).
    spawn_steps: usize,
    /// Parent's path depth at the spawning fork (budget-marker depth).
    spawn_depth: usize,
}

/// A published subtree: everything a thief needs to rebuild the
/// subtree root in its own session by prefix replay.
struct Task {
    filter: usize,
    prefix: Vec<bool>,
    /// Inherited path budget: the publisher's remaining budget at
    /// publish time. Over-admits speculative attempts past the
    /// canonical cutoff; the merge drops them.
    budget: usize,
    spawn_steps: usize,
    spawn_depth: usize,
    tries: u8,
}

/// What one attempt did, keyed by its decision-bit prefix. The merge
/// sorts these lexicographically to reconstruct sequential order.
struct AttemptRecord {
    /// Spawn prefix if the attempt never ran, full terminal decision
    /// string if it did (consistent under one order — an attempt's
    /// terminal string extends its own spawn prefix and diverges from
    /// every other attempt's at the spawning fork).
    prefix: Vec<bool>,
    spawn_steps: usize,
    spawn_depth: usize,
    /// `false`: the owning task hit its local path budget first; only
    /// the spawn coordinates above are meaningful.
    ran: bool,
    pruned: usize,
    steps_run: usize,
    /// Solver invocations, in issue order (for canonical counter
    /// reconstruction).
    queries: Vec<QueryEvent>,
    /// The path report, if this attempt produced one (`None` for
    /// infeasible-prefix attempts that died at a both-infeasible fork).
    terminal: Option<PathReport>,
}

/// Shared mutable state of one batch: the task queue and the committed
/// attempt records, one bucket per filter.
struct BatchQueue {
    tasks: Vec<Task>,
    /// Workers currently running a task (termination: queue empty and
    /// nothing active).
    active: usize,
    /// First unrecovered worker panic; set after a task's retry also
    /// panics. Drains the queue and is re-thrown by the caller.
    fatal: Option<Box<dyn std::any::Any + Send>>,
    records: Vec<Vec<AttemptRecord>>,
}

/// Everything a batch shares across its workers.
struct Batch<'a> {
    ex: FilterExplorer,
    code: &'a (dyn CodeSource + Sync),
    entries: &'a [u64],
    jobs: usize,
    /// Memo generation at batch start (query-log epoch).
    epoch: u64,
    /// Reference-pipeline flag of the spawning thread, re-entered by
    /// every worker ([`with_reference_pipeline`] is thread-local).
    reference: bool,
    queue: Mutex<BatchQueue>,
    cv: Condvar,
    published: AtomicU64,
    tasks_run: AtomicU64,
    replay_steps: AtomicU64,
    run_steps: AtomicU64,
}

impl FilterExplorer {
    /// Start configuring an explorer. Defaults: 256 paths, the
    /// single-shot step budget (512 unless overridden), 64 unrolls per
    /// branch site, incremental solving on, one worker.
    pub fn builder() -> FilterExplorerBuilder {
        FilterExplorerBuilder {
            inner: FilterExplorer {
                max_paths: 256,
                max_steps: SymExec::default().max_steps,
                max_unroll: 64,
                incremental: true,
                jobs: 1,
                chaos: None,
            },
        }
    }

    /// Explore the filter function entered at `entry` under the
    /// Windows x64 filter-call harness (same ABI as
    /// [`SymExec::analyze_filter`]).
    pub fn explore(&self, code: &(dyn CodeSource + Sync), entry: u64) -> ExplorationReport {
        let (mut reports, _) = self.explore_batch(code, std::slice::from_ref(&entry));
        reports.pop().expect("one entry in, one report out")
    }

    /// Explore every filter in `entries` (same image) in one batch:
    /// one session warmup per worker amortized across all filters, and
    /// fork-level parallelism across as well as within filters when
    /// `jobs > 1`. Reports come back in `entries` order and are
    /// byte-identical to calling [`FilterExplorer::explore`] per entry
    /// in that order.
    pub fn explore_batch(
        &self,
        code: &(dyn CodeSource + Sync),
        entries: &[u64],
    ) -> (Vec<ExplorationReport>, ParallelStats) {
        let jobs = self.jobs.max(1);
        let batch = Batch {
            ex: *self,
            code,
            entries,
            jobs,
            epoch: memo_generation(),
            reference: reference_pipeline_active(),
            queue: Mutex::new(BatchQueue {
                // A LIFO stack: push the per-filter roots in reverse so
                // filter 0 pops (and at `jobs == 1` fully runs) first.
                tasks: (0..entries.len())
                    .rev()
                    .map(|filter| Task {
                        filter,
                        prefix: Vec::new(),
                        budget: self.max_paths,
                        spawn_steps: 0,
                        spawn_depth: 0,
                        tries: 0,
                    })
                    .collect(),
                active: 0,
                fatal: None,
                records: entries.iter().map(|_| Vec::new()).collect(),
            }),
            cv: Condvar::new(),
            published: AtomicU64::new(0),
            tasks_run: AtomicU64::new(0),
            replay_steps: AtomicU64::new(0),
            run_steps: AtomicU64::new(0),
        };
        if jobs == 1 {
            worker_loop(&batch, 0);
        } else {
            std::thread::scope(|s| {
                for worker in 0..jobs {
                    let batch = &batch;
                    s.spawn(move || worker_loop(batch, worker));
                }
            });
        }
        let q = batch.queue.into_inner().unwrap_or_else(|e| e.into_inner());
        if let Some(payload) = q.fatal {
            resume_unwind(payload);
        }
        let stats = ParallelStats {
            jobs,
            tasks: batch.tasks_run.into_inner(),
            published: batch.published.into_inner(),
            replay_steps: batch.replay_steps.into_inner(),
            run_steps: batch.run_steps.into_inner(),
        };
        // Canonical merge, filter by filter, with one memo seen-set
        // threaded through the whole batch in filter order — exactly
        // the memo state a sequential quiet process would have seen.
        let mut seen: HashSet<Vec<u8>> = HashSet::new();
        let mut reports = Vec::with_capacity(entries.len());
        for records in q.records {
            // Advisory, like the single-shot "filter.vet" span: whether
            // an exploration happens at all can depend on cache
            // scheduling.
            let mut span = cr_trace::span_advisory(cr_trace::Stage::Symex, "filter.explore");
            let report = self.merge_filter(records, &mut seen);
            span.set_detail(|| {
                let verdict = match report.verdict {
                    FilterVerdict::AcceptsAccessViolation { .. } => "accepts_av",
                    FilterVerdict::RejectsAccessViolation => "rejects_av",
                    FilterVerdict::Unknown(_) => "unknown",
                };
                format!(
                    "paths={} completed={} aborted={} pruned={} steps={} verdict={verdict}",
                    report.paths.len(),
                    report.completed_paths,
                    report.aborted_paths.len(),
                    report.pruned_branches,
                    report.steps,
                )
            });
            reports.push(report);
        }
        (reports, stats)
    }

    /// Reduce one filter's attempt records to the sequential report:
    /// sort by decision prefix (= sequential pop order), apply the
    /// path budget on the walk, and replay the query log against the
    /// batch seen-set for canonical solver/memo counters.
    fn merge_filter(
        &self,
        mut records: Vec<AttemptRecord>,
        seen: &mut HashSet<Vec<u8>>,
    ) -> ExplorationReport {
        // Chaos retries can commit one subtree twice (a published child
        // of the doomed first try, and the retry's own copy). Records
        // are deterministic, so keep one per prefix, preferring the
        // copy that ran (budget inheritance can differ across copies).
        records.sort_by(|a, b| a.prefix.cmp(&b.prefix).then(b.ran.cmp(&a.ran)));
        records.dedup_by(|a, b| a.prefix == b.prefix);
        let mut paths: Vec<PathReport> = Vec::new();
        let mut aborted: Vec<&'static str> = Vec::new();
        let mut completed = 0usize;
        let mut pruned = 0usize;
        let mut total_steps = 0usize;
        let mut accept_witness = None;
        let mut any_unknown_solver = false;
        let mut calls = 0u64;
        let mut lookups = 0u64;
        let mut hits = 0u64;
        for rec in records {
            if paths.len() >= self.max_paths {
                // The canonically next attempt is where the sequential
                // explorer would have stopped: synthesize its budget
                // marker from the spawn coordinates and drop everything
                // after it (speculatively explored or not).
                aborted.push("path budget exhausted");
                paths.push(PathReport {
                    verdict: PathVerdict::Aborted("path budget exhausted"),
                    steps: rec.spawn_steps,
                    depth: rec.spawn_depth,
                });
                break;
            }
            assert!(
                rec.ran,
                "canonical merge reached an unexplored attempt under budget"
            );
            pruned += rec.pruned;
            total_steps += rec.steps_run;
            for q in &rec.queries {
                calls += 1;
                if let QueryEvent::Probed { key, pre_existing } = q {
                    lookups += 1;
                    if *pre_existing || seen.contains(key) {
                        hits += 1;
                    } else {
                        seen.insert(key.clone());
                    }
                }
            }
            let Some(p) = rec.terminal else {
                continue;
            };
            match &p.verdict {
                PathVerdict::Aborted(r) => aborted.push(r),
                PathVerdict::AcceptsAv { witness_code } => {
                    completed += 1;
                    if accept_witness.is_none() {
                        accept_witness = Some(*witness_code);
                    }
                }
                PathVerdict::RejectsAv => completed += 1,
                PathVerdict::Unknown(_) => {
                    completed += 1;
                    any_unknown_solver = true;
                }
            }
            paths.push(p);
        }
        // The process-global metrics move by the *canonical* totals,
        // here at merge time, so they too are identical across job
        // counts (speculative work never shows).
        PATHS_COMPLETED.fetch_add(completed as u64, Ordering::Relaxed);
        PATHS_PRUNED.fetch_add(pruned as u64, Ordering::Relaxed);
        // Same verdict priority as the single-shot pipeline.
        let verdict = match accept_witness {
            Some(witness_code) => FilterVerdict::AcceptsAccessViolation { witness_code },
            None if !aborted.is_empty() => FilterVerdict::Unknown(aborted[0]),
            None if any_unknown_solver => FilterVerdict::Unknown("solver gave up"),
            None if completed == 0 => FilterVerdict::Unknown("no complete path"),
            None => FilterVerdict::RejectsAccessViolation,
        };
        ExplorationReport {
            verdict,
            paths,
            completed_paths: completed,
            aborted_paths: aborted,
            pruned_branches: pruned,
            steps: total_steps,
            solver_calls: calls,
            memo_lookups: lookups,
            memo_hits: hits,
        }
    }
}

/// One exploration worker: pop tasks until the queue drains, with
/// crash containment (a panicking task is retried once on a rebuilt
/// session, then recorded as fatal). At `jobs == 1` this runs inline
/// on the calling thread in exact sequential order.
fn worker_loop(batch: &Batch<'_>, worker: usize) {
    query_log_begin(batch.epoch);
    let mut session: Option<Session> = batch.ex.incremental.then(Session::new);
    let mut attempts = 0u64;
    let mut tasks_done = 0u64;
    let mut wspan = cr_trace::span_advisory(cr_trace::Stage::Symex, "explore.worker");
    loop {
        let task = {
            let mut q = batch.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(t) = q.tasks.pop() {
                    q.active += 1;
                    break Some(t);
                }
                if q.active == 0 {
                    break None;
                }
                q = batch.cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
        };
        let Some(task) = task else {
            batch.cv.notify_all();
            break;
        };
        batch.tasks_run.fetch_add(1, Ordering::Relaxed);
        tasks_done += 1;
        let run = catch_unwind(AssertUnwindSafe(|| {
            if batch.reference {
                with_reference_pipeline(|| {
                    run_task(batch, &task, &mut session, worker, &mut attempts)
                })
            } else {
                run_task(batch, &task, &mut session, worker, &mut attempts)
            }
        }));
        let mut q = batch.queue.lock().unwrap_or_else(|e| e.into_inner());
        q.active -= 1;
        match run {
            Ok(records) => q.records[task.filter].extend(records),
            Err(payload) => {
                // The session and this thread's query log may be
                // mid-mutation: rebuild both before touching another
                // task. Nothing from the doomed run was committed.
                session = batch.ex.incremental.then(Session::new);
                query_log_begin(batch.epoch);
                if task.tries == 0 && q.fatal.is_none() {
                    let mut retry = task;
                    retry.tries = 1;
                    q.tasks.push(retry);
                } else {
                    if q.fatal.is_none() {
                        q.fatal = Some(payload);
                    }
                    q.tasks.clear();
                }
            }
        }
        if q.tasks.is_empty() && q.active == 0 {
            batch.cv.notify_all();
        } else if !q.tasks.is_empty() {
            batch.cv.notify_one();
        }
    }
    query_log_end();
    wspan.set_detail(|| format!("worker={worker} tasks={tasks_done}"));
    drop(wspan);
    cr_trace::flush_local();
}

/// Run one task to completion: replay the stolen prefix, then explore
/// its subtree with a local LIFO worklist, publishing both-feasible
/// fork sides when the shared queue is hungry. Returns the attempt
/// records to commit; committed atomically by the caller only on
/// success, so a panic can never leave a torn record set.
fn run_task(
    batch: &Batch<'_>,
    task: &Task,
    session: &mut Option<Session>,
    worker: usize,
    attempts: &mut u64,
) -> Vec<AttemptRecord> {
    let ex = &batch.ex;
    let code = batch.code;
    let entry = batch.entries[task.filter];
    let mut fresh = 0u32;
    if let Some(sess) = session.as_mut() {
        sess.pop_to(0);
    }
    // Defensive: a predecessor must not leak events into this task.
    let _ = query_log_drain();
    let mut records: Vec<AttemptRecord> = Vec::new();

    // Phase 1 — prefix replay: rebuild the subtree root by re-stepping
    // the shared path prefix, consuming one recorded decision per fork.
    // No feasibility probes, no spawns: every query along this prefix
    // was already issued (and recorded) by the publishing side.
    let mut st = SymState::filter_harness(entry);
    let mut unroll: HashMap<u64, usize> = HashMap::new();
    let mut replayed = 0u64;
    let mut cursor = 0usize;
    while cursor < task.prefix.len() {
        let mut bytes = [0u8; 15];
        let n = code.read_code(st.rip, &mut bytes);
        assert!(n > 0, "prefix replay fell off code");
        let d = decode(&bytes[..n]).expect("prefix replay hit undecodable code");
        st.steps += 1;
        replayed += 1;
        match step_inst(&mut st, &d.inst, d.len, &mut fresh, true) {
            StepOut::Continue => {}
            StepOut::Fork(cond) => {
                let next = st.rip.wrapping_add(d.len as u64);
                let Inst::Jcc { rel, .. } = d.inst else {
                    unreachable!()
                };
                let target = next.wrapping_add(rel as i64 as u64);
                *unroll.entry(st.rip).or_insert(0) += 1;
                let taken = task.prefix[cursor];
                cursor += 1;
                let c = if taken { cond } else { BoolExpr::not(cond) };
                let push_err = match session.as_mut() {
                    Some(sess) => sess.push(&c).err(),
                    None => None,
                };
                st.path.push(c);
                if let Some(e) = push_err {
                    // Only the final bit — the spawn condition itself —
                    // can fail to encode (every earlier bit was pushed
                    // by an ancestor). This is the sequential resume
                    // failure, reported the same way.
                    batch.replay_steps.fetch_add(replayed, Ordering::Relaxed);
                    let _ = query_log_drain();
                    records.push(AttemptRecord {
                        prefix: task.prefix.clone(),
                        spawn_steps: task.spawn_steps,
                        spawn_depth: task.spawn_depth,
                        ran: true,
                        pruned: 0,
                        steps_run: 0,
                        queries: Vec::new(),
                        terminal: Some(PathReport {
                            verdict: PathVerdict::Aborted(e),
                            steps: st.steps,
                            depth: st.path.len(),
                        }),
                    });
                    return records;
                }
                st.rip = if taken { target } else { next };
            }
            StepOut::End(_) => panic!("prefix replay diverged at a path end"),
        }
    }
    batch.replay_steps.fetch_add(replayed, Ordering::Relaxed);

    // Phase 2 — explore the subtree, sequential-style.
    let code_is_av = BoolExpr::cmp(
        CmpOp::Eq,
        32,
        Expr::var(CODE_VAR, 32),
        Expr::c(EXCEPTION_ACCESS_VIOLATION),
    );
    let mut terminals = 0usize;
    let mut local: Vec<LocalWork> = vec![LocalWork {
        st,
        unroll,
        fork_depth: 0,
        cond: None,
        prefix: task.prefix.clone(),
        spawn_steps: task.spawn_steps,
        spawn_depth: task.spawn_depth,
    }];
    let mut run_steps = 0u64;
    'work: while let Some(mut w) = local.pop() {
        if terminals >= task.budget {
            // Local path budget exhausted. Everything still queued is
            // canonically past the batch-wide cutoff (budget
            // inheritance guarantees ≥ max_paths terminals sort before
            // it); record spawn coordinates so the merge can place the
            // budget marker, and stop.
            records.push(unrun_record(w));
            while let Some(rest) = local.pop() {
                records.push(unrun_record(rest));
            }
            break;
        }
        if let Some(hook) = ex.chaos {
            hook(worker, *attempts);
        }
        *attempts += 1;
        let mut pspan = cr_trace::span_advisory(cr_trace::Stage::Symex, "filter.path");
        let mut pruned = 0usize;
        let mut steps_run = 0usize;
        // Resume: rewind the session to the shared prefix and assert
        // this sibling's branch condition.
        let mut resume_err = None;
        if let Some(cond) = w.cond.take() {
            if let Some(sess) = session.as_mut() {
                sess.pop_to(w.fork_depth);
                if let Err(e) = sess.push(&cond) {
                    resume_err = Some(e);
                }
            }
            w.st.path.push(cond);
        }
        let end = if let Some(e) = resume_err {
            PathEnd::Aborted(e)
        } else {
            loop {
                if w.st.steps >= ex.max_steps {
                    break PathEnd::Aborted("step budget exhausted");
                }
                let mut bytes = [0u8; 15];
                let n = code.read_code(w.st.rip, &mut bytes);
                if n == 0 {
                    break PathEnd::Aborted("fell off code");
                }
                let Ok(d) = decode(&bytes[..n]) else {
                    break PathEnd::Aborted("undecodable instruction");
                };
                w.st.steps += 1;
                steps_run += 1;
                match step_inst(&mut w.st, &d.inst, d.len, &mut fresh, true) {
                    StepOut::Continue => {}
                    StepOut::Fork(cond) => {
                        let next = w.st.rip.wrapping_add(d.len as u64);
                        let Inst::Jcc { rel, .. } = d.inst else {
                            unreachable!()
                        };
                        let target = next.wrapping_add(rel as i64 as u64);
                        let site = w.st.rip;
                        let seen = w.unroll.entry(site).or_insert(0);
                        *seen += 1;
                        if *seen > ex.max_unroll {
                            break PathEnd::Aborted("loop unroll budget exhausted");
                        }
                        let not_cond = BoolExpr::not(cond.clone());
                        let take_ok = feasible(session.as_mut(), &w.st.path, &cond);
                        let fall_ok = feasible(session.as_mut(), &w.st.path, &not_cond);
                        match (take_ok, fall_ok) {
                            (true, true) => {
                                let mut child_prefix = w.prefix.clone();
                                child_prefix.push(true);
                                let child = Task {
                                    filter: task.filter,
                                    prefix: child_prefix,
                                    budget: task.budget - terminals,
                                    spawn_steps: w.st.steps,
                                    spawn_depth: w.st.path.len(),
                                    tries: 0,
                                };
                                if let Some(child) = try_publish(batch, child) {
                                    let mut taken = w.st.clone();
                                    taken.rip = target;
                                    local.push(LocalWork {
                                        st: taken,
                                        unroll: w.unroll.clone(),
                                        fork_depth: session.as_ref().map_or(0, Session::depth),
                                        cond: Some(cond),
                                        prefix: child.prefix,
                                        spawn_steps: child.spawn_steps,
                                        spawn_depth: child.spawn_depth,
                                    });
                                }
                                w.prefix.push(false);
                                if let Err(e) = assert_cond(session.as_mut(), not_cond, &mut w.st) {
                                    break PathEnd::Aborted(e);
                                }
                                w.st.rip = next;
                            }
                            (true, false) => {
                                pruned += 1;
                                w.prefix.push(true);
                                if let Err(e) = assert_cond(session.as_mut(), cond, &mut w.st) {
                                    break PathEnd::Aborted(e);
                                }
                                w.st.rip = target;
                            }
                            (false, true) => {
                                pruned += 1;
                                w.prefix.push(false);
                                if let Err(e) = assert_cond(session.as_mut(), not_cond, &mut w.st) {
                                    break PathEnd::Aborted(e);
                                }
                                w.st.rip = next;
                            }
                            (false, false) => {
                                // The prefix itself is unsatisfiable
                                // (reachable only via an explored
                                // Unknown probe): drop the path, it
                                // constrains nothing.
                                pruned += 2;
                                run_steps += steps_run as u64;
                                pspan.set_detail(|| "verdict=infeasible-prefix".into());
                                drop(pspan);
                                records.push(AttemptRecord {
                                    prefix: w.prefix,
                                    spawn_steps: w.spawn_steps,
                                    spawn_depth: w.spawn_depth,
                                    ran: true,
                                    pruned,
                                    steps_run,
                                    queries: query_log_drain(),
                                    terminal: None,
                                });
                                continue 'work;
                            }
                        }
                    }
                    StepOut::End(e) => break e,
                }
            }
        };
        let report = match end {
            PathEnd::Aborted(r) => PathReport {
                verdict: PathVerdict::Aborted(r),
                steps: w.st.steps,
                depth: w.st.path.len(),
            },
            PathEnd::Ret { value, path } => {
                // Query: path ∧ code == AV ∧ eax != 0.
                let ret_nz = BoolExpr::cmp(CmpOp::Ne, 32, value, Expr::c(0));
                let r = match session.as_mut() {
                    Some(sess) => sess.check_assuming(&[code_is_av.clone(), ret_nz]),
                    None => {
                        let mut cs = path;
                        cs.push(code_is_av.clone());
                        cs.push(ret_nz);
                        check(&cs)
                    }
                };
                let verdict = match r {
                    SatResult::Sat(m) => PathVerdict::AcceptsAv {
                        witness_code: m.get(CODE_VAR),
                    },
                    SatResult::Unsat => PathVerdict::RejectsAv,
                    SatResult::Unknown(e) => PathVerdict::Unknown(e),
                };
                PathReport {
                    verdict,
                    steps: w.st.steps,
                    depth: w.st.path.len(),
                }
            }
        };
        terminals += 1;
        run_steps += steps_run as u64;
        pspan.set_detail(|| {
            let v = match &report.verdict {
                PathVerdict::AcceptsAv { .. } => "accepts_av",
                PathVerdict::RejectsAv => "rejects_av",
                PathVerdict::Unknown(_) => "unknown",
                PathVerdict::Aborted(_) => "aborted",
            };
            format!("verdict={v} steps={} depth={}", report.steps, report.depth)
        });
        drop(pspan);
        records.push(AttemptRecord {
            prefix: w.prefix,
            spawn_steps: w.spawn_steps,
            spawn_depth: w.spawn_depth,
            ran: true,
            pruned,
            steps_run,
            queries: query_log_drain(),
            terminal: Some(report),
        });
    }
    batch.run_steps.fetch_add(run_steps, Ordering::Relaxed);
    records
}

/// Record an attempt the task's local budget never let run.
fn unrun_record(w: LocalWork) -> AttemptRecord {
    AttemptRecord {
        prefix: w.prefix,
        spawn_steps: w.spawn_steps,
        spawn_depth: w.spawn_depth,
        ran: false,
        pruned: 0,
        steps_run: 0,
        queries: Vec::new(),
        terminal: None,
    }
}

/// Offer a subtree to the shared queue. Declined (returned to the
/// caller for local exploration) when running single-worker, when the
/// queue already holds enough work to keep every worker fed, or after
/// a fatal worker crash.
fn try_publish(batch: &Batch<'_>, child: Task) -> Option<Task> {
    if batch.jobs < 2 {
        return Some(child);
    }
    let mut q = batch.queue.lock().unwrap_or_else(|e| e.into_inner());
    if q.fatal.is_some() || q.tasks.len() >= batch.jobs * 2 {
        return Some(child);
    }
    q.tasks.push(child);
    batch.published.fetch_add(1, Ordering::Relaxed);
    batch.cv.notify_one();
    None
}

/// Probe whether `cond` is satisfiable under the current path prefix.
/// `Unknown` counts as feasible — exploring the side is sound, the
/// final per-path query decides.
fn feasible(session: Option<&mut Session>, prefix: &[BoolExpr], cond: &BoolExpr) -> bool {
    let r = match session {
        Some(sess) => sess.check_assuming(std::slice::from_ref(cond)),
        None => {
            let mut cs: Vec<BoolExpr> = prefix.to_vec();
            cs.push(cond.clone());
            check(&cs)
        }
    };
    !matches!(r, SatResult::Unsat)
}

/// Assert `cond` on the live path: push it onto the session stack (if
/// incremental) and onto the state's path condition.
fn assert_cond(
    session: Option<&mut Session>,
    cond: BoolExpr,
    st: &mut SymState,
) -> Result<(), &'static str> {
    if let Some(sess) = session {
        sess.push(&cond)?;
    }
    st.path.push(cond);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::FilterVerdict;
    use cr_isa::{Asm, Cond, Inst, Mem as MemOp, Reg, Rm, Width};

    fn filter(build: impl FnOnce(&mut Asm)) -> (u64, Vec<u8>) {
        let mut a = Asm::new(0x1_0000);
        build(&mut a);
        (0x1_0000, a.assemble().unwrap().code)
    }

    fn explore(code: &(u64, Vec<u8>)) -> ExplorationReport {
        let src = (code.0, code.1.as_slice());
        FilterExplorer::default().explore(&src, code.0)
    }

    fn single_shot(code: &(u64, Vec<u8>)) -> FilterVerdict {
        let src = (code.0, code.1.as_slice());
        SymExec::default().analyze_filter(&src, code.0).verdict
    }

    fn load_code_into_eax(a: &mut Asm) {
        a.load(Reg::Rax, MemOp::base(Reg::Rcx));
        a.inst(Inst::MovRRm {
            dst: Reg::Rax,
            src: Rm::Mem(MemOp::base(Reg::Rax)),
            width: Width::B4,
        });
    }

    fn cmp_eax_imm(a: &mut Asm, imm: u32) {
        a.inst(Inst::AluRmI {
            op: cr_isa::AluOp::Cmp,
            dst: Rm::Reg(Reg::Rax),
            imm: imm as i32,
            width: Width::B4,
        });
    }

    /// `code >> k` until zero, then accept iff code == `accept_code`.
    /// Only the exit-after-32-shifts path admits an AV code, so the
    /// single-shot executor forks past its path budget while the
    /// explorer prunes the loop closed.
    fn shrink_loop_filter(accept_code: u32) -> (u64, Vec<u8>) {
        filter(|a| {
            load_code_into_eax(a);
            a.inst(Inst::MovRmR {
                dst: Rm::Reg(Reg::Rbx),
                src: Reg::Rax,
                width: Width::B4,
            });
            let top = a.fresh();
            a.bind(top);
            a.shr(Reg::Rbx, 1);
            a.cmp_ri(Reg::Rbx, 0);
            a.jcc(Cond::Ne, top);
            cmp_eax_imm(a, accept_code);
            let reject = a.fresh();
            a.jcc(Cond::Ne, reject);
            a.mov_ri(Reg::Rax, 1);
            a.ret();
            a.bind(reject);
            a.zero(Reg::Rax);
            a.ret();
        })
    }

    /// Spill eax (32-bit) to the stack, reload 64-bit, accept iff the
    /// reload equals 0x10. Truth: the low 32 bits are the exception
    /// code, so an AV can never be accepted. The single-shot memory
    /// model drops the spilled value on the widening read and reports
    /// an accept.
    fn spill_widen_filter() -> (u64, Vec<u8>) {
        filter(|a| {
            load_code_into_eax(a);
            a.inst(Inst::MovRmR {
                dst: Rm::Mem(MemOp::base_disp(Reg::Rsp, -8)),
                src: Reg::Rax,
                width: Width::B4,
            });
            a.inst(Inst::MovRRm {
                dst: Reg::Rax,
                src: Rm::Mem(MemOp::base_disp(Reg::Rsp, -8)),
                width: Width::B8,
            });
            a.inst(Inst::AluRmI {
                op: cr_isa::AluOp::Cmp,
                dst: Rm::Reg(Reg::Rax),
                imm: 0x10,
                width: Width::B8,
            });
            let reject = a.fresh();
            a.jcc(Cond::Ne, reject);
            a.mov_ri(Reg::Rax, 1);
            a.ret();
            a.bind(reject);
            a.zero(Reg::Rax);
            a.ret();
        })
    }

    #[test]
    fn explorer_agrees_with_single_shot_on_straightline_filters() {
        let accept = filter(|a| {
            a.mov_ri(Reg::Rax, 1);
            a.ret();
        });
        let reject = filter(|a| {
            a.zero(Reg::Rax);
            a.ret();
        });
        let av_eq = filter(|a| {
            load_code_into_eax(a);
            cmp_eax_imm(a, 0xC000_0005);
            let no = a.fresh();
            a.jcc(Cond::Ne, no);
            a.mov_ri(Reg::Rax, 1);
            a.ret();
            a.bind(no);
            a.zero(Reg::Rax);
            a.ret();
        });
        for f in [&accept, &reject, &av_eq] {
            assert_eq!(explore(f).verdict, single_shot(f));
        }
    }

    #[test]
    fn explorer_prunes_shrink_loop_and_accepts_av() {
        let f = shrink_loop_filter(0xC000_0005);
        // Single-shot stumbles onto the witness before its path budget
        // dies (the witness outranks the abort), but it still burns the
        // whole budget forking an infeasible loop tail.
        let src = (f.0, f.1.as_slice());
        let ss = SymExec::default().analyze_filter(&src, f.0);
        assert!(matches!(
            ss.verdict,
            FilterVerdict::AcceptsAccessViolation { .. }
        ));
        assert!(ss.aborted_paths.contains(&"path budget exhausted"));
        let r = explore(&f);
        assert_eq!(
            r.verdict,
            FilterVerdict::AcceptsAccessViolation {
                witness_code: EXCEPTION_ACCESS_VIOLATION
            }
        );
        assert!(r.pruned_branches > 0, "loop must close by pruning");
        assert!(r.aborted_paths.is_empty(), "{:?}", r.aborted_paths);
        // One exit path per feasible shift count (1..=32 for a 32-bit
        // nonzero value, plus the zero-input fall-through).
        assert_eq!(r.completed_paths, r.paths.len());
    }

    #[test]
    fn explorer_prunes_shrink_loop_and_rejects_non_av() {
        let f = shrink_loop_filter(0xC000_0094);
        assert!(matches!(single_shot(&f), FilterVerdict::Unknown(_)));
        let r = explore(&f);
        assert_eq!(r.verdict, FilterVerdict::RejectsAccessViolation);
        assert!(r
            .paths
            .iter()
            .all(|p| matches!(p.verdict, PathVerdict::RejectsAv)));
    }

    #[test]
    fn explorer_fixes_spill_widen_misclassification() {
        let f = spill_widen_filter();
        // Pinned divergence: the single-shot memory model is wrong here.
        assert!(matches!(
            single_shot(&f),
            FilterVerdict::AcceptsAccessViolation { .. }
        ));
        assert_eq!(explore(&f).verdict, FilterVerdict::RejectsAccessViolation);
    }

    #[test]
    fn unroll_budget_bounds_symbolic_loops() {
        let f = shrink_loop_filter(0xC000_0005);
        let r = FilterExplorer::builder()
            .max_unroll(4)
            .build()
            .explore(&(f.0, f.1.as_slice()), f.0);
        assert_eq!(
            r.verdict,
            FilterVerdict::Unknown("loop unroll budget exhausted")
        );
        assert!(r.aborted_paths.contains(&"loop unroll budget exhausted"));
    }

    #[test]
    fn path_budget_caps_exploration() {
        let f = shrink_loop_filter(0xC000_0094);
        let r = FilterExplorer::builder()
            .max_paths(4)
            .build()
            .explore(&(f.0, f.1.as_slice()), f.0);
        assert_eq!(r.verdict, FilterVerdict::Unknown("path budget exhausted"));
        assert_eq!(r.paths.len(), 5, "4 paths + the budget marker");
    }

    #[test]
    fn independent_mode_matches_incremental_verdicts() {
        for f in [
            shrink_loop_filter(0xC000_0005),
            shrink_loop_filter(0xC000_0094),
            spill_widen_filter(),
        ] {
            let src = (f.0, f.1.as_slice());
            let inc = FilterExplorer::builder().build().explore(&src, f.0);
            let ind = FilterExplorer::builder()
                .incremental(false)
                .build()
                .explore(&src, f.0);
            assert_eq!(inc.verdict, ind.verdict);
            assert_eq!(inc.completed_paths, ind.completed_paths);
            assert_eq!(inc.pruned_branches, ind.pruned_branches);
            let pv = |r: &ExplorationReport| {
                r.paths
                    .iter()
                    .map(|p| p.verdict.clone())
                    .collect::<Vec<_>>()
            };
            assert_eq!(pv(&inc), pv(&ind), "per-path parity");
        }
    }

    #[test]
    fn exploration_counters_and_analysis_view() {
        let f = shrink_loop_filter(0xC000_0005);
        let r = explore(&f);
        assert!(r.solver_calls > 0);
        assert!(r.memo_lookups > 0);
        assert!(r.steps > 0);
        let a = r.to_analysis();
        assert_eq!(a.verdict, r.verdict);
        assert_eq!(a.completed_paths, r.completed_paths);
        assert_eq!(a.steps, r.steps);
    }

    #[test]
    fn step_budget_override_reaches_explorer_defaults() {
        let clamped = crate::with_step_budget(3, || FilterExplorer::builder().build());
        let f = filter(|a| {
            a.mov_ri(Reg::Rax, 1);
            a.ret();
        });
        let r = clamped.explore(&(f.0, f.1.as_slice()), f.0);
        // Depending on the filter length the clamp may or may not bite;
        // what matters is the configured budget, so use a filter long
        // enough that 3 steps cannot finish it.
        let long = filter(|a| {
            load_code_into_eax(a);
            cmp_eax_imm(a, 0xC000_0005);
            let no = a.fresh();
            a.jcc(Cond::Ne, no);
            a.mov_ri(Reg::Rax, 1);
            a.ret();
            a.bind(no);
            a.zero(Reg::Rax);
            a.ret();
        });
        let r2 = crate::with_step_budget(3, || {
            FilterExplorer::builder()
                .build()
                .explore(&(long.0, long.1.as_slice()), long.0)
        });
        assert_eq!(r2.verdict, FilterVerdict::Unknown("step budget exhausted"));
        drop(r);
    }

    #[test]
    fn parallel_reports_are_byte_identical_across_jobs() {
        let filters = [
            shrink_loop_filter(0xC000_0005),
            shrink_loop_filter(0xC000_0094),
            spill_widen_filter(),
        ];
        for f in &filters {
            let src = (f.0, f.1.as_slice());
            // Warm the memo first: report memo-hit counts depend on the
            // process memo state at batch start, so compare runs from
            // the same (fully warm) state.
            let _ = FilterExplorer::builder().build().explore(&src, f.0);
            let seq = FilterExplorer::builder().build().explore(&src, f.0);
            for jobs in [2, 4] {
                let par = FilterExplorer::builder()
                    .jobs(jobs)
                    .build()
                    .explore(&src, f.0);
                assert_eq!(seq, par, "jobs={jobs} diverged from sequential");
            }
        }
    }

    #[test]
    fn parallel_budget_marker_is_canonical() {
        let f = shrink_loop_filter(0xC000_0094);
        let src = (f.0, f.1.as_slice());
        let _ = FilterExplorer::builder()
            .max_paths(4)
            .build()
            .explore(&src, f.0);
        let seq = FilterExplorer::builder()
            .max_paths(4)
            .build()
            .explore(&src, f.0);
        for jobs in [2, 4] {
            let par = FilterExplorer::builder()
                .max_paths(4)
                .jobs(jobs)
                .build()
                .explore(&src, f.0);
            assert_eq!(seq, par, "budget cutoff diverged at jobs={jobs}");
        }
    }

    #[test]
    fn batch_matches_per_filter_exploration() {
        let a = shrink_loop_filter(0xC000_0005);
        let b = spill_widen_filter();
        // One image holding both filters, far enough apart.
        let mut image = a.1.clone();
        let b_off = 0x200usize;
        image.resize(b_off, 0xCC);
        image.extend_from_slice(&b.1);
        let src = (a.0, image.as_slice());
        let entries = [a.0, a.0 + b_off as u64];
        // Warm the memo so hit counts don't depend on test ordering.
        for &e in &entries {
            let _ = FilterExplorer::builder().build().explore(&src, e);
        }
        let seq: Vec<ExplorationReport> = entries
            .iter()
            .map(|&e| FilterExplorer::builder().build().explore(&src, e))
            .collect();
        for jobs in [1, 2, 4] {
            let (batch, stats) = FilterExplorer::builder()
                .jobs(jobs)
                .build()
                .explore_batch(&src, &entries);
            assert_eq!(seq, batch, "batch diverged at jobs={jobs}");
            assert_eq!(stats.jobs, jobs);
            assert!(stats.tasks >= entries.len() as u64);
        }
    }

    #[test]
    fn solver_counter_deltas_scope_a_quiet_section() {
        let f = spill_widen_filter();
        let before = SolverCounters::snapshot();
        let r = explore(&f);
        let d = before.delta();
        assert!(d.solver_calls >= r.solver_calls);
        assert!(d.memo_lookups >= r.memo_lookups);
        assert!(d.paths_completed >= r.completed_paths as u64);
    }

    #[test]
    fn chaos_panic_is_retried_and_report_is_intact() {
        use std::sync::atomic::AtomicBool;
        static FIRED: AtomicBool = AtomicBool::new(false);
        fn blow_once(_worker: usize, _attempt: u64) {
            if !FIRED.swap(true, Ordering::SeqCst) {
                panic!("chaos: exploration worker down");
            }
        }
        let f = shrink_loop_filter(0xC000_0005);
        let src = (f.0, f.1.as_slice());
        let _ = FilterExplorer::builder().build().explore(&src, f.0);
        let seq = FilterExplorer::builder().build().explore(&src, f.0);
        FIRED.store(false, Ordering::SeqCst);
        let chaotic = FilterExplorer::builder()
            .jobs(2)
            .chaos_hook(blow_once)
            .build()
            .explore(&src, f.0);
        assert!(FIRED.load(Ordering::SeqCst), "hook never fired");
        assert_eq!(seq, chaotic, "retried run must merge to the same report");
    }

    #[test]
    fn chaos_persistent_panic_fails_cleanly() {
        fn always_blow(_worker: usize, _attempt: u64) {
            panic!("chaos: persistent worker failure");
        }
        let f = shrink_loop_filter(0xC000_0005);
        let src = (f.0, f.1.as_slice());
        let ex = FilterExplorer::builder()
            .jobs(2)
            .chaos_hook(always_blow)
            .build();
        let out = std::panic::catch_unwind(AssertUnwindSafe(|| ex.explore(&src, f.0)));
        let payload = out.expect_err("persistent panic must propagate, not produce a report");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or("non-str payload");
        assert!(msg.contains("persistent worker failure"), "{msg}");
    }
}
