//! Symbolic execution of exception filter functions.
//!
//! Reproduces the paper's §IV-C analysis: given the machine code of a SEH
//! exception filter, decide whether *any* input exception record with
//! `ExceptionCode == EXCEPTION_ACCESS_VIOLATION` makes the filter return a
//! value other than `EXCEPTION_CONTINUE_SEARCH` (0) — i.e. whether the
//! guarded region can survive an access violation and is therefore a
//! crash-resistance candidate.
//!
//! The executor forks on symbolic branches, keeps a path condition, and
//! discharges the final query per path with the bit-blasting solver.
//! Paths that leave the supported fragment (calls into other functions,
//! indirect jumps to symbolic targets, symbolic store addresses) abort
//! with a reason; a filter with only aborted paths is reported as
//! [`FilterVerdict::Unknown`] — exactly the "requires manual verification"
//! bucket the paper describes for filters that call helper functions.

use crate::blast::{check, SatResult};
use crate::expr::{BinOp, BoolExpr, CmpOp, Expr};
use cr_isa::{decode, AluOp, Cond, Inst, Mem as MemOp, Reg, Rm, ShiftOp, Width};
use std::collections::HashMap;
use std::rc::Rc;

/// `STATUS_ACCESS_VIOLATION`.
pub const EXCEPTION_ACCESS_VIOLATION: u64 = 0xC000_0005;
/// Filter return value: run the `__except` block.
pub const EXCEPTION_EXECUTE_HANDLER: i64 = 1;
/// Filter return value: keep searching handlers (do not handle).
pub const EXCEPTION_CONTINUE_SEARCH: i64 = 0;
/// Filter return value: re-execute the faulting instruction.
pub const EXCEPTION_CONTINUE_EXECUTION: i64 = -1;

/// Provides instruction bytes to the executor.
pub trait CodeSource {
    /// Copy code bytes starting at `va` into `buf`, returning how many
    /// bytes were available.
    fn read_code(&self, va: u64, buf: &mut [u8]) -> usize;
}

/// A `(base_va, bytes)` pair is a code source.
impl CodeSource for (u64, &[u8]) {
    fn read_code(&self, va: u64, buf: &mut [u8]) -> usize {
        let (base, bytes) = self;
        let Some(off) = va.checked_sub(*base) else {
            return 0;
        };
        let off = off as usize;
        if off >= bytes.len() {
            return 0;
        }
        let n = buf.len().min(bytes.len() - off);
        buf[..n].copy_from_slice(&bytes[off..off + n]);
        n
    }
}

/// Verdict for one filter function.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub enum FilterVerdict {
    /// Some path handles an access violation (returns ≠ 0). The witness
    /// model pins the symbolic exception-record fields.
    AcceptsAccessViolation {
        /// A concrete `ExceptionCode` that is accepted (always the AV code
        /// by construction of the query).
        witness_code: u64,
    },
    /// Every complete path with `ExceptionCode == AV` returns 0
    /// (`EXCEPTION_CONTINUE_SEARCH`): the filter cannot paper over AVs.
    RejectsAccessViolation,
    /// Analysis could not decide (aborted paths, e.g. the filter calls
    /// another function). The paper vets these manually.
    Unknown(&'static str),
}

/// Result of analyzing one filter.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub struct FilterAnalysis {
    /// The verdict.
    pub verdict: FilterVerdict,
    /// Number of completed (returning) paths.
    pub completed_paths: usize,
    /// Number of aborted paths, with reasons.
    pub aborted_paths: Vec<&'static str>,
    /// Total instructions symbolically executed.
    pub steps: usize,
}

/// Symbolic exception-record harness addresses (arbitrary, concrete).
const PTRS_ADDR: u64 = 0x7_0000_0000;
const RECORD_ADDR: u64 = 0x7_0000_0100;
const CONTEXT_ADDR: u64 = 0x7_0000_0400;
const FRAME_ADDR: u64 = 0x7_0000_0800;
const STACK_ADDR: u64 = 0x7_0000_F000;

/// Name of the symbolic `ExceptionCode` variable.
pub const CODE_VAR: &str = "exception_code";

#[derive(Clone)]
struct FlagsDef {
    op: AluOp,
    a: Rc<Expr>,
    b: Rc<Expr>,
    width: u32,
}

#[derive(Clone)]
pub(crate) struct SymState {
    regs: [Rc<Expr>; 16],
    /// Concrete address → (value expr, width bits).
    mem: HashMap<u64, (Rc<Expr>, u32)>,
    flags: Option<FlagsDef>,
    pub(crate) path: Vec<BoolExpr>,
    pub(crate) rip: u64,
    pub(crate) steps: usize,
}

impl SymState {
    /// The Windows x64 filter-call harness: `rcx` points to
    /// EXCEPTION_POINTERS, `rdx` to the establisher frame; the exception
    /// record fields are fresh symbolic variables.
    pub(crate) fn filter_harness(entry: u64) -> SymState {
        let zero = Expr::c(0);
        let mut regs: [Rc<Expr>; 16] = std::array::from_fn(|_| zero.clone());
        regs[Reg::Rcx.encoding() as usize] = Expr::c(PTRS_ADDR);
        regs[Reg::Rdx.encoding() as usize] = Expr::c(FRAME_ADDR);
        regs[Reg::Rsp.encoding() as usize] = Expr::c(STACK_ADDR);
        let mut mem = HashMap::new();
        mem.insert(PTRS_ADDR, (Expr::c(RECORD_ADDR), 64));
        mem.insert(PTRS_ADDR + 8, (Expr::c(CONTEXT_ADDR), 64));
        mem.insert(RECORD_ADDR, (Expr::var(CODE_VAR, 32), 32));
        mem.insert(RECORD_ADDR + 4, (Expr::var("exception_flags", 32), 32));
        mem.insert(RECORD_ADDR + 0x10, (Expr::var("exception_address", 64), 64));
        mem.insert(RECORD_ADDR + 0x18, (Expr::var("num_params", 32), 32));
        mem.insert(RECORD_ADDR + 0x20, (Expr::var("info0", 64), 64));
        mem.insert(RECORD_ADDR + 0x28, (Expr::var("info1", 64), 64));
        SymState {
            regs,
            mem,
            flags: None,
            path: Vec::new(),
            rip: entry,
            steps: 0,
        }
    }

    fn reg(&self, r: Reg) -> Rc<Expr> {
        self.regs[r.encoding() as usize].clone()
    }

    fn set_reg(&mut self, r: Reg, e: Rc<Expr>) {
        self.regs[r.encoding() as usize] = e;
    }
}

pub(crate) enum PathEnd {
    Ret {
        value: Rc<Expr>,
        path: Vec<BoolExpr>,
    },
    Aborted(&'static str),
}

/// Bounded symbolic executor for filter functions.
#[derive(Debug, Clone, Copy)]
pub struct SymExec {
    /// Maximum paths explored before giving up.
    pub max_paths: usize,
    /// Maximum instructions per path.
    pub max_steps: usize,
}

impl Default for SymExec {
    fn default() -> Self {
        SymExec {
            max_paths: 64,
            max_steps: STEP_BUDGET_OVERRIDE.with(|o| o.get()).unwrap_or(512),
        }
    }
}

thread_local! {
    static STEP_BUDGET_OVERRIDE: std::cell::Cell<Option<usize>> =
        const { std::cell::Cell::new(None) };
}

/// Run `f` with every [`SymExec::default`] on this thread clamped to
/// `max_steps` instructions per path.
///
/// This is the fault-injection hook for solver-budget exhaustion:
/// callers that build their executor through `Default` (the module
/// analysis pipeline does) see the clamped budget, so paths abort with
/// "step budget exhausted" instead of completing. The previous
/// override is restored on exit, including on unwind.
pub fn with_step_budget<R>(max_steps: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            STEP_BUDGET_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(STEP_BUDGET_OVERRIDE.with(|o| o.replace(Some(max_steps))));
    f()
}

impl SymExec {
    /// Analyze the filter function entered at `entry`.
    ///
    /// The harness models the Windows x64 C-specific-handler filter ABI:
    /// `rcx = PEXCEPTION_POINTERS`, `rdx = establisher frame`, and the
    /// return value in `eax` decides handling.
    pub fn analyze_filter(&self, code: &dyn CodeSource, entry: u64) -> FilterAnalysis {
        // Advisory span: whether this solver call happens at all can
        // depend on scheduling (another worker may populate the shared
        // verdict cache first), so it must not join the deterministic
        // event sequence.
        let mut span = cr_trace::span_advisory(cr_trace::Stage::Symex, "filter.vet");
        let analysis = self.analyze_filter_inner(code, entry);
        span.set_detail(|| {
            let verdict = match analysis.verdict {
                FilterVerdict::AcceptsAccessViolation { .. } => "accepts_av",
                FilterVerdict::RejectsAccessViolation => "rejects_av",
                FilterVerdict::Unknown(_) => "unknown",
            };
            format!(
                "steps={} budget={} completed={} aborted={} verdict={verdict}",
                analysis.steps,
                self.max_steps,
                analysis.completed_paths,
                analysis.aborted_paths.len(),
            )
        });
        analysis
    }

    fn analyze_filter_inner(&self, code: &dyn CodeSource, entry: u64) -> FilterAnalysis {
        let mut pending = vec![SymState::filter_harness(entry)];
        let mut ends = Vec::new();
        let mut total_steps = 0usize;
        let mut paths = 0usize;
        let mut fresh = 0u32;

        while let Some(mut st) = pending.pop() {
            if paths >= self.max_paths {
                ends.push(PathEnd::Aborted("path budget exhausted"));
                break;
            }
            let end = loop {
                if st.steps >= self.max_steps {
                    break PathEnd::Aborted("step budget exhausted");
                }
                let mut bytes = [0u8; 15];
                let n = code.read_code(st.rip, &mut bytes);
                if n == 0 {
                    break PathEnd::Aborted("fell off code");
                }
                let Ok(d) = decode(&bytes[..n]) else {
                    break PathEnd::Aborted("undecodable instruction");
                };
                st.steps += 1;
                total_steps += 1;
                match step_inst(&mut st, &d.inst, d.len, &mut fresh, false) {
                    StepOut::Continue => {}
                    StepOut::Fork(cond) => {
                        // True branch.
                        let next = st.rip.wrapping_add(d.len as u64);
                        let Inst::Jcc { rel, .. } = d.inst else {
                            unreachable!()
                        };
                        let mut taken = st.clone();
                        taken.path.push(cond.clone());
                        taken.rip = next.wrapping_add(rel as i64 as u64);
                        pending.push(taken);
                        st.path.push(BoolExpr::not(cond));
                        st.rip = next;
                    }
                    StepOut::End(e) => break e,
                }
            };
            paths += 1;
            ends.push(end);
        }

        let mut completed = 0usize;
        let mut aborted = Vec::new();
        let mut accept_witness = None;
        let mut any_unknown_solver = false;
        // The AV pin is path-independent; build it once and share the
        // `Rc` DAG across every per-path query.
        let code_is_av = BoolExpr::cmp(
            CmpOp::Eq,
            32,
            Expr::var(CODE_VAR, 32),
            Expr::c(EXCEPTION_ACCESS_VIOLATION),
        );
        for end in &ends {
            match end {
                PathEnd::Aborted(r) => aborted.push(*r),
                PathEnd::Ret { value, path } => {
                    completed += 1;
                    if accept_witness.is_some() {
                        continue;
                    }
                    // Query: path ∧ code == AV ∧ eax != 0.
                    let mut cs = path.clone();
                    cs.push(code_is_av.clone());
                    cs.push(BoolExpr::cmp(CmpOp::Ne, 32, value.clone(), Expr::c(0)));
                    match check(&cs) {
                        SatResult::Sat(m) => {
                            accept_witness = Some(m.get(CODE_VAR));
                        }
                        SatResult::Unsat => {}
                        SatResult::Unknown(_) => any_unknown_solver = true,
                    }
                }
            }
        }

        let verdict = match accept_witness {
            Some(witness_code) => FilterVerdict::AcceptsAccessViolation { witness_code },
            None if !aborted.is_empty() => FilterVerdict::Unknown(aborted[0]),
            None if any_unknown_solver => FilterVerdict::Unknown("solver gave up"),
            None if completed == 0 => FilterVerdict::Unknown("no complete path"),
            None => FilterVerdict::RejectsAccessViolation,
        };
        FilterAnalysis {
            verdict,
            completed_paths: completed,
            aborted_paths: aborted,
            steps: total_steps,
        }
    }
}

/// Execute one instruction against `st`, shared by the single-shot
/// executor and the path explorer. `widen` selects the memory-widening
/// read model (see [`load`]): the explorer passes `true`, the
/// single-shot reference keeps its historical `false` behavior so
/// differential tests pin the divergence.
pub(crate) fn step_inst(
    st: &mut SymState,
    inst: &Inst,
    len: usize,
    fresh: &mut u32,
    widen: bool,
) -> StepOut {
    let next = st.rip.wrapping_add(len as u64);
    macro_rules! abort {
        ($r:expr) => {
            return StepOut::End(PathEnd::Aborted($r))
        };
    }

    // Resolve a memory operand to a concrete address, or abort.
    macro_rules! conc_ea {
        ($m:expr) => {{
            match ea_concrete(st, $m, next) {
                Some(a) => a,
                None => abort!("symbolic memory address"),
            }
        }};
    }

    match *inst {
        Inst::MovRRm { dst, src, width } => {
            let v = match src {
                Rm::Reg(r) => width_read(st.reg(r), width),
                Rm::Mem(m) => {
                    let ea = conc_ea!(&m);
                    load(st, ea, width, fresh, widen)
                }
            };
            match width {
                Width::B1 => {
                    // Merge low byte: (dst & !0xFF) | v
                    let hi = Expr::bin(BinOp::And, st.reg(dst), Expr::c(!0xFFu64));
                    st.set_reg(dst, Expr::bin(BinOp::Or, hi, v));
                }
                _ => st.set_reg(dst, v),
            }
        }
        Inst::MovRmR { dst, src, width } => {
            let v = width_read(st.reg(src), width);
            match dst {
                Rm::Reg(r) => match width {
                    Width::B1 => {
                        let hi = Expr::bin(BinOp::And, st.reg(r), Expr::c(!0xFFu64));
                        st.set_reg(r, Expr::bin(BinOp::Or, hi, v));
                    }
                    _ => st.set_reg(r, v),
                },
                Rm::Mem(m) => {
                    let ea = conc_ea!(&m);
                    st.mem.insert(ea, (v, width_bits(width)));
                }
            }
        }
        Inst::MovRI { dst, imm } => st.set_reg(dst, Expr::c(imm)),
        Inst::MovRmI { dst, imm, width } => {
            let v = Expr::c((imm as i64 as u64) & width_mask(width));
            match dst {
                Rm::Reg(r) => st.set_reg(r, v),
                Rm::Mem(m) => {
                    let ea = conc_ea!(&m);
                    st.mem.insert(ea, (v, width_bits(width)));
                }
            }
        }
        Inst::Movzx { dst, src, .. } => {
            let v = match src {
                Rm::Reg(r) => width_read(st.reg(r), Width::B1),
                Rm::Mem(m) => {
                    let ea = conc_ea!(&m);
                    load(st, ea, Width::B1, fresh, widen)
                }
            };
            st.set_reg(dst, v);
        }
        Inst::Lea { dst, mem } => {
            let e = ea_symbolic(st, &mem, next);
            st.set_reg(dst, e);
        }
        Inst::AluRRm {
            op,
            dst,
            src,
            width,
        } => {
            let a = width_read(st.reg(dst), width);
            let b = match src {
                Rm::Reg(r) => width_read(st.reg(r), width),
                Rm::Mem(m) => {
                    let ea = conc_ea!(&m);
                    load(st, ea, width, fresh, widen)
                }
            };
            st.flags = Some(FlagsDef {
                op,
                a: a.clone(),
                b: b.clone(),
                width: width_bits(width),
            });
            if op.writes_dst() {
                st.set_reg(dst, apply_alu(op, a, b, width));
            }
        }
        Inst::AluRmR {
            op,
            dst,
            src,
            width,
        } => {
            let b = width_read(st.reg(src), width);
            let a = match dst {
                Rm::Reg(r) => width_read(st.reg(r), width),
                Rm::Mem(m) => {
                    let ea = conc_ea!(&m);
                    load(st, ea, width, fresh, widen)
                }
            };
            st.flags = Some(FlagsDef {
                op,
                a: a.clone(),
                b: b.clone(),
                width: width_bits(width),
            });
            if op.writes_dst() {
                let r = apply_alu(op, a, b, width);
                match dst {
                    Rm::Reg(reg) => st.set_reg(reg, r),
                    Rm::Mem(m) => {
                        let ea = conc_ea!(&m);
                        st.mem.insert(ea, (r, width_bits(width)));
                    }
                }
            }
        }
        Inst::AluRmI {
            op,
            dst,
            imm,
            width,
        } => {
            let b = Expr::c((imm as i64 as u64) & width_mask(width));
            let a = match dst {
                Rm::Reg(r) => width_read(st.reg(r), width),
                Rm::Mem(m) => {
                    let ea = conc_ea!(&m);
                    load(st, ea, width, fresh, widen)
                }
            };
            st.flags = Some(FlagsDef {
                op,
                a: a.clone(),
                b: b.clone(),
                width: width_bits(width),
            });
            if op.writes_dst() {
                let r = apply_alu(op, a, b, width);
                match dst {
                    Rm::Reg(reg) => st.set_reg(reg, r),
                    Rm::Mem(m) => {
                        let ea = conc_ea!(&m);
                        st.mem.insert(ea, (r, width_bits(width)));
                    }
                }
            }
        }
        Inst::ShiftRI { op, dst, amount } => {
            let a = st.reg(dst);
            let n = Expr::c(amount as u64 & 63);
            let r = match op {
                ShiftOp::Shl => Expr::bin(BinOp::Shl, a, n),
                ShiftOp::Shr => Expr::bin(BinOp::Shr, a, n),
                ShiftOp::Sar => match a.as_const() {
                    Some(v) => Expr::c(((v as i64) >> (amount & 63)) as u64),
                    None => abort!("symbolic arithmetic shift"),
                },
            };
            st.set_reg(dst, r);
            st.flags = None;
        }
        Inst::Neg(r) => {
            let v = st.reg(r);
            st.flags = Some(FlagsDef {
                op: AluOp::Sub,
                a: Expr::c(0),
                b: v.clone(),
                width: 64,
            });
            st.set_reg(r, Expr::bin(BinOp::Sub, Expr::c(0), v));
        }
        Inst::Not(r) => {
            let v = st.reg(r);
            st.set_reg(r, Expr::not(v));
        }
        Inst::Imul { dst, src } => {
            let a = st.reg(dst);
            let b = match src {
                Rm::Reg(r) => st.reg(r),
                Rm::Mem(m) => {
                    let ea = conc_ea!(&m);
                    load(st, ea, Width::B8, fresh, widen)
                }
            };
            match (a.as_const(), b.as_const()) {
                (Some(x), Some(y)) => {
                    st.set_reg(dst, Expr::c((x as i64).wrapping_mul(y as i64) as u64));
                    st.flags = None;
                }
                _ => abort!("symbolic multiplication"),
            }
        }
        Inst::Cmov { cond, dst, src } => {
            let v = match src {
                Rm::Reg(r) => st.reg(r),
                Rm::Mem(m) => {
                    let ea = conc_ea!(&m);
                    load(st, ea, Width::B8, fresh, widen)
                }
            };
            let Some(fd) = st.flags.clone() else {
                abort!("cmov on unknown flags");
            };
            match cond_to_bool(&fd, cond).and_then(|b| b.as_const()) {
                Some(true) => st.set_reg(dst, v),
                Some(false) => {}
                None => abort!("cmov on symbolic flags"),
            }
        }
        Inst::Xchg(a, b) => {
            let (va, vb) = (st.reg(a), st.reg(b));
            st.set_reg(a, vb);
            st.set_reg(b, va);
        }
        Inst::Push(r) => {
            let sp = match st.reg(Reg::Rsp).as_const() {
                Some(v) => v.wrapping_sub(8),
                None => abort!("symbolic stack pointer"),
            };
            let v = st.reg(r);
            st.mem.insert(sp, (v, 64));
            st.set_reg(Reg::Rsp, Expr::c(sp));
        }
        Inst::Pop(r) => {
            let sp = match st.reg(Reg::Rsp).as_const() {
                Some(v) => v,
                None => abort!("symbolic stack pointer"),
            };
            let v = load(st, sp, Width::B8, fresh, widen);
            st.set_reg(r, v);
            st.set_reg(Reg::Rsp, Expr::c(sp.wrapping_add(8)));
        }
        Inst::CallRel(_) | Inst::CallRm(_) => abort!("filter calls another function"),
        Inst::JmpRel(rel) => {
            st.rip = next.wrapping_add(rel as i64 as u64);
            return StepOut::Continue;
        }
        Inst::JmpRm(_) => abort!("indirect jump"),
        Inst::Jcc { cond, .. } => {
            let Some(fd) = st.flags.clone() else {
                abort!("branch on unknown flags");
            };
            match cond_to_bool(&fd, cond) {
                None => abort!("unsupported condition"),
                Some(b) => match b.as_const() {
                    Some(true) => {
                        let Inst::Jcc { rel, .. } = *inst else {
                            unreachable!()
                        };
                        st.rip = next.wrapping_add(rel as i64 as u64);
                        return StepOut::Continue;
                    }
                    Some(false) => {}
                    None => return StepOut::Fork(b),
                },
            }
        }
        Inst::Setcc { cond, dst } => {
            let Some(fd) = st.flags.clone() else {
                abort!("setcc on unknown flags");
            };
            match cond_to_bool(&fd, cond).and_then(|b| b.as_const()) {
                Some(v) => {
                    let hi = Expr::bin(BinOp::And, st.reg(dst), Expr::c(!0xFFu64));
                    st.set_reg(dst, Expr::bin(BinOp::Or, hi, Expr::c(v as u64)));
                }
                None => abort!("setcc on symbolic flags"),
            }
        }
        Inst::Ret => {
            let value = width_read(st.reg(Reg::Rax), Width::B4);
            return StepOut::End(PathEnd::Ret {
                value,
                path: st.path.clone(),
            });
        }
        Inst::Syscall | Inst::Int3 | Inst::Ud2 | Inst::Hlt | Inst::Cpuid => {
            abort!("system instruction in filter")
        }
        Inst::Nop => {}
    }
    st.rip = next;
    StepOut::Continue
}

pub(crate) enum StepOut {
    Continue,
    Fork(BoolExpr),
    End(PathEnd),
}

fn width_bits(w: Width) -> u32 {
    (w.bytes() * 8) as u32
}

fn width_mask(w: Width) -> u64 {
    w.mask()
}

fn width_read(e: Rc<Expr>, w: Width) -> Rc<Expr> {
    match w {
        Width::B8 => e,
        _ => Expr::bin(BinOp::And, e, Expr::c(w.mask())),
    }
}

fn apply_alu(op: AluOp, a: Rc<Expr>, b: Rc<Expr>, w: Width) -> Rc<Expr> {
    let r = match op {
        AluOp::Add => Expr::bin(BinOp::Add, a, b),
        AluOp::Sub => Expr::bin(BinOp::Sub, a, b),
        AluOp::And | AluOp::Test => Expr::bin(BinOp::And, a, b),
        AluOp::Or => Expr::bin(BinOp::Or, a, b),
        AluOp::Xor => Expr::bin(BinOp::Xor, a, b),
        AluOp::Cmp => unreachable!("cmp does not write"),
    };
    width_read(r, w)
}

fn ea_concrete(st: &SymState, m: &MemOp, next: u64) -> Option<u64> {
    ea_symbolic(st, m, next).as_const()
}

fn ea_symbolic(st: &SymState, m: &MemOp, next: u64) -> Rc<Expr> {
    if m.rip {
        return Expr::c(next.wrapping_add(m.disp as i64 as u64));
    }
    let mut e = Expr::c(m.disp as i64 as u64);
    if let Some(b) = m.base {
        e = Expr::bin(BinOp::Add, e, st.reg(b));
    }
    if let Some((i, s)) = m.index {
        let idx = Expr::bin(BinOp::Shl, st.reg(i), Expr::c(s.trailing_zeros() as u64));
        e = Expr::bin(BinOp::Add, e, idx);
    }
    e
}

fn load(st: &mut SymState, ea: u64, w: Width, fresh: &mut u32, widen: bool) -> Rc<Expr> {
    let want = width_bits(w);
    if let Some((e, bits)) = st.mem.get(&ea).cloned() {
        if bits >= want {
            return width_read(e, w);
        }
        if widen {
            // A narrower value is stored at `ea`: keep its bits and
            // model only the uncovered high bits as fresh symbolic
            // memory. The non-widening mode below instead discards the
            // stored value entirely — a store-forwarding soundness hole
            // (a 32-bit spill read back at 64 bits loses the
            // constraint) that the explorer closes and the single-shot
            // executor preserves as the differential reference.
            *fresh += 1;
            let hi = Expr::var(&format!("mem_{ea:x}_{fresh}"), want);
            let lo = Expr::bin(BinOp::And, e, Expr::c((1u64 << bits) - 1));
            let composed = Expr::bin(
                BinOp::Or,
                Expr::bin(BinOp::Shl, hi, Expr::c(u64::from(bits))),
                lo,
            );
            let v = width_read(composed, w);
            st.mem.insert(ea, (v.clone(), want));
            return v;
        }
    }
    // Unknown memory: fresh unconstrained variable (over-approximation).
    *fresh += 1;
    let v = Expr::var(&format!("mem_{ea:x}_{fresh}"), want);
    st.mem.insert(ea, (v.clone(), want));
    v
}

fn cond_to_bool(fd: &FlagsDef, cond: Cond) -> Option<BoolExpr> {
    let w = fd.width;
    let r = match fd.op {
        AluOp::Cmp | AluOp::Sub => Expr::bin(BinOp::Sub, fd.a.clone(), fd.b.clone()),
        AluOp::Test | AluOp::And => Expr::bin(BinOp::And, fd.a.clone(), fd.b.clone()),
        AluOp::Add => Expr::bin(BinOp::Add, fd.a.clone(), fd.b.clone()),
        AluOp::Or => Expr::bin(BinOp::Or, fd.a.clone(), fd.b.clone()),
        AluOp::Xor => Expr::bin(BinOp::Xor, fd.a.clone(), fd.b.clone()),
    };
    let zero = Expr::c(0);
    let is_sub = matches!(fd.op, AluOp::Cmp | AluOp::Sub);
    let cf = || -> Option<BoolExpr> {
        match fd.op {
            AluOp::Cmp | AluOp::Sub => {
                Some(BoolExpr::cmp(CmpOp::Ult, w, fd.a.clone(), fd.b.clone()))
            }
            AluOp::And | AluOp::Test | AluOp::Or | AluOp::Xor => Some(BoolExpr::False),
            AluOp::Add => Some(BoolExpr::cmp(CmpOp::Ult, w, r.clone(), fd.a.clone())),
        }
    };
    let zf = BoolExpr::cmp(CmpOp::Eq, w, r.clone(), zero.clone());
    Some(match cond {
        Cond::E => zf,
        Cond::Ne => BoolExpr::not(zf),
        Cond::B => cf()?,
        Cond::Ae => BoolExpr::not(cf()?),
        Cond::Be => BoolExpr::or(cf()?, zf),
        Cond::A => BoolExpr::and(BoolExpr::not(cf()?), BoolExpr::not(zf)),
        Cond::S => BoolExpr::cmp(CmpOp::Slt, w, r, zero),
        Cond::Ns => BoolExpr::not(BoolExpr::cmp(CmpOp::Slt, w, r, zero)),
        Cond::L => {
            if is_sub {
                BoolExpr::cmp(CmpOp::Slt, w, fd.a.clone(), fd.b.clone())
            } else {
                BoolExpr::cmp(CmpOp::Slt, w, r, zero)
            }
        }
        Cond::Ge => BoolExpr::not(if is_sub {
            BoolExpr::cmp(CmpOp::Slt, w, fd.a.clone(), fd.b.clone())
        } else {
            BoolExpr::cmp(CmpOp::Slt, w, r, zero)
        }),
        Cond::Le => {
            let l = if is_sub {
                BoolExpr::cmp(CmpOp::Slt, w, fd.a.clone(), fd.b.clone())
            } else {
                BoolExpr::cmp(CmpOp::Slt, w, r, zero)
            };
            BoolExpr::or(zf, l)
        }
        Cond::G => {
            let l = if is_sub {
                BoolExpr::cmp(CmpOp::Slt, w, fd.a.clone(), fd.b.clone())
            } else {
                BoolExpr::cmp(CmpOp::Slt, w, r, zero)
            };
            BoolExpr::and(BoolExpr::not(zf), BoolExpr::not(l))
        }
        Cond::O | Cond::No => {
            // Signed-overflow bit, exact for add/sub; logical ops clear it.
            let of = match fd.op {
                AluOp::Cmp | AluOp::Sub => {
                    // of = ((a ^ b) & (a ^ r)) >> (w-1) == 1
                    let x = Expr::bin(
                        BinOp::And,
                        Expr::bin(BinOp::Xor, fd.a.clone(), fd.b.clone()),
                        Expr::bin(BinOp::Xor, fd.a.clone(), r.clone()),
                    );
                    let sign = Expr::c(1u64 << (w - 1));
                    BoolExpr::cmp(CmpOp::Ne, w, Expr::bin(BinOp::And, x, sign), Expr::c(0))
                }
                AluOp::Add => {
                    // of = ((a ^ r) & (b ^ r)) sign bit
                    let x = Expr::bin(
                        BinOp::And,
                        Expr::bin(BinOp::Xor, fd.a.clone(), r.clone()),
                        Expr::bin(BinOp::Xor, fd.b.clone(), r.clone()),
                    );
                    let sign = Expr::c(1u64 << (w - 1));
                    BoolExpr::cmp(CmpOp::Ne, w, Expr::bin(BinOp::And, x, sign), Expr::c(0))
                }
                AluOp::And | AluOp::Test | AluOp::Or | AluOp::Xor => BoolExpr::False,
            };
            if cond == Cond::O {
                of
            } else {
                BoolExpr::not(of)
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_isa::{Asm, Inst, Mem as MemOp, Reg, Rm, Width};

    /// Assemble a filter at a base VA, return (base, code).
    fn filter(build: impl FnOnce(&mut Asm)) -> (u64, Vec<u8>) {
        let mut a = Asm::new(0x1_0000);
        build(&mut a);
        (0x1_0000, a.assemble().unwrap().code)
    }

    fn analyze(code: &(u64, Vec<u8>)) -> FilterVerdict {
        let src = (code.0, code.1.as_slice());
        SymExec::default().analyze_filter(&src, code.0).verdict
    }

    /// Standard filter prologue: load ExceptionCode into eax.
    /// rcx → EXCEPTION_POINTERS; [rcx] → record; [record] → code (dword).
    fn load_code_into_eax(a: &mut Asm) {
        a.load(Reg::Rax, MemOp::base(Reg::Rcx)); // rax = &record
        a.inst(Inst::MovRRm {
            dst: Reg::Rax,
            src: Rm::Mem(MemOp::base(Reg::Rax)),
            width: Width::B4,
        }); // eax = ExceptionCode
    }

    #[test]
    fn catch_all_filter_accepts() {
        // return 1;
        let f = filter(|a| {
            a.mov_ri(Reg::Rax, 1);
            a.ret();
        });
        assert_eq!(
            analyze(&f),
            FilterVerdict::AcceptsAccessViolation {
                witness_code: EXCEPTION_ACCESS_VIOLATION
            }
        );
    }

    #[test]
    fn continue_search_filter_rejects() {
        // return 0;
        let f = filter(|a| {
            a.zero(Reg::Rax);
            a.ret();
        });
        assert_eq!(analyze(&f), FilterVerdict::RejectsAccessViolation);
    }

    #[test]
    fn av_equality_filter_accepts() {
        // return code == 0xC0000005 ? 1 : 0;
        let f = filter(|a| {
            load_code_into_eax(a);
            a.inst(Inst::AluRmI {
                op: cr_isa::AluOp::Cmp,
                dst: Rm::Reg(Reg::Rax),
                imm: 0xC0000005u32 as i32,
                width: Width::B4,
            });
            let not_av = a.fresh();
            a.jcc(cr_isa::Cond::Ne, not_av);
            a.mov_ri(Reg::Rax, 1);
            a.ret();
            a.bind(not_av);
            a.zero(Reg::Rax);
            a.ret();
        });
        assert_eq!(
            analyze(&f),
            FilterVerdict::AcceptsAccessViolation {
                witness_code: EXCEPTION_ACCESS_VIOLATION
            }
        );
    }

    #[test]
    fn av_exclusion_filter_rejects() {
        // return code == 0xC0000005 ? 0 : 1;  (handles everything EXCEPT AV)
        let f = filter(|a| {
            load_code_into_eax(a);
            a.inst(Inst::AluRmI {
                op: cr_isa::AluOp::Cmp,
                dst: Rm::Reg(Reg::Rax),
                imm: 0xC0000005u32 as i32,
                width: Width::B4,
            });
            let other = a.fresh();
            a.jcc(cr_isa::Cond::Ne, other);
            a.zero(Reg::Rax);
            a.ret();
            a.bind(other);
            a.mov_ri(Reg::Rax, 1);
            a.ret();
        });
        assert_eq!(analyze(&f), FilterVerdict::RejectsAccessViolation);
    }

    #[test]
    fn specific_other_code_filter_rejects() {
        // Handles only STATUS_INTEGER_DIVIDE_BY_ZERO (0xC0000094).
        let f = filter(|a| {
            load_code_into_eax(a);
            a.inst(Inst::AluRmI {
                op: cr_isa::AluOp::Cmp,
                dst: Rm::Reg(Reg::Rax),
                imm: 0xC0000094u32 as i32,
                width: Width::B4,
            });
            let no = a.fresh();
            a.jcc(cr_isa::Cond::Ne, no);
            a.mov_ri(Reg::Rax, 1);
            a.ret();
            a.bind(no);
            a.zero(Reg::Rax);
            a.ret();
        });
        assert_eq!(analyze(&f), FilterVerdict::RejectsAccessViolation);
    }

    #[test]
    fn class_mask_filter_accepts() {
        // Handles any STATUS_SEVERITY_ERROR code: (code >> 30) == 3.
        let f = filter(|a| {
            load_code_into_eax(a);
            a.shr(Reg::Rax, 30);
            a.cmp_ri(Reg::Rax, 3);
            let no = a.fresh();
            a.jcc(cr_isa::Cond::Ne, no);
            a.mov_ri(Reg::Rax, 1);
            a.ret();
            a.bind(no);
            a.zero(Reg::Rax);
            a.ret();
        });
        // 0xC0000005 >> 30 == 3, so AV is in the accepted class.
        assert!(matches!(
            analyze(&f),
            FilterVerdict::AcceptsAccessViolation { .. }
        ));
    }

    #[test]
    fn continue_execution_counts_as_accepting() {
        // return -1 (EXCEPTION_CONTINUE_EXECUTION): resume, i.e. swallow.
        let f = filter(|a| {
            a.mov_ri(Reg::Rax, (-1i64) as u64);
            a.ret();
        });
        assert!(matches!(
            analyze(&f),
            FilterVerdict::AcceptsAccessViolation { .. }
        ));
    }

    #[test]
    fn filter_calling_helper_is_unknown() {
        // The paper's post-update IE filter: calls a config helper.
        let f = filter(|a| {
            let helper = a.fresh();
            a.call_label(helper);
            a.ret();
            a.bind(helper);
            a.mov_ri(Reg::Rax, 1);
            a.ret();
        });
        assert!(matches!(analyze(&f), FilterVerdict::Unknown(_)));
    }

    #[test]
    fn exclusion_list_filter_accepts_av() {
        // The Firefox-style filter: excludes certain codes, handles rest.
        // if (code == 0xC0000094 || code == 0x80000003) return 0; return 1;
        let f = filter(|a| {
            load_code_into_eax(a);
            let reject = a.fresh();
            a.inst(Inst::AluRmI {
                op: cr_isa::AluOp::Cmp,
                dst: Rm::Reg(Reg::Rax),
                imm: 0xC0000094u32 as i32,
                width: Width::B4,
            });
            a.jcc(cr_isa::Cond::E, reject);
            a.inst(Inst::AluRmI {
                op: cr_isa::AluOp::Cmp,
                dst: Rm::Reg(Reg::Rax),
                imm: 0x80000003u32 as i32,
                width: Width::B4,
            });
            a.jcc(cr_isa::Cond::E, reject);
            a.mov_ri(Reg::Rax, 1);
            a.ret();
            a.bind(reject);
            a.zero(Reg::Rax);
            a.ret();
        });
        assert!(matches!(
            analyze(&f),
            FilterVerdict::AcceptsAccessViolation { .. }
        ));
    }

    #[test]
    fn flag_check_filter_paths() {
        // Checks ExceptionFlags & 1 (non-continuable) first, then code.
        // if (flags & 1) return 0; return code == AV;
        let f = filter(|a| {
            a.load(Reg::Rax, MemOp::base(Reg::Rcx));
            a.inst(Inst::MovRRm {
                dst: Reg::Rbx,
                src: Rm::Mem(MemOp::base_disp(Reg::Rax, 4)),
                width: Width::B4,
            });
            a.inst(Inst::AluRmI {
                op: cr_isa::AluOp::Test,
                dst: Rm::Reg(Reg::Rbx),
                imm: 1,
                width: Width::B4,
            });
            let nc = a.fresh();
            a.jcc(cr_isa::Cond::Ne, nc);
            // continuable: check code
            a.inst(Inst::MovRRm {
                dst: Reg::Rax,
                src: Rm::Mem(MemOp::base(Reg::Rax)),
                width: Width::B4,
            });
            a.inst(Inst::AluRmI {
                op: cr_isa::AluOp::Cmp,
                dst: Rm::Reg(Reg::Rax),
                imm: 0xC0000005u32 as i32,
                width: Width::B4,
            });
            let no = a.fresh();
            a.jcc(cr_isa::Cond::Ne, no);
            a.mov_ri(Reg::Rax, 1);
            a.ret();
            a.bind(no);
            a.bind(nc);
            a.zero(Reg::Rax);
            a.ret();
        });
        assert!(matches!(
            analyze(&f),
            FilterVerdict::AcceptsAccessViolation { .. }
        ));
    }

    #[test]
    fn overflow_condition_filter() {
        // A contrived filter using `jo`: accept when (code - AV) does not
        // signed-overflow AND code == AV — effectively accepts AV.
        let f = filter(|a| {
            load_code_into_eax(a);
            a.inst(Inst::AluRmI {
                op: cr_isa::AluOp::Cmp,
                dst: Rm::Reg(Reg::Rax),
                imm: 0xC0000005u32 as i32,
                width: Width::B4,
            });
            let reject = a.fresh();
            a.jcc(cr_isa::Cond::O, reject); // overflow → reject
            a.jcc(cr_isa::Cond::Ne, reject);
            a.mov_ri(Reg::Rax, 1);
            a.ret();
            a.bind(reject);
            a.zero(Reg::Rax);
            a.ret();
        });
        assert!(
            matches!(analyze(&f), FilterVerdict::AcceptsAccessViolation { .. }),
            "jo is now precisely modeled"
        );
    }

    #[test]
    fn step_budget_override_scopes_and_restores() {
        assert_eq!(SymExec::default().max_steps, 512);
        let inner = with_step_budget(4, || {
            let nested = with_step_budget(2, || SymExec::default().max_steps);
            assert_eq!(nested, 2);
            SymExec::default().max_steps
        });
        assert_eq!(inner, 4);
        assert_eq!(SymExec::default().max_steps, 512);

        // Restored even when the closure unwinds.
        let _ = std::panic::catch_unwind(|| with_step_budget(1, || panic!("boom")));
        assert_eq!(SymExec::default().max_steps, 512);
    }

    #[test]
    fn code_source_tuple_impl() {
        let bytes = [0x90u8, 0xC3];
        let src = (0x1000u64, &bytes[..]);
        let mut buf = [0u8; 4];
        assert_eq!(src.read_code(0x1000, &mut buf), 2);
        assert_eq!(src.read_code(0x1001, &mut buf), 1);
        assert_eq!(src.read_code(0x2000, &mut buf), 0);
        assert_eq!(src.read_code(0x0FFF, &mut buf), 0);
    }
}
