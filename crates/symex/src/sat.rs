//! A small DPLL SAT solver.
//!
//! Decides the CNF formulas produced by the bit-blaster. Formula sizes for
//! exception-filter queries are a few thousand variables and clauses, well
//! within reach of plain DPLL with unit propagation.

/// A CNF formula. Literals are non-zero `i32`s: variable `v` is `v`
/// (positive) or `-v` (negated); variables are numbered from 1.
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    /// Number of variables.
    pub num_vars: usize,
    /// Clauses (disjunctions of literals).
    pub clauses: Vec<Vec<i32>>,
}

impl Cnf {
    /// An empty formula (trivially satisfiable).
    pub fn new() -> Cnf {
        Cnf::default()
    }

    /// Allocate a fresh variable, returning its positive literal.
    pub fn fresh(&mut self) -> i32 {
        self.num_vars += 1;
        self.num_vars as i32
    }

    /// Add a clause.
    ///
    /// # Panics
    ///
    /// Panics if a literal references an unallocated variable.
    pub fn clause(&mut self, lits: &[i32]) {
        for &l in lits {
            assert!(
                l != 0 && (l.unsigned_abs() as usize) <= self.num_vars,
                "bad literal {l}"
            );
        }
        self.clauses.push(lits.to_vec());
    }
}

/// Outcome of a SAT query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveOutcome {
    /// Satisfiable, with an assignment indexed by variable number − 1.
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
    /// The decision budget ran out before an answer (pathological
    /// instances; callers treat this as "unknown").
    BudgetExhausted,
}

/// Decision budget for [`solve`]. Filter-vetting formulas use a few
/// hundred decisions; anything near the budget is pathological.
const DECISION_BUDGET: u64 = 200_000;

/// Decide a CNF formula with plain DPLL and a decision budget.
pub fn solve(cnf: &Cnf) -> SolveOutcome {
    let mut s = Dpll {
        clauses: &cnf.clauses,
        assign: vec![None; cnf.num_vars],
        trail: Vec::new(),
        decisions: 0,
    };
    match s.search() {
        Some(true) => SolveOutcome::Sat(s.assign.into_iter().map(|a| a.unwrap_or(false)).collect()),
        Some(false) => SolveOutcome::Unsat,
        None => SolveOutcome::BudgetExhausted,
    }
}

struct Dpll<'a> {
    clauses: &'a [Vec<i32>],
    assign: Vec<Option<bool>>,
    trail: Vec<usize>,
    decisions: u64,
}

impl Dpll<'_> {
    fn lit_val(&self, lit: i32) -> Option<bool> {
        let v = self.assign[(lit.unsigned_abs() - 1) as usize]?;
        Some(if lit > 0 { v } else { !v })
    }

    fn set(&mut self, lit: i32) {
        let idx = (lit.unsigned_abs() - 1) as usize;
        debug_assert!(self.assign[idx].is_none());
        self.assign[idx] = Some(lit > 0);
        self.trail.push(idx);
    }

    /// Unit propagation to fixpoint. Returns false on conflict.
    fn propagate(&mut self) -> bool {
        loop {
            let mut changed = false;
            for clause in self.clauses {
                let mut unassigned = None;
                let mut n_unassigned = 0;
                let mut satisfied = false;
                for &lit in clause {
                    match self.lit_val(lit) {
                        Some(true) => {
                            satisfied = true;
                            break;
                        }
                        Some(false) => {}
                        None => {
                            n_unassigned += 1;
                            unassigned = Some(lit);
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                match n_unassigned {
                    0 => return false, // conflict
                    1 => {
                        self.set(unassigned.unwrap());
                        changed = true;
                    }
                    _ => {}
                }
            }
            if !changed {
                return true;
            }
        }
    }

    /// `Some(true)` = SAT, `Some(false)` = UNSAT, `None` = budget out.
    fn search(&mut self) -> Option<bool> {
        if !self.propagate() {
            return Some(false);
        }
        // Pick the first unassigned variable that appears in an
        // unsatisfied clause (pure decision heuristic).
        let decision = self.pick();
        let Some(var) = decision else {
            return Some(true); // all relevant clauses satisfied
        };
        self.decisions += 1;
        if self.decisions > DECISION_BUDGET {
            return None;
        }
        for &value in &[true, false] {
            let mark = self.trail.len();
            let lit = if value {
                (var + 1) as i32
            } else {
                -((var + 1) as i32)
            };
            self.set(lit);
            match self.search() {
                Some(true) => return Some(true),
                Some(false) => {}
                None => return None,
            }
            // Undo.
            while self.trail.len() > mark {
                let idx = self.trail.pop().unwrap();
                self.assign[idx] = None;
            }
        }
        Some(false)
    }

    fn pick(&self) -> Option<usize> {
        for clause in self.clauses {
            let mut sat = false;
            let mut cand = None;
            for &lit in clause {
                match self.lit_val(lit) {
                    Some(true) => {
                        sat = true;
                        break;
                    }
                    Some(false) => {}
                    None => cand = cand.or(Some((lit.unsigned_abs() - 1) as usize)),
                }
            }
            if !sat {
                if let Some(c) = cand {
                    return Some(c);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(c: &Cnf) -> Vec<bool> {
        match solve(c) {
            SolveOutcome::Sat(m) => m,
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    #[test]
    fn trivial_sat() {
        let mut c = Cnf::new();
        let a = c.fresh();
        c.clause(&[a]);
        assert!(model(&c)[0]);
    }

    #[test]
    fn trivial_unsat() {
        let mut c = Cnf::new();
        let a = c.fresh();
        c.clause(&[a]);
        c.clause(&[-a]);
        assert_eq!(solve(&c), SolveOutcome::Unsat);
    }

    #[test]
    fn requires_search() {
        // (a ∨ b) ∧ (¬a ∨ b) ∧ (a ∨ ¬b) — satisfied only by a=b=true.
        let mut c = Cnf::new();
        let a = c.fresh();
        let b = c.fresh();
        c.clause(&[a, b]);
        c.clause(&[-a, b]);
        c.clause(&[a, -b]);
        let m = model(&c);
        assert!(m[0] && m[1]);
    }

    #[test]
    fn unsat_3sat_core() {
        // All 4 combinations over (a,b) excluded.
        let mut c = Cnf::new();
        let a = c.fresh();
        let b = c.fresh();
        c.clause(&[a, b]);
        c.clause(&[a, -b]);
        c.clause(&[-a, b]);
        c.clause(&[-a, -b]);
        assert_eq!(solve(&c), SolveOutcome::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p_{i,j}: pigeon i in hole j. 3 pigeons, 2 holes.
        let mut c = Cnf::new();
        let mut p = [[0i32; 2]; 3];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = c.fresh();
            }
        }
        for row in &p {
            c.clause(&[row[0], row[1]]); // each pigeon somewhere
        }
        for j in 0..2 {
            for (i1, row1) in p.iter().enumerate() {
                for row2 in &p[i1 + 1..] {
                    c.clause(&[-row1[j], -row2[j]]); // no two share a hole
                }
            }
        }
        assert_eq!(solve(&c), SolveOutcome::Unsat);
    }

    #[test]
    fn model_satisfies_all_clauses() {
        let mut c = Cnf::new();
        let vars: Vec<i32> = (0..8).map(|_| c.fresh()).collect();
        // Random-ish structured clauses.
        c.clause(&[vars[0], -vars[1], vars[2]]);
        c.clause(&[-vars[0], vars[3]]);
        c.clause(&[vars[4], vars[5], -vars[6]]);
        c.clause(&[-vars[3], -vars[5]]);
        c.clause(&[vars[7]]);
        let m = model(&c);
        for clause in &c.clauses {
            assert!(clause.iter().any(|&l| {
                let v = m[(l.unsigned_abs() - 1) as usize];
                if l > 0 {
                    v
                } else {
                    !v
                }
            }));
        }
    }
}
