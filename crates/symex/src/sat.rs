//! A small SAT solver with two-watched-literal unit propagation.
//!
//! Decides the CNF formulas produced by the bit-blaster. Formula sizes
//! for exception-filter queries are a few thousand variables and
//! clauses; the watched-literal scheme visits only the clauses whose
//! watch is falsified instead of rescanning the whole formula on every
//! propagation round, which is where the bulk of the old solver's time
//! went.
//!
//! [`solve_reference`] keeps the previous scan-every-clause DPLL alive
//! verbatim: it is the baseline for `solver_bench` and the oracle for
//! the old-vs-new differential proptests.

/// A CNF formula. Literals are non-zero `i32`s: variable `v` is `v`
/// (positive) or `-v` (negated); variables are numbered from 1.
///
/// Clauses live in one flat literal buffer with end offsets — adding a
/// clause is a single `extend_from_slice`, and [`Cnf::clear`] lets a
/// worker reuse the allocation across queries.
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    /// Number of variables.
    pub num_vars: usize,
    /// All clause literals, concatenated.
    lits: Vec<i32>,
    /// Exclusive end offset of each clause in `lits`.
    ends: Vec<u32>,
}

impl Cnf {
    /// An empty formula (trivially satisfiable).
    pub fn new() -> Cnf {
        Cnf::default()
    }

    /// Allocate a fresh variable, returning its positive literal.
    pub fn fresh(&mut self) -> i32 {
        self.num_vars += 1;
        self.num_vars as i32
    }

    /// Add a clause.
    ///
    /// Literal validity (non-zero, references an allocated variable) is
    /// a `debug_assert!` — the blaster is the only producer and emits
    /// literals straight from [`Cnf::fresh`], so release builds skip
    /// the per-literal scan on this hot path.
    pub fn clause(&mut self, lits: &[i32]) {
        for &l in lits {
            debug_assert!(
                l != 0 && (l.unsigned_abs() as usize) <= self.num_vars,
                "bad literal {l}"
            );
        }
        self.lits.extend_from_slice(lits);
        self.ends.push(self.lits.len() as u32);
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.ends.len()
    }

    /// Total literal count across all clauses.
    pub fn num_lits(&self) -> usize {
        self.lits.len()
    }

    /// The `i`-th clause as a literal slice.
    pub fn clause_at(&self, i: usize) -> &[i32] {
        let start = if i == 0 { 0 } else { self.ends[i - 1] as usize };
        &self.lits[start..self.ends[i] as usize]
    }

    /// Iterate over all clauses.
    pub fn clauses(&self) -> impl Iterator<Item = &[i32]> + '_ {
        (0..self.num_clauses()).map(|i| self.clause_at(i))
    }

    /// Reset to an empty formula, keeping the allocations.
    pub fn clear(&mut self) {
        self.num_vars = 0;
        self.lits.clear();
        self.ends.clear();
    }
}

/// Outcome of a SAT query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveOutcome {
    /// Satisfiable, with an assignment indexed by variable number − 1.
    Sat(Vec<bool>),
    /// Unsatisfiable.
    Unsat,
    /// The decision budget ran out before an answer (pathological
    /// instances; callers treat this as "unknown").
    BudgetExhausted,
}

/// Decision budget for [`solve`] and [`solve_reference`]. Filter-vetting
/// formulas use a few hundred decisions; anything near the budget is
/// pathological.
const DECISION_BUDGET: u64 = 200_000;

/// Decide a CNF formula with two-watched-literal DPLL.
///
/// Deterministic by construction: decisions follow a static activity
/// order (occurrence count descending, variable index ascending) with
/// phase `true` first, and propagation order is fixed by clause and
/// trail order. The same formula always yields the same outcome — the
/// property the normalized-query memo relies on.
pub fn solve(cnf: &Cnf) -> SolveOutcome {
    Watched::new(cnf).map_or(SolveOutcome::Unsat, Watched::search)
}

struct Frame {
    lit: i32,
    mark: usize,
    cursor: usize,
    flipped: bool,
}

struct Watched {
    /// 0 = unassigned, 1 = true, 2 = false; indexed by variable − 1.
    assign: Vec<u8>,
    /// Clause indices watching each literal slot (see [`Watched::slot`]).
    watches: Vec<Vec<u32>>,
    /// Normalized clause literals (deduped, tautologies dropped),
    /// flat; the first two literals of each clause are its watches.
    db: Vec<i32>,
    /// `(start, len)` of each clause in `db`.
    bounds: Vec<(u32, u32)>,
    /// Assigned literals in assignment order.
    trail: Vec<i32>,
    /// Trail cursor: literals before it have been propagated.
    propagated: usize,
    /// Open decisions (chronological backtracking).
    frames: Vec<Frame>,
    /// Variables (0-based) in static activity order.
    order: Vec<u32>,
    /// Scan position into `order` for the next decision.
    cursor: usize,
    decisions: u64,
}

impl Watched {
    /// Literal → watch-list slot: variable `v` positive is `2(v−1)`,
    /// negative is `2(v−1)+1`.
    fn slot(lit: i32) -> usize {
        ((lit.unsigned_abs() as usize - 1) << 1) | usize::from(lit < 0)
    }

    /// Build the solver state; `None` means a top-level conflict was
    /// found while loading clauses (immediately UNSAT).
    fn new(cnf: &Cnf) -> Option<Watched> {
        let nv = cnf.num_vars;
        let mut s = Watched {
            assign: vec![0; nv],
            watches: vec![Vec::new(); 2 * nv],
            db: Vec::with_capacity(cnf.num_lits()),
            bounds: Vec::with_capacity(cnf.num_clauses()),
            trail: Vec::with_capacity(nv),
            propagated: 0,
            frames: Vec::new(),
            order: Vec::new(),
            cursor: 0,
            decisions: 0,
        };
        let mut counts = vec![0u32; nv];
        let mut tmp: Vec<i32> = Vec::new();
        for clause in cnf.clauses() {
            // Normalize: drop duplicate literals; a clause containing
            // both `l` and `¬l` is a tautology and is dropped whole.
            tmp.clear();
            let mut taut = false;
            'lits: for &l in clause {
                for &m in &tmp {
                    if m == l {
                        continue 'lits;
                    }
                    if m == -l {
                        taut = true;
                        break 'lits;
                    }
                }
                tmp.push(l);
            }
            if taut {
                continue;
            }
            for &l in &tmp {
                counts[l.unsigned_abs() as usize - 1] += 1;
            }
            match tmp.len() {
                0 => return None,
                1 => match s.value(tmp[0]) {
                    None => s.enqueue(tmp[0]),
                    Some(true) => {}
                    Some(false) => return None,
                },
                _ => {
                    let ci = s.bounds.len() as u32;
                    let start = s.db.len() as u32;
                    s.db.extend_from_slice(&tmp);
                    s.bounds.push((start, tmp.len() as u32));
                    s.watches[Watched::slot(tmp[0])].push(ci);
                    s.watches[Watched::slot(tmp[1])].push(ci);
                }
            }
        }
        let mut order: Vec<u32> = (0..nv as u32).collect();
        order.sort_by_key(|&v| (std::cmp::Reverse(counts[v as usize]), v));
        s.order = order;
        Some(s)
    }

    fn value(&self, lit: i32) -> Option<bool> {
        match self.assign[lit.unsigned_abs() as usize - 1] {
            0 => None,
            1 => Some(lit > 0),
            _ => Some(lit < 0),
        }
    }

    fn enqueue(&mut self, lit: i32) {
        self.assign[lit.unsigned_abs() as usize - 1] = if lit > 0 { 1 } else { 2 };
        self.trail.push(lit);
    }

    /// Propagate every queued assignment; `false` means conflict.
    fn propagate(&mut self) -> bool {
        while self.propagated < self.trail.len() {
            let lit = self.trail[self.propagated];
            self.propagated += 1;
            let fl = -lit;
            let wslot = Watched::slot(fl);
            let mut i = 0;
            while i < self.watches[wslot].len() {
                let ci = self.watches[wslot][i] as usize;
                let (start, len) = self.bounds[ci];
                let (start, len) = (start as usize, len as usize);
                // Keep the falsified watch in slot 1.
                if self.db[start] == fl {
                    self.db.swap(start, start + 1);
                }
                let w0 = self.db[start];
                if self.value(w0) == Some(true) {
                    i += 1;
                    continue;
                }
                // Look for a non-false replacement watch.
                let mut moved = false;
                for k in 2..len {
                    let l = self.db[start + k];
                    if self.value(l) != Some(false) {
                        self.db[start + 1] = l;
                        self.db[start + k] = fl;
                        self.watches[Watched::slot(l)].push(ci as u32);
                        self.watches[wslot].swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                match self.value(w0) {
                    None => {
                        self.enqueue(w0);
                        i += 1;
                    }
                    Some(false) => return false,
                    Some(true) => unreachable!("satisfied clause handled above"),
                }
            }
        }
        true
    }

    fn undo_to(&mut self, mark: usize) {
        for &l in &self.trail[mark..] {
            self.assign[l.unsigned_abs() as usize - 1] = 0;
        }
        self.trail.truncate(mark);
        self.propagated = mark;
    }

    fn search(mut self) -> SolveOutcome {
        loop {
            if !self.propagate() {
                // Chronological backtracking: flip the deepest
                // unflipped decision, abandoning flipped ones.
                loop {
                    let Some(f) = self.frames.pop() else {
                        return SolveOutcome::Unsat;
                    };
                    self.undo_to(f.mark);
                    self.cursor = f.cursor;
                    if !f.flipped {
                        self.enqueue(-f.lit);
                        self.frames.push(Frame {
                            lit: -f.lit,
                            mark: f.mark,
                            cursor: f.cursor,
                            flipped: true,
                        });
                        break;
                    }
                }
                continue;
            }
            // Decide the next unassigned variable in activity order.
            while self.cursor < self.order.len()
                && self.assign[self.order[self.cursor] as usize] != 0
            {
                self.cursor += 1;
            }
            let Some(&var) = self.order.get(self.cursor) else {
                // Full assignment with propagation complete and no
                // conflict: every clause is satisfied.
                return SolveOutcome::Sat(self.assign.iter().map(|&a| a == 1).collect());
            };
            self.decisions += 1;
            if self.decisions > DECISION_BUDGET {
                return SolveOutcome::BudgetExhausted;
            }
            let lit = (var + 1) as i32;
            self.frames.push(Frame {
                lit,
                mark: self.trail.len(),
                cursor: self.cursor,
                flipped: false,
            });
            self.enqueue(lit);
        }
    }
}

/// Persistent two-watched-literal state for incremental solving.
///
/// [`solve`] rebuilds its watch lists for every query; sibling paths in
/// the filter explorer share almost their entire formula, so the
/// explorer keeps one `IncrementalSat` per exploration session instead.
/// Clauses are absorbed append-only from a monotone [`Cnf`] (the
/// session encoder never clears it), and each per-path query is decided
/// under a set of *assumption literals* — the path-condition roots —
/// via [`IncrementalSat::solve_under`].
///
/// Soundness of popping a path constraint without retracting clauses:
/// the blaster's Tseitin clauses only *define* gate variables (`g ↔
/// f(inputs)`); they never assert a root. A constraint is asserted
/// solely by passing its root literal as an assumption, so dropping the
/// assumption fully retracts the constraint while its definitional
/// clauses stay behind as harmless (satisfiable-by-construction)
/// furniture.
///
/// The decision loop mirrors [`Watched::search`] exactly — same static
/// activity order, same phase, same chronological backtracking — so an
/// incremental query returns the same outcome as batch-solving the
/// absorbed clauses plus the assumptions as units. Assumptions are
/// enqueued below every decision frame and are therefore never flipped;
/// a conflict with no open decision frame is UNSAT under the
/// assumptions. The trail is fully undone before `solve_under` returns,
/// leaving the state quiescent for the next absorb/solve round.
pub struct IncrementalSat {
    /// 0 = unassigned, 1 = true, 2 = false; indexed by variable − 1.
    assign: Vec<u8>,
    /// Clause indices watching each literal slot (see [`Watched::slot`]).
    watches: Vec<Vec<u32>>,
    /// Normalized clause literals, flat; first two are the watches.
    db: Vec<i32>,
    /// `(start, len)` of each clause in `db`.
    bounds: Vec<(u32, u32)>,
    /// Assigned literals in assignment order.
    trail: Vec<i32>,
    /// Trail cursor: literals before it have been propagated.
    propagated: usize,
    /// Absorbed top-level unit clauses, replayed at every solve.
    root_units: Vec<i32>,
    /// An empty clause was absorbed: every query is UNSAT.
    conflict_at_root: bool,
    /// Source-`Cnf` clauses consumed so far (append-only cursor).
    absorbed: usize,
    /// Occurrence counts per variable (0-based), for decision order.
    counts: Vec<u32>,
    /// Static activity order over all variables; rebuilt when stale.
    order: Vec<u32>,
    order_stale: bool,
}

impl Default for IncrementalSat {
    fn default() -> IncrementalSat {
        IncrementalSat::new()
    }
}

impl IncrementalSat {
    /// Empty solver state; absorb clauses before solving.
    pub fn new() -> IncrementalSat {
        IncrementalSat {
            assign: Vec::new(),
            watches: Vec::new(),
            db: Vec::new(),
            bounds: Vec::new(),
            trail: Vec::new(),
            propagated: 0,
            root_units: Vec::new(),
            conflict_at_root: false,
            absorbed: 0,
            counts: Vec::new(),
            order: Vec::new(),
            order_stale: false,
        }
    }

    /// Number of source-`Cnf` clauses consumed so far.
    pub fn absorbed_clauses(&self) -> usize {
        self.absorbed
    }

    /// Ingest every clause appended to `cnf` since the last absorb.
    ///
    /// `cnf` must be the same monotone formula across the session:
    /// clauses `0..absorbed_clauses()` are assumed unchanged (only the
    /// tail is read), and `num_vars` must never shrink. Requires a
    /// quiescent solver (no in-flight trail), which every return path
    /// of [`IncrementalSat::solve_under`] guarantees.
    pub fn absorb(&mut self, cnf: &Cnf) {
        debug_assert!(self.trail.is_empty(), "absorb requires a quiescent solver");
        debug_assert!(cnf.num_clauses() >= self.absorbed, "source Cnf shrank");
        if cnf.num_vars > self.assign.len() {
            self.assign.resize(cnf.num_vars, 0);
            self.watches.resize(2 * cnf.num_vars, Vec::new());
            self.counts.resize(cnf.num_vars, 0);
        }
        let mut tmp: Vec<i32> = Vec::new();
        for i in self.absorbed..cnf.num_clauses() {
            // Same normalization as `Watched::new`: drop duplicate
            // literals, drop tautological clauses whole.
            tmp.clear();
            let mut taut = false;
            'lits: for &l in cnf.clause_at(i) {
                for &m in &tmp {
                    if m == l {
                        continue 'lits;
                    }
                    if m == -l {
                        taut = true;
                        break 'lits;
                    }
                }
                tmp.push(l);
            }
            if taut {
                continue;
            }
            for &l in &tmp {
                self.counts[l.unsigned_abs() as usize - 1] += 1;
            }
            match tmp.len() {
                0 => self.conflict_at_root = true,
                1 => self.root_units.push(tmp[0]),
                _ => {
                    let ci = self.bounds.len() as u32;
                    let start = self.db.len() as u32;
                    self.db.extend_from_slice(&tmp);
                    self.bounds.push((start, tmp.len() as u32));
                    self.watches[Watched::slot(tmp[0])].push(ci);
                    self.watches[Watched::slot(tmp[1])].push(ci);
                }
            }
        }
        self.absorbed = cnf.num_clauses();
        self.order_stale = true;
    }

    fn value(&self, lit: i32) -> Option<bool> {
        match self.assign[lit.unsigned_abs() as usize - 1] {
            0 => None,
            1 => Some(lit > 0),
            _ => Some(lit < 0),
        }
    }

    fn enqueue(&mut self, lit: i32) {
        self.assign[lit.unsigned_abs() as usize - 1] = if lit > 0 { 1 } else { 2 };
        self.trail.push(lit);
    }

    fn undo_to(&mut self, mark: usize) {
        for &l in &self.trail[mark..] {
            self.assign[l.unsigned_abs() as usize - 1] = 0;
        }
        self.trail.truncate(mark);
        self.propagated = mark;
    }

    /// Propagate every queued assignment; `false` means conflict.
    /// Identical scheme to [`Watched::propagate`], over the persistent
    /// clause database.
    fn propagate(&mut self) -> bool {
        while self.propagated < self.trail.len() {
            let lit = self.trail[self.propagated];
            self.propagated += 1;
            let fl = -lit;
            let wslot = Watched::slot(fl);
            let mut i = 0;
            while i < self.watches[wslot].len() {
                let ci = self.watches[wslot][i] as usize;
                let (start, len) = self.bounds[ci];
                let (start, len) = (start as usize, len as usize);
                if self.db[start] == fl {
                    self.db.swap(start, start + 1);
                }
                let w0 = self.db[start];
                if self.value(w0) == Some(true) {
                    i += 1;
                    continue;
                }
                let mut moved = false;
                for k in 2..len {
                    let l = self.db[start + k];
                    if self.value(l) != Some(false) {
                        self.db[start + 1] = l;
                        self.db[start + k] = fl;
                        self.watches[Watched::slot(l)].push(ci as u32);
                        self.watches[wslot].swap_remove(i);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                match self.value(w0) {
                    None => {
                        self.enqueue(w0);
                        i += 1;
                    }
                    Some(false) => return false,
                    Some(true) => unreachable!("satisfied clause handled above"),
                }
            }
        }
        true
    }

    /// Decide the absorbed formula under `assumptions` (literals that
    /// must hold for this query only). Deterministic for the same
    /// absorbed clauses and assumption set; the decision budget is per
    /// call. The trail is fully undone on every return path.
    pub fn solve_under(&mut self, assumptions: &[i32]) -> SolveOutcome {
        if self.conflict_at_root {
            return SolveOutcome::Unsat;
        }
        debug_assert!(
            self.trail.is_empty(),
            "solve_under requires a quiescent solver"
        );
        if self.order_stale {
            let counts = &self.counts;
            let mut order: Vec<u32> = (0..self.assign.len() as u32).collect();
            order.sort_by_key(|&v| (std::cmp::Reverse(counts[v as usize]), v));
            self.order = order;
            self.order_stale = false;
        }
        // Assumption level: root units and assumptions sit below every
        // decision frame, so the search can never flip them.
        for i in 0..self.root_units.len() + assumptions.len() {
            let lit = if i < self.root_units.len() {
                self.root_units[i]
            } else {
                assumptions[i - self.root_units.len()]
            };
            debug_assert!(
                lit != 0 && (lit.unsigned_abs() as usize) <= self.assign.len(),
                "bad assumption literal {lit}"
            );
            match self.value(lit) {
                None => self.enqueue(lit),
                Some(true) => {}
                Some(false) => {
                    self.undo_to(0);
                    return SolveOutcome::Unsat;
                }
            }
        }
        let mut frames: Vec<Frame> = Vec::new();
        let mut cursor = 0usize;
        let mut decisions = 0u64;
        let outcome = 'search: loop {
            if !self.propagate() {
                loop {
                    let Some(f) = frames.pop() else {
                        break 'search SolveOutcome::Unsat;
                    };
                    self.undo_to(f.mark);
                    cursor = f.cursor;
                    if !f.flipped {
                        self.enqueue(-f.lit);
                        frames.push(Frame {
                            lit: -f.lit,
                            mark: f.mark,
                            cursor: f.cursor,
                            flipped: true,
                        });
                        break;
                    }
                }
                continue;
            }
            while cursor < self.order.len() && self.assign[self.order[cursor] as usize] != 0 {
                cursor += 1;
            }
            let Some(&var) = self.order.get(cursor) else {
                break 'search SolveOutcome::Sat(self.assign.iter().map(|&a| a == 1).collect());
            };
            decisions += 1;
            if decisions > DECISION_BUDGET {
                break 'search SolveOutcome::BudgetExhausted;
            }
            let lit = (var + 1) as i32;
            frames.push(Frame {
                lit,
                mark: self.trail.len(),
                cursor,
                flipped: false,
            });
            self.enqueue(lit);
        };
        self.undo_to(0);
        outcome
    }
}

/// The pre-watched-literal DPLL, kept as the measured baseline and the
/// differential-test oracle. Same decision budget, same outcomes on
/// every in-budget instance as [`solve`] (models may differ; both are
/// valid).
pub fn solve_reference(cnf: &Cnf) -> SolveOutcome {
    let clauses: Vec<&[i32]> = cnf.clauses().collect();
    let mut s = Dpll {
        clauses: &clauses,
        assign: vec![None; cnf.num_vars],
        trail: Vec::new(),
        decisions: 0,
    };
    match s.search() {
        Some(true) => SolveOutcome::Sat(s.assign.into_iter().map(|a| a.unwrap_or(false)).collect()),
        Some(false) => SolveOutcome::Unsat,
        None => SolveOutcome::BudgetExhausted,
    }
}

struct Dpll<'a> {
    clauses: &'a [&'a [i32]],
    assign: Vec<Option<bool>>,
    trail: Vec<usize>,
    decisions: u64,
}

impl Dpll<'_> {
    fn lit_val(&self, lit: i32) -> Option<bool> {
        let v = self.assign[(lit.unsigned_abs() - 1) as usize]?;
        Some(if lit > 0 { v } else { !v })
    }

    fn set(&mut self, lit: i32) {
        let idx = (lit.unsigned_abs() - 1) as usize;
        debug_assert!(self.assign[idx].is_none());
        self.assign[idx] = Some(lit > 0);
        self.trail.push(idx);
    }

    /// Unit propagation to fixpoint. Returns false on conflict.
    fn propagate(&mut self) -> bool {
        loop {
            let mut changed = false;
            for clause in self.clauses {
                let mut unassigned = None;
                let mut n_unassigned = 0;
                let mut satisfied = false;
                for &lit in *clause {
                    match self.lit_val(lit) {
                        Some(true) => {
                            satisfied = true;
                            break;
                        }
                        Some(false) => {}
                        None => {
                            n_unassigned += 1;
                            unassigned = Some(lit);
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                match n_unassigned {
                    0 => return false, // conflict
                    1 => {
                        self.set(unassigned.unwrap());
                        changed = true;
                    }
                    _ => {}
                }
            }
            if !changed {
                return true;
            }
        }
    }

    /// `Some(true)` = SAT, `Some(false)` = UNSAT, `None` = budget out.
    fn search(&mut self) -> Option<bool> {
        if !self.propagate() {
            return Some(false);
        }
        // Pick the first unassigned variable that appears in an
        // unsatisfied clause (pure decision heuristic).
        let decision = self.pick();
        let Some(var) = decision else {
            return Some(true); // all relevant clauses satisfied
        };
        self.decisions += 1;
        if self.decisions > DECISION_BUDGET {
            return None;
        }
        for &value in &[true, false] {
            let mark = self.trail.len();
            let lit = if value {
                (var + 1) as i32
            } else {
                -((var + 1) as i32)
            };
            self.set(lit);
            match self.search() {
                Some(true) => return Some(true),
                Some(false) => {}
                None => return None,
            }
            // Undo.
            while self.trail.len() > mark {
                let idx = self.trail.pop().unwrap();
                self.assign[idx] = None;
            }
        }
        Some(false)
    }

    fn pick(&self) -> Option<usize> {
        for clause in self.clauses {
            let mut sat = false;
            let mut cand = None;
            for &lit in *clause {
                match self.lit_val(lit) {
                    Some(true) => {
                        sat = true;
                        break;
                    }
                    Some(false) => {}
                    None => cand = cand.or(Some((lit.unsigned_abs() - 1) as usize)),
                }
            }
            if !sat {
                if let Some(c) = cand {
                    return Some(c);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(c: &Cnf) -> Vec<bool> {
        match solve(c) {
            SolveOutcome::Sat(m) => m,
            other => panic!("expected SAT, got {other:?}"),
        }
    }

    fn check_model(c: &Cnf, m: &[bool]) {
        for clause in c.clauses() {
            assert!(
                clause.iter().any(|&l| {
                    let v = m[(l.unsigned_abs() - 1) as usize];
                    if l > 0 {
                        v
                    } else {
                        !v
                    }
                }),
                "model violates clause {clause:?}"
            );
        }
    }

    #[test]
    fn trivial_sat() {
        let mut c = Cnf::new();
        let a = c.fresh();
        c.clause(&[a]);
        assert!(model(&c)[0]);
    }

    #[test]
    fn trivial_unsat() {
        let mut c = Cnf::new();
        let a = c.fresh();
        c.clause(&[a]);
        c.clause(&[-a]);
        assert_eq!(solve(&c), SolveOutcome::Unsat);
    }

    #[test]
    fn requires_search() {
        // (a ∨ b) ∧ (¬a ∨ b) ∧ (a ∨ ¬b) — satisfied only by a=b=true.
        let mut c = Cnf::new();
        let a = c.fresh();
        let b = c.fresh();
        c.clause(&[a, b]);
        c.clause(&[-a, b]);
        c.clause(&[a, -b]);
        let m = model(&c);
        assert!(m[0] && m[1]);
    }

    #[test]
    fn unsat_3sat_core() {
        // All 4 combinations over (a,b) excluded.
        let mut c = Cnf::new();
        let a = c.fresh();
        let b = c.fresh();
        c.clause(&[a, b]);
        c.clause(&[a, -b]);
        c.clause(&[-a, b]);
        c.clause(&[-a, -b]);
        assert_eq!(solve(&c), SolveOutcome::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // p_{i,j}: pigeon i in hole j. 3 pigeons, 2 holes.
        let mut c = Cnf::new();
        let mut p = [[0i32; 2]; 3];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = c.fresh();
            }
        }
        for row in &p {
            c.clause(&[row[0], row[1]]); // each pigeon somewhere
        }
        for j in 0..2 {
            for (i1, row1) in p.iter().enumerate() {
                for row2 in &p[i1 + 1..] {
                    c.clause(&[-row1[j], -row2[j]]); // no two share a hole
                }
            }
        }
        assert_eq!(solve(&c), SolveOutcome::Unsat);
        assert_eq!(solve_reference(&c), SolveOutcome::Unsat);
    }

    #[test]
    fn model_satisfies_all_clauses() {
        let mut c = Cnf::new();
        let vars: Vec<i32> = (0..8).map(|_| c.fresh()).collect();
        // Random-ish structured clauses.
        c.clause(&[vars[0], -vars[1], vars[2]]);
        c.clause(&[-vars[0], vars[3]]);
        c.clause(&[vars[4], vars[5], -vars[6]]);
        c.clause(&[-vars[3], -vars[5]]);
        c.clause(&[vars[7]]);
        check_model(&c, &model(&c));
    }

    #[test]
    fn duplicate_and_tautological_clauses_are_normalized() {
        let mut c = Cnf::new();
        let a = c.fresh();
        let b = c.fresh();
        c.clause(&[a, a, b]); // duplicate literal
        c.clause(&[a, -a]); // tautology
        c.clause(&[-b]);
        let m = model(&c);
        check_model(&c, &m);
        assert!(!m[1]);
    }

    #[test]
    fn flat_storage_round_trips_clauses() {
        let mut c = Cnf::new();
        let a = c.fresh();
        let b = c.fresh();
        c.clause(&[a, b]);
        c.clause(&[-a]);
        c.clause(&[a, -b, a]);
        assert_eq!(c.num_clauses(), 3);
        assert_eq!(c.num_lits(), 6);
        assert_eq!(c.clause_at(0), &[a, b]);
        assert_eq!(c.clause_at(1), &[-a]);
        assert_eq!(c.clause_at(2), &[a, -b, a]);
        c.clear();
        assert_eq!(c.num_vars, 0);
        assert_eq!(c.num_clauses(), 0);
        assert_eq!(c.num_lits(), 0);
    }

    #[test]
    fn watched_agrees_with_reference_on_unit_chains() {
        // A long implication chain forces heavy propagation through
        // both engines: a1 ∧ (¬a1∨a2) ∧ ... ∧ (¬a_{n−1}∨a_n).
        let mut c = Cnf::new();
        let vars: Vec<i32> = (0..64).map(|_| c.fresh()).collect();
        c.clause(&[vars[0]]);
        for w in vars.windows(2) {
            c.clause(&[-w[0], w[1]]);
        }
        let m = model(&c);
        assert!(m.iter().all(|&v| v));
        assert!(matches!(solve_reference(&c), SolveOutcome::Sat(_)));
        // Now pin the tail false: UNSAT both ways.
        c.clause(&[-vars[63]]);
        assert_eq!(solve(&c), SolveOutcome::Unsat);
        assert_eq!(solve_reference(&c), SolveOutcome::Unsat);
    }

    #[test]
    fn incremental_matches_batch_under_assumptions() {
        // (a ∨ b) ∧ (¬a ∨ c): solve under every single-literal
        // assumption and compare against batch-solving the same
        // formula with the assumption as a unit clause.
        let mut c = Cnf::new();
        let a = c.fresh();
        let b = c.fresh();
        let cc = c.fresh();
        c.clause(&[a, b]);
        c.clause(&[-a, cc]);
        let mut inc = IncrementalSat::new();
        inc.absorb(&c);
        for assumption in [a, -a, b, -b, cc, -cc, -cc] {
            let got = inc.solve_under(&[assumption]);
            let mut batch = c.clone();
            batch.clause(&[assumption]);
            let want = solve(&batch);
            match (got, want) {
                (SolveOutcome::Sat(m), SolveOutcome::Sat(_)) => {
                    // The incremental model must satisfy clauses and
                    // the assumption.
                    check_model(&c, &m);
                    let v = m[(assumption.unsigned_abs() - 1) as usize];
                    assert_eq!(v, assumption > 0);
                }
                (g, w) => assert_eq!(g, w, "assumption {assumption}"),
            }
        }
    }

    #[test]
    fn incremental_assumptions_fully_retract() {
        // a ∧ (¬a ∨ b): assuming ¬b is UNSAT, but the state must come
        // back clean — the same query without the assumption is SAT.
        let mut c = Cnf::new();
        let a = c.fresh();
        let b = c.fresh();
        c.clause(&[a]);
        c.clause(&[-a, b]);
        let mut inc = IncrementalSat::new();
        inc.absorb(&c);
        assert_eq!(inc.solve_under(&[-b]), SolveOutcome::Unsat);
        match inc.solve_under(&[]) {
            SolveOutcome::Sat(m) => {
                assert!(m[0] && m[1]);
            }
            other => panic!("expected SAT after retraction, got {other:?}"),
        }
        // And UNSAT again: retraction is not sticky in either direction.
        assert_eq!(inc.solve_under(&[-b]), SolveOutcome::Unsat);
    }

    #[test]
    fn incremental_absorb_is_append_only() {
        // Absorbing in two rounds equals absorbing at once.
        let mut c = Cnf::new();
        let a = c.fresh();
        let b = c.fresh();
        c.clause(&[a, b]);
        let mut inc = IncrementalSat::new();
        inc.absorb(&c);
        assert_eq!(inc.absorbed_clauses(), 1);
        assert!(matches!(inc.solve_under(&[]), SolveOutcome::Sat(_)));
        // Grow the formula: a fresh var and two more clauses.
        let d = c.fresh();
        c.clause(&[-a, d]);
        c.clause(&[-d]);
        inc.absorb(&c);
        assert_eq!(inc.absorbed_clauses(), 3);
        match inc.solve_under(&[]) {
            SolveOutcome::Sat(m) => {
                check_model(&c, &m);
                assert!(!m[0] && m[1] && !m[2]);
            }
            other => panic!("expected SAT, got {other:?}"),
        }
        assert_eq!(inc.solve_under(&[a]), SolveOutcome::Unsat);
        assert_eq!(solve(&c), inc.solve_under(&[]));
    }

    #[test]
    fn incremental_handles_root_conflicts() {
        // Conflicting absorbed units: UNSAT regardless of assumptions.
        let mut c = Cnf::new();
        let a = c.fresh();
        c.clause(&[a]);
        c.clause(&[-a]);
        let mut inc = IncrementalSat::new();
        inc.absorb(&c);
        assert_eq!(inc.solve_under(&[]), SolveOutcome::Unsat);
        assert_eq!(inc.solve_under(&[a]), SolveOutcome::Unsat);
        // An absorbed empty clause poisons every future query too.
        let mut c2 = Cnf::new();
        let b = c2.fresh();
        c2.clause(&[]);
        let mut inc2 = IncrementalSat::new();
        inc2.absorb(&c2);
        assert_eq!(inc2.solve_under(&[b]), SolveOutcome::Unsat);
    }

    #[test]
    fn incremental_agrees_with_batch_on_pigeonhole() {
        let mut c = Cnf::new();
        let mut p = [[0i32; 2]; 3];
        for row in &mut p {
            for slot in row.iter_mut() {
                *slot = c.fresh();
            }
        }
        for row in &p {
            c.clause(&[row[0], row[1]]);
        }
        for j in 0..2 {
            for (i1, row1) in p.iter().enumerate() {
                for row2 in &p[i1 + 1..] {
                    c.clause(&[-row1[j], -row2[j]]);
                }
            }
        }
        let mut inc = IncrementalSat::new();
        inc.absorb(&c);
        assert_eq!(inc.solve_under(&[]), SolveOutcome::Unsat);
    }

    #[cfg(debug_assertions)]
    #[test]
    fn clause_rejects_bad_literals_in_debug() {
        for bad in [0i32, 3, -5] {
            let got = std::panic::catch_unwind(|| {
                let mut c = Cnf::new();
                c.fresh();
                c.clause(&[bad]);
            });
            assert!(got.is_err(), "literal {bad} must trip the debug assert");
        }
    }
}
