//! # cr-symex — symbolic execution of exception filters
//!
//! The paper (§IV-C) symbolically executes every SEH exception-filter
//! function found in a module's `.pdata` scope tables and asks an SMT
//! solver (Z3) whether the filter can accept
//! `EXCEPTION_ACCESS_VIOLATION`. This crate reproduces that decision
//! procedure from scratch:
//!
//! * [`Expr`]/[`BoolExpr`] — a bitvector expression DAG with constant
//!   folding;
//! * [`SymExec`] — a path-forking symbolic executor over the `cr-isa`
//!   instruction subset, with the Windows x64 filter ABI as harness;
//! * [`check`] — QF_BV satisfiability: constraints are folded into a
//!   hash-consed per-thread term arena ([`term`]), Tseitin bit-blasted
//!   to CNF, and decided by a two-watched-literal DPLL solver, with a
//!   process-wide normalized-query memo answering structurally repeated
//!   queries without solving. Witness models come back as [`Model`];
//! * [`FilterExplorer`] — the one-door path explorer: forks at each
//!   *feasible* branch under a bounded loop-unroll budget and solves
//!   sibling paths incrementally through a [`Session`] (push/pop over
//!   the shared constraint prefix, assumption-layered
//!   [`IncrementalSat`] state), returning a structured
//!   [`ExplorationReport`]. [`SymExec`] remains as the single-shot
//!   differential-testing reference.
//!
//! # Examples
//!
//! Vetting a catch-all filter (machine code for `return 1;`):
//!
//! ```
//! use cr_symex::{SymExec, FilterVerdict};
//! use cr_isa::{Asm, Reg};
//!
//! let mut a = Asm::new(0x1000);
//! a.mov_ri(Reg::Rax, 1);
//! a.ret();
//! let code = a.assemble()?.code;
//!
//! let analysis = SymExec::default().analyze_filter(&(0x1000, code.as_slice()), 0x1000);
//! assert!(matches!(analysis.verdict, FilterVerdict::AcceptsAccessViolation { .. }));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

mod blast;
mod exec;
mod explorer;
mod expr;
mod sat;
pub mod term;

pub use blast::{
    check, check_reference, memo_hits, memo_lookups, reset_query_memo, solver_calls,
    thread_arena_size, with_reference_pipeline, Model, SatResult, Session,
};
pub use exec::{
    with_step_budget, CodeSource, FilterAnalysis, FilterVerdict, SymExec, CODE_VAR,
    EXCEPTION_ACCESS_VIOLATION, EXCEPTION_CONTINUE_EXECUTION, EXCEPTION_CONTINUE_SEARCH,
    EXCEPTION_EXECUTE_HANDLER,
};
pub use explorer::{
    paths_completed, paths_pruned, ExplorationReport, FilterExplorer, FilterExplorerBuilder,
    ParallelStats, PathReport, PathVerdict, SolverCounters,
};
pub use expr::{BinOp, BoolExpr, CmpOp, Expr};
pub use sat::{solve, solve_reference, Cnf, IncrementalSat, SolveOutcome};
