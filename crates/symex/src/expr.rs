//! Bitvector expression DAG.
//!
//! All expressions are 64-bit bitvectors; narrower machine values are
//! represented by masking (a [`Var`](Expr::Var) carries the number of
//! significant bits and the bit-blaster forces upper bits to zero).
//! Construction goes through the smart constructors on [`Expr`], which
//! perform constant folding so fully concrete program paths never touch
//! the SAT solver.

use std::fmt;
use std::rc::Rc;

/// Binary bitvector operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (by constant amounts only in practice).
    Shl,
    /// Logical shift right.
    Shr,
}

/// A bitvector expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// A 64-bit constant.
    Const(u64),
    /// A named input variable of `bits` significant bits (upper bits are
    /// zero). E.g. `exception_code` is a 32-bit variable.
    Var {
        /// Variable name (unique per solver query).
        name: String,
        /// Significant bit count (1..=64).
        bits: u32,
    },
    /// A binary operation.
    Bin(BinOp, Rc<Expr>, Rc<Expr>),
    /// Bitwise not.
    Not(Rc<Expr>),
}

impl Expr {
    /// A constant.
    pub fn c(v: u64) -> Rc<Expr> {
        Rc::new(Expr::Const(v))
    }

    /// A fresh variable with `bits` significant bits.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 64.
    pub fn var(name: &str, bits: u32) -> Rc<Expr> {
        assert!((1..=64).contains(&bits), "bits must be in 1..=64");
        Rc::new(Expr::Var {
            name: name.to_string(),
            bits,
        })
    }

    /// Smart binary constructor with constant folding and light
    /// simplification.
    pub fn bin(op: BinOp, a: Rc<Expr>, b: Rc<Expr>) -> Rc<Expr> {
        if let (Expr::Const(x), Expr::Const(y)) = (&*a, &*b) {
            return Expr::c(eval_bin(op, *x, *y));
        }
        match (op, &*a, &*b) {
            (BinOp::Add | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr, _, Expr::Const(0)) => {
                return a
            }
            (BinOp::Add | BinOp::Or | BinOp::Xor, Expr::Const(0), _) => return b,
            (BinOp::Sub, _, Expr::Const(0)) => return a,
            (BinOp::And, _, Expr::Const(u64::MAX)) => return a,
            (BinOp::And, Expr::Const(u64::MAX), _) => return b,
            (BinOp::And, _, Expr::Const(0)) | (BinOp::And, Expr::Const(0), _) => return Expr::c(0),
            // Masking a variable to at least its own width is a no-op.
            (BinOp::And, Expr::Var { bits, .. }, Expr::Const(m))
                if *m == mask_of(*bits) || (*m & mask_of(*bits)) == mask_of(*bits) =>
            {
                return a
            }
            _ => {}
        }
        if op == BinOp::Sub && a == b {
            return Expr::c(0);
        }
        if op == BinOp::Xor && a == b {
            return Expr::c(0);
        }
        Rc::new(Expr::Bin(op, a, b))
    }

    /// Bitwise not.
    #[allow(clippy::should_implement_trait)] // associated constructor, not `!`-operator sugar
    pub fn not(a: Rc<Expr>) -> Rc<Expr> {
        if let Expr::Const(x) = &*a {
            return Expr::c(!x);
        }
        Rc::new(Expr::Not(a))
    }

    /// The constant value, if fully concrete.
    pub fn as_const(&self) -> Option<u64> {
        match self {
            Expr::Const(v) => Some(*v),
            _ => None,
        }
    }

    /// Collect variable names and widths reachable from this expression.
    pub fn collect_vars(&self, out: &mut Vec<(String, u32)>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var { name, bits } => {
                if !out.iter().any(|(n, _)| n == name) {
                    out.push((name.clone(), *bits));
                }
            }
            Expr::Bin(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Not(a) => a.collect_vars(out),
        }
    }

    /// Evaluate under a variable assignment. Missing variables default to 0.
    pub fn eval(&self, model: &dyn Fn(&str) -> u64) -> u64 {
        match self {
            Expr::Const(v) => *v,
            Expr::Var { name, bits } => model(name) & mask_of(*bits),
            Expr::Bin(op, a, b) => eval_bin(*op, a.eval(model), b.eval(model)),
            Expr::Not(a) => !a.eval(model),
        }
    }
}

pub(crate) fn mask_of(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    }
}

pub(crate) fn eval_bin(op: BinOp, a: u64, b: u64) -> u64 {
    match op {
        BinOp::Add => a.wrapping_add(b),
        BinOp::Sub => a.wrapping_sub(b),
        BinOp::And => a & b,
        BinOp::Or => a | b,
        BinOp::Xor => a ^ b,
        BinOp::Shl => {
            if b >= 64 {
                0
            } else {
                a << b
            }
        }
        BinOp::Shr => {
            if b >= 64 {
                0
            } else {
                a >> b
            }
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(v) => write!(f, "{v:#x}"),
            Expr::Var { name, bits } => write!(f, "{name}:{bits}"),
            Expr::Bin(op, a, b) => {
                let s = match op {
                    BinOp::Add => "+",
                    BinOp::Sub => "-",
                    BinOp::And => "&",
                    BinOp::Or => "|",
                    BinOp::Xor => "^",
                    BinOp::Shl => "<<",
                    BinOp::Shr => ">>",
                };
                write!(f, "({a} {s} {b})")
            }
            Expr::Not(a) => write!(f, "~{a}"),
        }
    }
}

/// Comparison operators for boolean constraints.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Unsigned less-than.
    Ult,
    /// Signed less-than (at the given width).
    Slt,
}

/// A boolean constraint over bitvector expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoolExpr {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// Comparison of two expressions at `width` bits.
    Cmp {
        /// Comparison operator.
        op: CmpOp,
        /// Width in bits at which the comparison happens (8/32/64).
        width: u32,
        /// Left operand.
        a: Rc<Expr>,
        /// Right operand.
        b: Rc<Expr>,
    },
    /// Conjunction.
    And(Box<BoolExpr>, Box<BoolExpr>),
    /// Disjunction.
    Or(Box<BoolExpr>, Box<BoolExpr>),
    /// Negation.
    Not(Box<BoolExpr>),
}

impl BoolExpr {
    /// Comparison constructor with constant folding.
    pub fn cmp(op: CmpOp, width: u32, a: Rc<Expr>, b: Rc<Expr>) -> BoolExpr {
        if let (Some(x), Some(y)) = (a.as_const(), b.as_const()) {
            let m = mask_of(width);
            let (x, y) = (x & m, y & m);
            let v = match op {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Ult => x < y,
                CmpOp::Slt => sign_extend(x, width) < sign_extend(y, width),
            };
            return if v { BoolExpr::True } else { BoolExpr::False };
        }
        BoolExpr::Cmp { op, width, a, b }
    }

    /// Negation with folding.
    #[allow(clippy::should_implement_trait)]
    pub fn not(e: BoolExpr) -> BoolExpr {
        match e {
            BoolExpr::True => BoolExpr::False,
            BoolExpr::False => BoolExpr::True,
            BoolExpr::Not(inner) => *inner,
            other => BoolExpr::Not(Box::new(other)),
        }
    }

    /// Conjunction with folding.
    pub fn and(a: BoolExpr, b: BoolExpr) -> BoolExpr {
        match (&a, &b) {
            (BoolExpr::False, _) | (_, BoolExpr::False) => BoolExpr::False,
            (BoolExpr::True, _) => b,
            (_, BoolExpr::True) => a,
            _ => BoolExpr::And(Box::new(a), Box::new(b)),
        }
    }

    /// Disjunction with folding.
    pub fn or(a: BoolExpr, b: BoolExpr) -> BoolExpr {
        match (&a, &b) {
            (BoolExpr::True, _) | (_, BoolExpr::True) => BoolExpr::True,
            (BoolExpr::False, _) => b,
            (_, BoolExpr::False) => a,
            _ => BoolExpr::Or(Box::new(a), Box::new(b)),
        }
    }

    /// The constant truth value, if fully concrete.
    pub fn as_const(&self) -> Option<bool> {
        match self {
            BoolExpr::True => Some(true),
            BoolExpr::False => Some(false),
            _ => None,
        }
    }

    /// Collect variables.
    pub fn collect_vars(&self, out: &mut Vec<(String, u32)>) {
        match self {
            BoolExpr::True | BoolExpr::False => {}
            BoolExpr::Cmp { a, b, .. } => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            BoolExpr::And(a, b) | BoolExpr::Or(a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            BoolExpr::Not(a) => a.collect_vars(out),
        }
    }

    /// Evaluate under a model.
    pub fn eval(&self, model: &dyn Fn(&str) -> u64) -> bool {
        match self {
            BoolExpr::True => true,
            BoolExpr::False => false,
            BoolExpr::Cmp { op, width, a, b } => {
                let m = mask_of(*width);
                let (x, y) = (a.eval(model) & m, b.eval(model) & m);
                match op {
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                    CmpOp::Ult => x < y,
                    CmpOp::Slt => sign_extend(x, *width) < sign_extend(y, *width),
                }
            }
            BoolExpr::And(a, b) => a.eval(model) && b.eval(model),
            BoolExpr::Or(a, b) => a.eval(model) || b.eval(model),
            BoolExpr::Not(a) => !a.eval(model),
        }
    }
}

pub(crate) fn sign_extend(v: u64, bits: u32) -> i64 {
    if bits >= 64 {
        v as i64
    } else {
        let shift = 64 - bits;
        ((v << shift) as i64) >> shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding() {
        let e = Expr::bin(BinOp::Add, Expr::c(2), Expr::c(3));
        assert_eq!(e.as_const(), Some(5));
        let e = Expr::bin(BinOp::Sub, Expr::c(2), Expr::c(3));
        assert_eq!(e.as_const(), Some(u64::MAX));
        let v = Expr::var("x", 32);
        let e = Expr::bin(BinOp::Add, v.clone(), Expr::c(0));
        assert_eq!(e, v);
        let e = Expr::bin(BinOp::Xor, v.clone(), v.clone());
        assert_eq!(e.as_const(), Some(0));
    }

    #[test]
    fn mask_noop_on_var() {
        let v = Expr::var("x", 32);
        let e = Expr::bin(BinOp::And, v.clone(), Expr::c(0xFFFF_FFFF));
        assert_eq!(e, v);
    }

    #[test]
    fn bool_folding() {
        assert_eq!(
            BoolExpr::cmp(CmpOp::Eq, 64, Expr::c(1), Expr::c(1)),
            BoolExpr::True
        );
        assert_eq!(
            BoolExpr::cmp(CmpOp::Ult, 8, Expr::c(0xFF), Expr::c(1)),
            BoolExpr::False
        );
        // Signed at 8 bits: 0xFF = -1 < 1.
        assert_eq!(
            BoolExpr::cmp(CmpOp::Slt, 8, Expr::c(0xFF), Expr::c(1)),
            BoolExpr::True
        );
        let x = BoolExpr::cmp(CmpOp::Eq, 64, Expr::var("a", 64), Expr::c(3));
        assert_eq!(BoolExpr::and(BoolExpr::True, x.clone()), x);
        assert_eq!(BoolExpr::and(BoolExpr::False, x.clone()), BoolExpr::False);
        assert_eq!(BoolExpr::not(BoolExpr::not(x.clone())), x);
    }

    #[test]
    fn eval_matches_fold() {
        let x = Expr::var("x", 16);
        let e = Expr::bin(BinOp::Add, x, Expr::c(10));
        let v = e.eval(&|name| if name == "x" { 0xFFFF } else { 0 });
        assert_eq!(v, 0xFFFF + 10);
    }

    #[test]
    fn collect_vars_dedups() {
        let x = Expr::var("x", 32);
        let e = Expr::bin(BinOp::Add, x.clone(), x);
        let mut vars = Vec::new();
        e.collect_vars(&mut vars);
        assert_eq!(vars, vec![("x".to_string(), 32)]);
    }

    #[test]
    fn display_forms() {
        let e = Expr::bin(BinOp::Add, Expr::var("code", 32), Expr::c(1));
        assert_eq!(e.to_string(), "(code:32 + 0x1)");
    }
}
