//! Interned terms: hash-consed bitvector/boolean arenas and canonical
//! query normalization.
//!
//! The [`crate::expr`] DAG is the construction-facing representation —
//! cheap to build, `Rc`-shared, names as strings. The decision
//! procedure, however, wants *identity*: equal subterms should be
//! built once and compared by a `u32` id, so the bit-blaster can key
//! its encoding cache by id instead of hashing whole subtrees. This
//! module provides that layer:
//!
//! * a process-wide **symbol interner** ([`sym_intern`]) mapping
//!   variable names to dense [`SymId`]s (names are leaked once — the
//!   population of distinct variable names is small and recurring);
//! * a per-thread [`TermArena`] of hash-consed [`TermNode`]s and
//!   [`BoolNode`]s, whose smart constructors replicate the constant
//!   folding of [`crate::expr`] exactly (memoized by construction:
//!   a folded node exists once, so folding work is never repeated);
//! * [`TermArena::normalize`] — a canonical byte serialization of a
//!   constraint set with variables renamed in first-occurrence order,
//!   used as the key of the process-wide query memo: structurally
//!   identical queries that differ only in variable names (filters
//!   duplicated across modules at different addresses) normalize to
//!   the same key.

use crate::expr::{eval_bin, mask_of, sign_extend, BinOp, CmpOp};
use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

/// An interned variable name. Ids are process-wide and dense; the same
/// name always interns to the same id, so models can store ids and
/// still answer string lookups through the interner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SymId(u32);

impl SymId {
    /// Dense index of this symbol (0-based intern order).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

struct Symtab {
    names: Vec<&'static str>,
    ids: HashMap<&'static str, u32>,
}

/// `RwLock`, not `Mutex`: the variable-name population is small and
/// recurs across every query, so after warmup virtually every access is
/// a lookup of an already-interned name. Readers (the intern fast path,
/// [`sym_lookup`], [`sym_name`]) share the lock; only the first intern
/// of a genuinely new name takes the write side. This is what keeps a
/// fleet of exploration workers from serializing on the interner.
static SYMTAB: OnceLock<RwLock<Symtab>> = OnceLock::new();

fn symtab() -> &'static RwLock<Symtab> {
    SYMTAB.get_or_init(|| {
        RwLock::new(Symtab {
            names: Vec::new(),
            ids: HashMap::new(),
        })
    })
}

/// Intern `name`, returning its process-wide id. The first intern of a
/// name leaks one copy of it; the variable-name population (register
/// harness fields, `mem_*` loads at fixed harness addresses) is small
/// and recurs across queries, so the leak is bounded in practice.
///
/// Read-mostly: the hit path takes only the shared side of the table
/// lock, and the miss path re-checks under the write lock (another
/// thread may have interned the same name between the two).
pub fn sym_intern(name: &str) -> SymId {
    {
        let t = symtab().read().unwrap_or_else(|e| e.into_inner());
        if let Some(&id) = t.ids.get(name) {
            return SymId(id);
        }
    }
    let mut t = symtab().write().unwrap_or_else(|e| e.into_inner());
    if let Some(&id) = t.ids.get(name) {
        return SymId(id);
    }
    let id = t.names.len() as u32;
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    t.names.push(leaked);
    t.ids.insert(leaked, id);
    SymId(id)
}

/// Look a name up without interning it (misses return `None`).
pub fn sym_lookup(name: &str) -> Option<SymId> {
    symtab()
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .ids
        .get(name)
        .copied()
        .map(SymId)
}

/// The interned name of `id`.
///
/// # Panics
///
/// Panics if `id` did not come from [`sym_intern`].
pub fn sym_name(id: SymId) -> &'static str {
    symtab().read().unwrap_or_else(|e| e.into_inner()).names[id.index()]
}

/// Arena id of a bitvector term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TermId(u32);

impl TermId {
    /// Dense arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Arena id of a boolean term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BoolId(u32);

impl BoolId {
    /// Dense arena index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A hash-consed bitvector node. Children are arena ids, so structural
/// equality is id equality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TermNode {
    /// A 64-bit constant.
    Const(u64),
    /// A named input variable of `bits` significant bits.
    Var {
        /// Interned name.
        sym: SymId,
        /// Significant bit count (1..=64).
        bits: u32,
    },
    /// A binary operation.
    Bin(BinOp, TermId, TermId),
    /// Bitwise not.
    Not(TermId),
}

/// A hash-consed boolean node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BoolNode {
    /// Constant true.
    True,
    /// Constant false.
    False,
    /// Comparison of two terms at `width` bits.
    Cmp {
        /// Comparison operator.
        op: CmpOp,
        /// Comparison width in bits.
        width: u32,
        /// Left operand.
        a: TermId,
        /// Right operand.
        b: TermId,
    },
    /// Conjunction.
    And(BoolId, BoolId),
    /// Disjunction.
    Or(BoolId, BoolId),
    /// Negation.
    Not(BoolId),
}

/// A hash-consing arena for bitvector and boolean terms.
///
/// The arena is append-only and meant to persist across queries on a
/// worker thread: terms shared between successive queries (the fixed
/// harness variables, common comparison shapes) intern to the same id
/// every time, so downstream id-keyed caches keep paying off.
#[derive(Debug, Default)]
pub struct TermArena {
    terms: Vec<TermNode>,
    term_ids: HashMap<TermNode, TermId>,
    bools: Vec<BoolNode>,
    bool_ids: HashMap<BoolNode, BoolId>,
}

/// Canonical form of one query: the byte key plus the variables in
/// first-occurrence order (the memo stores model values by that
/// order, so a hit can be renamed back to the query's variables).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryShape {
    /// Canonical serialization of the constraint DAG with variables
    /// renamed to their first-occurrence index.
    pub key: Vec<u8>,
    /// `(symbol, bits)` per variable, in first-occurrence order.
    pub vars: Vec<(SymId, u32)>,
}

impl TermArena {
    /// The interned constant-true boolean (always id 0).
    pub const TRUE: BoolId = BoolId(0);
    /// The interned constant-false boolean (always id 1).
    pub const FALSE: BoolId = BoolId(1);

    /// An empty arena with the boolean constants pre-interned.
    pub fn new() -> TermArena {
        let mut a = TermArena::default();
        assert_eq!(a.intern_bool(BoolNode::True), TermArena::TRUE);
        assert_eq!(a.intern_bool(BoolNode::False), TermArena::FALSE);
        a
    }

    /// Number of bitvector terms interned so far.
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Number of boolean terms interned so far.
    pub fn num_bools(&self) -> usize {
        self.bools.len()
    }

    /// The node behind `id` (nodes are small and `Copy`).
    pub fn term(&self, id: TermId) -> TermNode {
        self.terms[id.index()]
    }

    /// The boolean node behind `id`.
    pub fn bool_node(&self, id: BoolId) -> BoolNode {
        self.bools[id.index()]
    }

    /// The constant value of `id`, if fully concrete. Thanks to
    /// folding at construction, only [`TermNode::Const`] nodes are.
    pub fn const_of(&self, id: TermId) -> Option<u64> {
        match self.term(id) {
            TermNode::Const(v) => Some(v),
            _ => None,
        }
    }

    fn intern_term(&mut self, node: TermNode) -> TermId {
        if let Some(&id) = self.term_ids.get(&node) {
            return id;
        }
        let id = TermId(self.terms.len() as u32);
        self.terms.push(node);
        self.term_ids.insert(node, id);
        id
    }

    fn intern_bool(&mut self, node: BoolNode) -> BoolId {
        if let Some(&id) = self.bool_ids.get(&node) {
            return id;
        }
        let id = BoolId(self.bools.len() as u32);
        self.bools.push(node);
        self.bool_ids.insert(node, id);
        id
    }

    /// Intern a constant.
    pub fn cst(&mut self, v: u64) -> TermId {
        self.intern_term(TermNode::Const(v))
    }

    /// Intern a variable.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 64.
    pub fn var(&mut self, sym: SymId, bits: u32) -> TermId {
        assert!((1..=64).contains(&bits), "bits must be in 1..=64");
        self.intern_term(TermNode::Var { sym, bits })
    }

    /// Smart binary constructor — the same folding rules as
    /// [`crate::expr::Expr::bin`], so a query built through either
    /// front end lands on the same interned structure.
    pub fn bin(&mut self, op: BinOp, a: TermId, b: TermId) -> TermId {
        if let (Some(x), Some(y)) = (self.const_of(a), self.const_of(b)) {
            return self.cst(eval_bin(op, x, y));
        }
        match (op, self.term(a), self.term(b)) {
            (
                BinOp::Add | BinOp::Or | BinOp::Xor | BinOp::Shl | BinOp::Shr,
                _,
                TermNode::Const(0),
            ) => return a,
            (BinOp::Add | BinOp::Or | BinOp::Xor, TermNode::Const(0), _) => return b,
            (BinOp::Sub, _, TermNode::Const(0)) => return a,
            (BinOp::And, _, TermNode::Const(u64::MAX)) => return a,
            (BinOp::And, TermNode::Const(u64::MAX), _) => return b,
            (BinOp::And, _, TermNode::Const(0)) | (BinOp::And, TermNode::Const(0), _) => {
                return self.cst(0)
            }
            // Masking a variable to at least its own width is a no-op.
            (BinOp::And, TermNode::Var { bits, .. }, TermNode::Const(m))
                if m == mask_of(bits) || (m & mask_of(bits)) == mask_of(bits) =>
            {
                return a
            }
            _ => {}
        }
        if (op == BinOp::Sub || op == BinOp::Xor) && a == b {
            return self.cst(0);
        }
        self.intern_term(TermNode::Bin(op, a, b))
    }

    /// Bitwise not with folding.
    pub fn not(&mut self, a: TermId) -> TermId {
        if let Some(x) = self.const_of(a) {
            return self.cst(!x);
        }
        self.intern_term(TermNode::Not(a))
    }

    /// Comparison constructor with constant folding (mirrors
    /// [`crate::expr::BoolExpr::cmp`]).
    pub fn cmp(&mut self, op: CmpOp, width: u32, a: TermId, b: TermId) -> BoolId {
        if let (Some(x), Some(y)) = (self.const_of(a), self.const_of(b)) {
            let m = mask_of(width);
            let (x, y) = (x & m, y & m);
            let v = match op {
                CmpOp::Eq => x == y,
                CmpOp::Ne => x != y,
                CmpOp::Ult => x < y,
                CmpOp::Slt => sign_extend(x, width) < sign_extend(y, width),
            };
            return if v { TermArena::TRUE } else { TermArena::FALSE };
        }
        self.intern_bool(BoolNode::Cmp { op, width, a, b })
    }

    /// Conjunction with folding.
    pub fn and_b(&mut self, a: BoolId, b: BoolId) -> BoolId {
        if a == TermArena::FALSE || b == TermArena::FALSE {
            return TermArena::FALSE;
        }
        if a == TermArena::TRUE {
            return b;
        }
        if b == TermArena::TRUE {
            return a;
        }
        self.intern_bool(BoolNode::And(a, b))
    }

    /// Disjunction with folding.
    pub fn or_b(&mut self, a: BoolId, b: BoolId) -> BoolId {
        if a == TermArena::TRUE || b == TermArena::TRUE {
            return TermArena::TRUE;
        }
        if a == TermArena::FALSE {
            return b;
        }
        if b == TermArena::FALSE {
            return a;
        }
        self.intern_bool(BoolNode::Or(a, b))
    }

    /// Negation with folding (constants flip, double negation cancels).
    pub fn not_b(&mut self, a: BoolId) -> BoolId {
        if a == TermArena::TRUE {
            return TermArena::FALSE;
        }
        if a == TermArena::FALSE {
            return TermArena::TRUE;
        }
        if let BoolNode::Not(inner) = self.bool_node(a) {
            return inner;
        }
        self.intern_bool(BoolNode::Not(a))
    }

    /// Canonicalize a constraint set for the query memo.
    ///
    /// Performs one DFS over the roots, assigning every reachable node
    /// a local index in completion order and every variable a
    /// normalized index in first-occurrence order, then serializes the
    /// DAG over those indices. Two constraint sets produce the same key
    /// iff they are structurally identical up to variable renaming —
    /// arena ids (which encode per-thread interning history) never
    /// appear in the key.
    pub fn normalize(&self, roots: &[BoolId]) -> QueryShape {
        let mut shape = QueryShape {
            key: Vec::with_capacity(64 + roots.len() * 4),
            vars: Vec::new(),
        };
        let mut tmap: HashMap<TermId, u32> = HashMap::new();
        let mut bmap: HashMap<BoolId, u32> = HashMap::new();
        let mut smap: HashMap<SymId, u32> = HashMap::new();
        let mut root_locals = Vec::with_capacity(roots.len());
        for &r in roots {
            root_locals.push(self.norm_bool(r, &mut shape, &mut tmap, &mut bmap, &mut smap));
        }
        shape.key.push(0xFF);
        for local in root_locals {
            shape.key.extend_from_slice(&local.to_le_bytes());
        }
        shape
    }

    fn norm_term(
        &self,
        id: TermId,
        shape: &mut QueryShape,
        tmap: &mut HashMap<TermId, u32>,
        smap: &mut HashMap<SymId, u32>,
    ) -> u32 {
        if let Some(&local) = tmap.get(&id) {
            return local;
        }
        match self.term(id) {
            TermNode::Const(v) => {
                shape.key.push(0x01);
                shape.key.extend_from_slice(&v.to_le_bytes());
            }
            TermNode::Var { sym, bits } => {
                let next = smap.len() as u32;
                let norm = *smap.entry(sym).or_insert_with(|| {
                    shape.vars.push((sym, bits));
                    next
                });
                shape.key.push(0x02);
                shape.key.extend_from_slice(&norm.to_le_bytes());
                shape.key.extend_from_slice(&bits.to_le_bytes());
            }
            TermNode::Bin(op, a, b) => {
                let la = self.norm_term(a, shape, tmap, smap);
                let lb = self.norm_term(b, shape, tmap, smap);
                shape.key.push(0x03);
                shape.key.push(op as u8);
                shape.key.extend_from_slice(&la.to_le_bytes());
                shape.key.extend_from_slice(&lb.to_le_bytes());
            }
            TermNode::Not(a) => {
                let la = self.norm_term(a, shape, tmap, smap);
                shape.key.push(0x04);
                shape.key.extend_from_slice(&la.to_le_bytes());
            }
        }
        let local = tmap.len() as u32;
        tmap.insert(id, local);
        local
    }

    fn norm_bool(
        &self,
        id: BoolId,
        shape: &mut QueryShape,
        tmap: &mut HashMap<TermId, u32>,
        bmap: &mut HashMap<BoolId, u32>,
        smap: &mut HashMap<SymId, u32>,
    ) -> u32 {
        if let Some(&local) = bmap.get(&id) {
            return local;
        }
        match self.bool_node(id) {
            BoolNode::True => shape.key.push(0x10),
            BoolNode::False => shape.key.push(0x11),
            BoolNode::Cmp { op, width, a, b } => {
                let la = self.norm_term(a, shape, tmap, smap);
                let lb = self.norm_term(b, shape, tmap, smap);
                shape.key.push(0x12);
                shape.key.push(op as u8);
                shape.key.extend_from_slice(&width.to_le_bytes());
                shape.key.extend_from_slice(&la.to_le_bytes());
                shape.key.extend_from_slice(&lb.to_le_bytes());
            }
            BoolNode::And(a, b) | BoolNode::Or(a, b) => {
                let la = self.norm_bool(a, shape, tmap, bmap, smap);
                let lb = self.norm_bool(b, shape, tmap, bmap, smap);
                shape.key.push(match self.bool_node(id) {
                    BoolNode::And(..) => 0x13,
                    _ => 0x14,
                });
                shape.key.extend_from_slice(&la.to_le_bytes());
                shape.key.extend_from_slice(&lb.to_le_bytes());
            }
            BoolNode::Not(a) => {
                let la = self.norm_bool(a, shape, tmap, bmap, smap);
                shape.key.push(0x15);
                shape.key.extend_from_slice(&la.to_le_bytes());
            }
        }
        let local = bmap.len() as u32;
        bmap.insert(id, local);
        local
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbols_intern_once() {
        let a = sym_intern("term_test_sym_a");
        let b = sym_intern("term_test_sym_b");
        assert_ne!(a, b);
        assert_eq!(sym_intern("term_test_sym_a"), a);
        assert_eq!(sym_lookup("term_test_sym_a"), Some(a));
        assert_eq!(sym_lookup("term_test_never_interned"), None);
        assert_eq!(sym_name(a), "term_test_sym_a");
    }

    #[test]
    fn hash_consing_dedups_structurally() {
        let mut ar = TermArena::new();
        let x = ar.var(sym_intern("x"), 32);
        let c = ar.cst(7);
        let s1 = ar.bin(BinOp::Add, x, c);
        let s2 = ar.bin(BinOp::Add, x, c);
        assert_eq!(s1, s2);
        let terms_before = ar.num_terms();
        let _ = ar.bin(BinOp::Add, x, c);
        assert_eq!(ar.num_terms(), terms_before, "no new node for a dup");
    }

    #[test]
    fn folding_matches_expr_front_end() {
        let mut ar = TermArena::new();
        let x = ar.var(sym_intern("x"), 32);
        let zero = ar.cst(0);
        assert_eq!(ar.bin(BinOp::Add, x, zero), x);
        assert_eq!(ar.bin(BinOp::Xor, x, x), zero);
        assert_eq!(ar.bin(BinOp::Sub, x, x), zero);
        let mask = ar.cst(0xFFFF_FFFF);
        assert_eq!(ar.bin(BinOp::And, x, mask), x, "mask to own width folds");
        let a = ar.cst(2);
        let b = ar.cst(3);
        let sum = ar.bin(BinOp::Add, a, b);
        assert_eq!(ar.const_of(sum), Some(5));
        let notc = ar.not(a);
        assert_eq!(ar.const_of(notc), Some(!2u64));
    }

    #[test]
    fn bool_folding_matches_expr_front_end() {
        let mut ar = TermArena::new();
        let one = ar.cst(1);
        let two = ar.cst(2);
        assert_eq!(ar.cmp(CmpOp::Eq, 64, one, one), TermArena::TRUE);
        let ff = ar.cst(0xFF);
        assert_eq!(ar.cmp(CmpOp::Ult, 8, ff, one), TermArena::FALSE);
        // Signed at 8 bits: 0xFF = -1 < 1.
        assert_eq!(ar.cmp(CmpOp::Slt, 8, ff, one), TermArena::TRUE);
        let x = ar.var(sym_intern("x"), 32);
        let c = ar.cmp(CmpOp::Eq, 32, x, two);
        assert_eq!(ar.and_b(TermArena::TRUE, c), c);
        assert_eq!(ar.and_b(TermArena::FALSE, c), TermArena::FALSE);
        assert_eq!(ar.or_b(c, TermArena::TRUE), TermArena::TRUE);
        let n = ar.not_b(c);
        assert_eq!(ar.not_b(n), c, "double negation cancels");
    }

    #[test]
    fn normalize_is_alpha_invariant() {
        let mut ar = TermArena::new();
        let build = |ar: &mut TermArena, name: &str| {
            let v = ar.var(sym_intern(name), 32);
            let c = ar.cst(0xC000_0005);
            ar.cmp(CmpOp::Eq, 32, v, c)
        };
        let p = build(&mut ar, "alpha_test_p");
        let q = build(&mut ar, "alpha_test_q");
        let sp = ar.normalize(&[p]);
        let sq = ar.normalize(&[q]);
        assert_eq!(sp.key, sq.key, "same structure, different names");
        assert_ne!(sp.vars, sq.vars, "var mapping still distinguishes them");

        // A different constant must change the key.
        let v = ar.var(sym_intern("alpha_test_p"), 32);
        let c = ar.cst(0xC000_0094);
        let r = ar.cmp(CmpOp::Eq, 32, v, c);
        assert_ne!(ar.normalize(&[r]).key, sp.key);
    }

    #[test]
    fn normalize_orders_vars_by_first_occurrence() {
        let mut ar = TermArena::new();
        let a = sym_intern("order_test_a");
        let b = sym_intern("order_test_b");
        let va = ar.var(a, 16);
        let vb = ar.var(b, 16);
        let c1 = ar.cmp(CmpOp::Ult, 16, vb, va);
        let shape = ar.normalize(&[c1]);
        assert_eq!(shape.vars, vec![(b, 16), (a, 16)]);
        // Root order is part of the key (the asymmetric constant pin
        // breaks the alpha-equivalence a pure operand swap would keep).
        let five = ar.cst(5);
        let c2 = ar.cmp(CmpOp::Eq, 16, va, five);
        assert_ne!(ar.normalize(&[c1, c2]).key, ar.normalize(&[c2, c1]).key);
    }
}
