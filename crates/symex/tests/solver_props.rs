//! Property tests for the bit-blasting solver: every SAT model must
//! actually satisfy the constraints, and satisfiable-by-construction
//! formulas must come back SAT.

use cr_symex::{check, BinOp, BoolExpr, CmpOp, Expr, SatResult};
use proptest::prelude::*;
use std::rc::Rc;

#[derive(Debug, Clone)]
enum ExprAst {
    Var(u8),
    Const(u64),
    Bin(BinOp, Box<ExprAst>, Box<ExprAst>),
    Not(Box<ExprAst>),
}

impl ExprAst {
    fn build(&self) -> Rc<Expr> {
        match self {
            ExprAst::Var(i) => Expr::var(&format!("v{i}"), 32),
            ExprAst::Const(c) => Expr::c(*c & 0xFFFF_FFFF),
            ExprAst::Bin(op, a, b) => Expr::bin(*op, a.build(), b.build()),
            ExprAst::Not(a) => Expr::not(a.build()),
        }
    }

    fn eval(&self, vals: &[u64; 4]) -> u64 {
        match self {
            ExprAst::Var(i) => vals[*i as usize % 4] & 0xFFFF_FFFF,
            ExprAst::Const(c) => *c & 0xFFFF_FFFF,
            ExprAst::Bin(op, a, b) => {
                let (x, y) = (a.eval(vals), b.eval(vals));
                match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::And => x & y,
                    BinOp::Or => x | y,
                    BinOp::Xor => x ^ y,
                    BinOp::Shl => {
                        if y >= 64 {
                            0
                        } else {
                            x << y
                        }
                    }
                    BinOp::Shr => {
                        if y >= 64 {
                            0
                        } else {
                            x >> y
                        }
                    }
                }
            }
            ExprAst::Not(a) => !a.eval(vals),
        }
    }
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
    ]
}

fn arb_expr() -> impl Strategy<Value = ExprAst> {
    let leaf = prop_oneof![
        (0u8..4).prop_map(ExprAst::Var),
        any::<u32>().prop_map(|c| ExprAst::Const(c as u64)),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (arb_binop(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| ExprAst::Bin(
                op,
                Box::new(a),
                Box::new(b)
            )),
            inner.prop_map(|a| ExprAst::Not(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pin each variable to a concrete value and assert the expression
    /// equals its concrete evaluation: must be SAT. Then assert it equals
    /// eval+1: must be UNSAT.
    #[test]
    fn pinned_evaluation_is_decided_correctly(
        ast in arb_expr(),
        vals in proptest::array::uniform4(any::<u32>()),
    ) {
        let vals64 = [vals[0] as u64, vals[1] as u64, vals[2] as u64, vals[3] as u64];
        let expected = ast.eval(&vals64) & 0xFFFF_FFFF;
        let e = ast.build();
        let mut pins: Vec<BoolExpr> = (0..4)
            .map(|i| {
                BoolExpr::cmp(CmpOp::Eq, 32, Expr::var(&format!("v{i}"), 32), Expr::c(vals64[i]))
            })
            .collect();
        pins.push(BoolExpr::cmp(CmpOp::Eq, 32, e.clone(), Expr::c(expected)));
        prop_assert!(check(&pins).is_sat(), "pinned evaluation must be SAT");

        let wrong = expected.wrapping_add(1) & 0xFFFF_FFFF;
        let last = pins.len() - 1;
        pins[last] = BoolExpr::cmp(CmpOp::Eq, 32, e, Expr::c(wrong));
        prop_assert_eq!(check(&pins), SatResult::Unsat, "off-by-one must be UNSAT");
    }

    /// Any model returned for an unpinned constraint must satisfy it.
    #[test]
    fn models_satisfy_constraints(ast in arb_expr(), target in any::<u32>()) {
        let e = ast.build();
        let c = BoolExpr::cmp(CmpOp::Eq, 32, e, Expr::c(target as u64));
        match check(std::slice::from_ref(&c)) {
            SatResult::Sat(m) => {
                prop_assert!(c.eval(&|n| m.get(n)), "model must satisfy the constraint");
            }
            SatResult::Unsat => {
                // Verify unsatisfiability on a handful of random points.
                for seed in 0..8u64 {
                    let vals = [
                        seed.wrapping_mul(0x9E37_79B9),
                        seed.wrapping_mul(0x85EB_CA6B),
                        seed ^ 0xDEAD_BEEF,
                        !seed,
                    ];
                    prop_assert_ne!(ast.eval(&vals) & 0xFFFF_FFFF, target as u64);
                }
            }
            // Random deep adder chains can legitimately exhaust the DPLL
            // decision budget; "unknown" is an acceptable answer there
            // (the pinned-evaluation test above guarantees precision on
            // fully-determined formulas).
            SatResult::Unknown(_) => {}
        }
    }

    /// Unsigned comparison is a total order consistent with equality.
    #[test]
    fn comparison_trichotomy(a in any::<u32>(), b in any::<u32>()) {
        let x = Expr::var("x", 32);
        let y = Expr::var("y", 32);
        let pins = [
            BoolExpr::cmp(CmpOp::Eq, 32, x.clone(), Expr::c(a as u64)),
            BoolExpr::cmp(CmpOp::Eq, 32, y.clone(), Expr::c(b as u64)),
        ];
        let lt = BoolExpr::cmp(CmpOp::Ult, 32, x.clone(), y.clone());
        let gt = BoolExpr::cmp(CmpOp::Ult, 32, y, x);
        let mut with_lt = pins.to_vec();
        with_lt.push(lt);
        let mut with_gt = pins.to_vec();
        with_gt.push(gt);
        prop_assert_eq!(check(&with_lt).is_sat(), a < b);
        prop_assert_eq!(check(&with_gt).is_sat(), b < a);
    }
}
