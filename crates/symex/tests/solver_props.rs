//! Property tests for the bit-blasting solver: every SAT model must
//! actually satisfy the constraints, satisfiable-by-construction
//! formulas must come back SAT, and the interned pipeline must agree
//! with the retained reference pipeline (old blaster + scan-all DPLL)
//! on both raw CNF and full constraint-set queries.

use cr_symex::{
    check, check_reference, solve, solve_reference, BinOp, BoolExpr, CmpOp, Cnf, Expr, SatResult,
    SolveOutcome,
};
use proptest::prelude::*;
use std::rc::Rc;

#[derive(Debug, Clone)]
enum ExprAst {
    Var(u8),
    Const(u64),
    Bin(BinOp, Box<ExprAst>, Box<ExprAst>),
    Not(Box<ExprAst>),
}

impl ExprAst {
    fn build(&self) -> Rc<Expr> {
        match self {
            ExprAst::Var(i) => Expr::var(&format!("v{i}"), 32),
            ExprAst::Const(c) => Expr::c(*c & 0xFFFF_FFFF),
            ExprAst::Bin(op, a, b) => Expr::bin(*op, a.build(), b.build()),
            ExprAst::Not(a) => Expr::not(a.build()),
        }
    }

    fn eval(&self, vals: &[u64; 4]) -> u64 {
        match self {
            ExprAst::Var(i) => vals[*i as usize % 4] & 0xFFFF_FFFF,
            ExprAst::Const(c) => *c & 0xFFFF_FFFF,
            ExprAst::Bin(op, a, b) => {
                let (x, y) = (a.eval(vals), b.eval(vals));
                match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::And => x & y,
                    BinOp::Or => x | y,
                    BinOp::Xor => x ^ y,
                    BinOp::Shl => {
                        if y >= 64 {
                            0
                        } else {
                            x << y
                        }
                    }
                    BinOp::Shr => {
                        if y >= 64 {
                            0
                        } else {
                            x >> y
                        }
                    }
                }
            }
            ExprAst::Not(a) => !a.eval(vals),
        }
    }
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
    ]
}

fn arb_expr() -> impl Strategy<Value = ExprAst> {
    let leaf = prop_oneof![
        (0u8..4).prop_map(ExprAst::Var),
        any::<u32>().prop_map(|c| ExprAst::Const(c as u64)),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (arb_binop(), inner.clone(), inner.clone()).prop_map(|(op, a, b)| ExprAst::Bin(
                op,
                Box::new(a),
                Box::new(b)
            )),
            inner.prop_map(|a| ExprAst::Not(Box::new(a))),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Pin each variable to a concrete value and assert the expression
    /// equals its concrete evaluation: must be SAT. Then assert it equals
    /// eval+1: must be UNSAT.
    #[test]
    fn pinned_evaluation_is_decided_correctly(
        ast in arb_expr(),
        vals in proptest::array::uniform4(any::<u32>()),
    ) {
        let vals64 = [vals[0] as u64, vals[1] as u64, vals[2] as u64, vals[3] as u64];
        let expected = ast.eval(&vals64) & 0xFFFF_FFFF;
        let e = ast.build();
        let mut pins: Vec<BoolExpr> = (0..4)
            .map(|i| {
                BoolExpr::cmp(CmpOp::Eq, 32, Expr::var(&format!("v{i}"), 32), Expr::c(vals64[i]))
            })
            .collect();
        pins.push(BoolExpr::cmp(CmpOp::Eq, 32, e.clone(), Expr::c(expected)));
        prop_assert!(check(&pins).is_sat(), "pinned evaluation must be SAT");

        let wrong = expected.wrapping_add(1) & 0xFFFF_FFFF;
        let last = pins.len() - 1;
        pins[last] = BoolExpr::cmp(CmpOp::Eq, 32, e, Expr::c(wrong));
        prop_assert_eq!(check(&pins), SatResult::Unsat, "off-by-one must be UNSAT");
    }

    /// Any model returned for an unpinned constraint must satisfy it.
    #[test]
    fn models_satisfy_constraints(ast in arb_expr(), target in any::<u32>()) {
        let e = ast.build();
        let c = BoolExpr::cmp(CmpOp::Eq, 32, e, Expr::c(target as u64));
        match check(std::slice::from_ref(&c)) {
            SatResult::Sat(m) => {
                prop_assert!(c.eval(&|n| m.get(n)), "model must satisfy the constraint");
            }
            SatResult::Unsat => {
                // Verify unsatisfiability on a handful of random points.
                for seed in 0..8u64 {
                    let vals = [
                        seed.wrapping_mul(0x9E37_79B9),
                        seed.wrapping_mul(0x85EB_CA6B),
                        seed ^ 0xDEAD_BEEF,
                        !seed,
                    ];
                    prop_assert_ne!(ast.eval(&vals) & 0xFFFF_FFFF, target as u64);
                }
            }
            // Random deep adder chains can legitimately exhaust the DPLL
            // decision budget; "unknown" is an acceptable answer there
            // (the pinned-evaluation test above guarantees precision on
            // fully-determined formulas).
            SatResult::Unknown(_) => {}
        }
    }

    /// The watched-literal solver and the retained scan-all reference
    /// solver must agree on SAT/UNSAT for random CNF instances. Models
    /// may legitimately differ, so each is validated against the
    /// formula rather than compared to the other.
    #[test]
    fn watched_and_reference_dpll_agree_on_random_cnf(
        num_vars in 1i32..=8,
        raw in proptest::collection::vec(
            proptest::collection::vec((1i32..=8, any::<bool>()), 1..5),
            0..24,
        ),
    ) {
        let mut cnf = Cnf::new();
        cnf.num_vars = num_vars as usize;
        let clauses: Vec<Vec<i32>> = raw
            .iter()
            .map(|cl| {
                cl.iter()
                    .map(|&(v, neg)| {
                        let v = (v - 1) % num_vars + 1;
                        if neg { -v } else { v }
                    })
                    .collect()
            })
            .collect();
        for cl in &clauses {
            cnf.clause(cl);
        }
        let new = solve(&cnf);
        let old = solve_reference(&cnf);
        // Instances this small never exhaust either budget.
        prop_assert_eq!(
            std::mem::discriminant(&new),
            std::mem::discriminant(&old),
            "watched={:?} reference={:?}",
            new,
            old
        );
        for outcome in [&new, &old] {
            if let SolveOutcome::Sat(model) = outcome {
                for cl in &clauses {
                    prop_assert!(
                        cl.iter().any(|&l| {
                            let val = model[(l.unsigned_abs() - 1) as usize];
                            (l > 0) == val
                        }),
                        "model fails clause {:?}",
                        cl
                    );
                }
            }
        }
    }

    /// Full-pipeline differential: `check` (interned arena + watched
    /// solver + memo) and `check_reference` (old Rc-pointer blaster +
    /// scan-all DPLL) must return the same verdict for pinned queries,
    /// which are always in-budget for both solvers.
    #[test]
    fn check_agrees_with_reference_on_pinned_queries(
        ast in arb_expr(),
        vals in proptest::array::uniform4(any::<u32>()),
        off in 0u64..2,
    ) {
        let vals64 = [vals[0] as u64, vals[1] as u64, vals[2] as u64, vals[3] as u64];
        let target = (ast.eval(&vals64).wrapping_add(off)) & 0xFFFF_FFFF;
        let mut cs: Vec<BoolExpr> = (0..4)
            .map(|i| {
                BoolExpr::cmp(CmpOp::Eq, 32, Expr::var(&format!("v{i}"), 32), Expr::c(vals64[i]))
            })
            .collect();
        cs.push(BoolExpr::cmp(CmpOp::Eq, 32, ast.build(), Expr::c(target)));
        let new = check(&cs);
        let old = check_reference(&cs);
        prop_assert_eq!(
            std::mem::discriminant(&new),
            std::mem::discriminant(&old),
            "new={:?} old={:?}",
            new,
            old
        );
        // off == 0 pins the expression to its concrete value: SAT.
        prop_assert_eq!(new.is_sat(), off == 0);
        if let (SatResult::Sat(mn), SatResult::Sat(mo)) = (&new, &old) {
            for c in &cs {
                prop_assert!(c.eval(&|n| mn.get(n)));
                prop_assert!(c.eval(&|n| mo.get(n)));
            }
        }
    }

    /// Unsigned comparison is a total order consistent with equality.
    #[test]
    fn comparison_trichotomy(a in any::<u32>(), b in any::<u32>()) {
        let x = Expr::var("x", 32);
        let y = Expr::var("y", 32);
        let pins = [
            BoolExpr::cmp(CmpOp::Eq, 32, x.clone(), Expr::c(a as u64)),
            BoolExpr::cmp(CmpOp::Eq, 32, y.clone(), Expr::c(b as u64)),
        ];
        let lt = BoolExpr::cmp(CmpOp::Ult, 32, x.clone(), y.clone());
        let gt = BoolExpr::cmp(CmpOp::Ult, 32, y, x);
        let mut with_lt = pins.to_vec();
        with_lt.push(lt);
        let mut with_gt = pins.to_vec();
        with_gt.push(gt);
        prop_assert_eq!(check(&with_lt).is_sat(), a < b);
        prop_assert_eq!(check(&with_gt).is_sat(), b < a);
    }
}

// Fuzz the debug-path literal validation in `Cnf::clause`: any clause
// containing a zero or out-of-range literal must panic under
// `debug_assertions` (release builds skip the check for speed).
#[cfg(debug_assertions)]
proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn clause_literal_fuzz_panics_on_invalid(
        num_vars in 1i32..=6,
        mut lits in proptest::collection::vec(-6i32..=6, 1..6),
        bad in prop_oneof![Just(0i32), 7i32..=20, -20i32..=-7],
        at in any::<usize>(),
    ) {
        let mut cnf = Cnf::new();
        cnf.num_vars = num_vars as usize;
        // Clamp the fuzzed clause to valid literals, then plant exactly
        // one invalid literal at a random position.
        for l in &mut lits {
            if *l == 0 || l.unsigned_abs() as i32 > num_vars {
                *l = 1;
            }
        }
        let at = at % lits.len();
        lits[at] = bad;
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cnf.clause(&lits);
        }));
        std::panic::set_hook(prev);
        prop_assert!(r.is_err(), "invalid literal {} must panic in debug", bad);
    }
}
