//! # cr-core — discovery of crash-resistant primitives
//!
//! The paper's primary contribution: semi-automated location of *memory
//! oracles* (crash-resistant code primitives) in binary programs, via
//! three strategies:
//!
//! * [`syscall_finder`] — Linux syscalls whose pointer arguments are
//!   attacker-controllable and answered with `-EFAULT` (§IV-A, Table I);
//! * [`api_fuzzer`] — Windows API functions that handle invalid pointer
//!   arguments gracefully, filtered down to JS-reachable call sites with
//!   controllable arguments (§IV-B, the §V-B funnel);
//! * [`seh`] — SEH exception handlers whose filters can accept access
//!   violations, found by parsing `.pdata` and symbolically executing
//!   filter functions (§IV-C, Tables II and III).
//!
//! Supporting machinery: [`provenance`] (pointer-origin tracking),
//! [`static_cfg`] (recursive-descent control-flow recovery),
//! [`report`] (table rendering for the experiment harness) and
//! [`stable_hash`] (content addressing for the campaign cache).

pub mod api_fuzzer;
pub mod provenance;
pub mod report;
pub mod seh;
pub mod stable_hash;
pub mod static_cfg;
pub mod syscall_finder;

pub use provenance::Provenance;
pub use seh::{analyze_module, analyze_module_cached, NoCache, VerdictCache};
pub use stable_hash::{fnv1a64, sha256_hex, Sha256};
pub use syscall_finder::{
    discover_server, observe_server, Classification, ServerReport, SiteProvenance, SyscallFinding,
};
