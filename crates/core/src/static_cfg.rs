//! Static control-flow recovery over binary code.
//!
//! Recursive-descent disassembly from a set of entry points, producing
//! basic blocks, intra-procedural edges and a call graph. The discovery
//! pipeline uses it in two places:
//!
//! * enumerating **syscall sites** statically (a cheap complement to the
//!   dynamic monitor: every candidate the monitor reports must be one of
//!   these sites);
//! * sizing and sanity-checking **guarded regions** extracted from
//!   `.pdata` (a scope whose range contains no decodable code is a
//!   parser red flag).

use cr_isa::{decode, Inst};
use cr_symex::CodeSource;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A basic block of decoded instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    /// VA of the first instruction.
    pub start: u64,
    /// VA one past the last instruction.
    pub end: u64,
    /// Decoded instructions with their VAs.
    pub insts: Vec<(u64, Inst)>,
    /// Intra-procedural successors (VAs of block starts).
    pub successors: Vec<u64>,
}

/// A recovered function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionCfg {
    /// Entry VA.
    pub entry: u64,
    /// Blocks keyed by start VA.
    pub blocks: BTreeMap<u64, BasicBlock>,
    /// Direct call targets.
    pub calls: BTreeSet<u64>,
    /// VAs of `syscall` instructions.
    pub syscall_sites: Vec<u64>,
    /// Whether an indirect jump/call bounded the exploration.
    pub has_indirect_flow: bool,
}

impl FunctionCfg {
    /// Total decoded instructions.
    pub fn inst_count(&self) -> usize {
        self.blocks.values().map(|b| b.insts.len()).sum()
    }
}

/// Whole-image static analysis result.
#[derive(Debug, Clone, Default)]
pub struct StaticCfg {
    /// Functions keyed by entry VA.
    pub functions: BTreeMap<u64, FunctionCfg>,
}

impl StaticCfg {
    /// All static syscall sites across all functions.
    pub fn syscall_sites(&self) -> Vec<u64> {
        let mut v: Vec<u64> = self
            .functions
            .values()
            .flat_map(|f| f.syscall_sites.iter().copied())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Total instruction count.
    pub fn inst_count(&self) -> usize {
        self.functions.values().map(|f| f.inst_count()).sum()
    }
}

/// Per-function step bound (defends against decoding into data).
const MAX_INSTS_PER_FN: usize = 100_000;

/// Recover control flow starting from `entries`, following direct calls
/// transitively.
pub fn analyze(code: &dyn CodeSource, entries: &[u64]) -> StaticCfg {
    let mut cfg = StaticCfg::default();
    let mut fn_queue: VecDeque<u64> = entries.iter().copied().collect();
    let mut seen_fns: BTreeSet<u64> = BTreeSet::new();
    while let Some(entry) = fn_queue.pop_front() {
        if !seen_fns.insert(entry) {
            continue;
        }
        let f = analyze_function(code, entry);
        for &callee in &f.calls {
            fn_queue.push_back(callee);
        }
        cfg.functions.insert(entry, f);
    }
    cfg
}

/// Recover one function's CFG.
pub fn analyze_function(code: &dyn CodeSource, entry: u64) -> FunctionCfg {
    let mut f = FunctionCfg {
        entry,
        blocks: BTreeMap::new(),
        calls: BTreeSet::new(),
        syscall_sites: Vec::new(),
        has_indirect_flow: false,
    };
    let mut block_queue: VecDeque<u64> = VecDeque::from([entry]);
    let mut visited_starts: BTreeSet<u64> = BTreeSet::new();
    let mut decoded = 0usize;

    while let Some(start) = block_queue.pop_front() {
        if !visited_starts.insert(start) {
            continue;
        }
        let mut insts = Vec::new();
        let mut successors = Vec::new();
        let mut va = start;
        loop {
            if decoded >= MAX_INSTS_PER_FN {
                break;
            }
            let mut bytes = [0u8; 15];
            let n = code.read_code(va, &mut bytes);
            if n == 0 {
                break;
            }
            let Ok(d) = decode(&bytes[..n]) else { break };
            decoded += 1;
            let next = va + d.len as u64;
            insts.push((va, d.inst));
            match d.inst {
                Inst::Ret | Inst::Ud2 | Inst::Hlt => break,
                Inst::JmpRel(rel) => {
                    let target = next.wrapping_add(rel as i64 as u64);
                    successors.push(target);
                    block_queue.push_back(target);
                    break;
                }
                Inst::Jcc { rel, .. } => {
                    let taken = next.wrapping_add(rel as i64 as u64);
                    successors.push(taken);
                    successors.push(next);
                    block_queue.push_back(taken);
                    block_queue.push_back(next);
                    break;
                }
                Inst::JmpRm(_) => {
                    f.has_indirect_flow = true;
                    break;
                }
                Inst::CallRel(rel) => {
                    let callee = next.wrapping_add(rel as i64 as u64);
                    f.calls.insert(callee);
                    va = next;
                }
                Inst::CallRm(_) => {
                    f.has_indirect_flow = true;
                    va = next;
                }
                Inst::Syscall => {
                    f.syscall_sites.push(va);
                    va = next;
                }
                _ => va = next,
            }
            // Block splitting: stop if the next VA is a known block start.
            if visited_starts.contains(&va) {
                successors.push(va);
                break;
            }
        }
        let end = insts
            .last()
            .map(|&(v, i)| v + cr_isa::encode(&i).map(|b| b.len() as u64).unwrap_or(1));
        f.blocks.insert(
            start,
            BasicBlock {
                start,
                end: end.unwrap_or(start),
                insts,
                successors,
            },
        );
    }
    f.syscall_sites.sort_unstable();
    f.syscall_sites.dedup();
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_isa::{Asm, Cond, Mem as M, Reg};

    fn src(build: impl FnOnce(&mut Asm)) -> (u64, Vec<u8>) {
        let mut a = Asm::new(0x1000);
        build(&mut a);
        (0x1000, a.assemble().unwrap().code)
    }

    #[test]
    fn straight_line_function() {
        let (base, code) = src(|a| {
            a.mov_ri(Reg::Rax, 1);
            a.add_ri(Reg::Rax, 2);
            a.ret();
        });
        let f = analyze_function(&(base, code.as_slice()), base);
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.inst_count(), 3);
        assert!(f.calls.is_empty());
    }

    #[test]
    fn branch_splits_blocks() {
        let (base, code) = src(|a| {
            a.cmp_ri(Reg::Rdi, 0);
            let els = a.fresh();
            a.jcc(Cond::E, els);
            a.mov_ri(Reg::Rax, 1);
            a.ret();
            a.bind(els);
            a.mov_ri(Reg::Rax, 2);
            a.ret();
        });
        let f = analyze_function(&(base, code.as_slice()), base);
        assert_eq!(f.blocks.len(), 3, "entry + both arms");
        let entry = &f.blocks[&base];
        assert_eq!(entry.successors.len(), 2);
    }

    #[test]
    fn call_graph_and_syscall_sites() {
        let (base, code) = src(|a| {
            let helper = a.fresh();
            a.call_label(helper);
            a.mov_ri(Reg::Rax, 60);
            a.syscall();
            a.ret();
            a.bind(helper);
            a.name("helper", helper);
            a.mov_ri(Reg::Rax, 1);
            a.syscall();
            a.ret();
        });
        let cfg = analyze(&(base, code.as_slice()), &[base]);
        assert_eq!(cfg.functions.len(), 2, "entry + helper discovered via call");
        assert_eq!(cfg.syscall_sites().len(), 2);
    }

    #[test]
    fn loop_terminates() {
        let (base, code) = src(|a| {
            let top = a.here();
            a.sub_ri(Reg::Rdi, 1);
            a.cmp_ri(Reg::Rdi, 0);
            a.jcc(Cond::Ne, top);
            a.ret();
        });
        let f = analyze_function(&(base, code.as_slice()), base);
        assert!(f.blocks.len() >= 2);
        // The back edge points at an existing block.
        assert!(f.blocks.values().any(|b| b.successors.contains(&base)));
    }

    #[test]
    fn indirect_flow_is_flagged() {
        let (base, code) = src(|a| {
            a.load(Reg::Rax, M::base(Reg::Rdi));
            a.jmp_reg(Reg::Rax);
        });
        let f = analyze_function(&(base, code.as_slice()), base);
        assert!(f.has_indirect_flow);
    }

    #[test]
    fn static_sites_cover_dynamic_candidates_on_nginx() {
        // Every syscall the dynamic monitor can ever observe must be a
        // statically enumerable site.
        let t = cr_targets::all_servers()
            .into_iter()
            .find(|s| s.name == "nginx")
            .unwrap();
        let seg = &t.image.segments[0];
        let src = (seg.vaddr, seg.data.as_slice());
        let cfg = analyze(&src, &[t.image.entry]);
        let sites = cfg.syscall_sites();
        assert!(
            sites.len() >= 15,
            "nginx-sim has many syscall sites, got {}",
            sites.len()
        );
        assert!(cfg.inst_count() > 100);
    }
}
