//! Pointer provenance tracking.
//!
//! The monitor needs to answer: *which memory cell did the pointer in
//! this syscall argument come from?* If the cell lies in attacker-
//! reachable (writable) memory, the attacker's arbitrary-write primitive
//! can corrupt it and the syscall becomes a probing candidate; the cell
//! address is also exactly what the invalidation phase overwrites.
//!
//! Provenance is a shallow per-register tag `Option<source cell>`:
//!
//! * a 64-bit load from a tracked region sets the tag to the load address;
//! * register moves copy it; pointer arithmetic (`add`/`sub`/`lea` with a
//!   tagged base) preserves it;
//! * immediates, zeroing idioms and byte loads clear it.
//!
//! Tags are per-thread; the owning monitor swaps banks on scheduler
//! switches.

use cr_isa::{AluOp, Inst, Reg, Rm, Width};
use cr_vm::{Cpu, Hook, Memory};

/// Per-thread provenance bank.
pub type ProvBank = [Option<u64>; 16];

/// Tracks, per register, the attacker-reachable memory cell its current
/// value was loaded from.
#[derive(Debug, Clone)]
pub struct Provenance {
    regions: Vec<(u64, u64)>,
    regs: ProvBank,
}

impl Provenance {
    /// Track loads from the given `(base, len)` regions.
    pub fn new(regions: Vec<(u64, u64)>) -> Provenance {
        Provenance {
            regions,
            regs: [None; 16],
        }
    }

    /// Whether `addr` is inside a tracked region.
    pub fn in_region(&self, addr: u64) -> bool {
        self.regions.iter().any(|&(b, l)| addr >= b && addr < b + l)
    }

    /// The source cell of `reg`'s current value, if tracked.
    pub fn source(&self, reg: Reg) -> Option<u64> {
        self.regs[reg.encoding() as usize]
    }

    /// Swap the per-thread bank.
    pub fn swap_bank(&mut self, bank: &mut ProvBank) {
        std::mem::swap(&mut self.regs, bank);
    }

    fn set(&mut self, r: Reg, v: Option<u64>) {
        self.regs[r.encoding() as usize] = v;
    }

    fn get_rm(&self, rm: Rm) -> Option<u64> {
        match rm {
            Rm::Reg(r) => self.source(r),
            Rm::Mem(_) => None,
        }
    }
}

impl Hook for Provenance {
    fn on_inst(&mut self, cpu: &Cpu, _mem: &mut Memory, inst: &Inst, va: u64, len: usize) {
        let next = va.wrapping_add(len as u64);
        match *inst {
            Inst::MovRRm { dst, src, width } => match src {
                Rm::Mem(m) if width == Width::B8 => {
                    let ea = cpu.effective_addr(&m, next);
                    self.set(dst, self.in_region(ea).then_some(ea));
                }
                Rm::Reg(s) if width == Width::B8 => self.set(dst, self.source(s)),
                _ => self.set(dst, None),
            },
            Inst::MovRI { dst, .. } => self.set(dst, None),
            Inst::MovRmI {
                dst: Rm::Reg(r), ..
            } => self.set(r, None),
            Inst::Movzx { dst, .. } => self.set(dst, None),
            Inst::Lea { dst, mem } => {
                // Address arithmetic: inherit the base pointer's source.
                let src = mem.base.and_then(|b| self.source(b));
                self.set(dst, src);
            }
            Inst::AluRRm {
                op,
                dst,
                src,
                width,
            } => {
                if !op.writes_dst() {
                    return;
                }
                if matches!(op, AluOp::Xor | AluOp::Sub) && src == Rm::Reg(dst) {
                    self.set(dst, None);
                } else if matches!(op, AluOp::Add | AluOp::Sub) && width == Width::B8 {
                    // ptr ± offset keeps pointing into the same object.
                    let keep = self.source(dst).or_else(|| self.get_rm(src));
                    self.set(dst, keep);
                } else {
                    self.set(dst, None);
                }
            }
            Inst::AluRmR {
                op,
                dst: Rm::Reg(r),
                src,
                width,
            } => {
                if !op.writes_dst() {
                    return;
                }
                if matches!(op, AluOp::Xor | AluOp::Sub) && r == src {
                    self.set(r, None);
                } else if matches!(op, AluOp::Add | AluOp::Sub) && width == Width::B8 {
                    let keep = self.source(r).or_else(|| self.source(src));
                    self.set(r, keep);
                } else {
                    self.set(r, None);
                }
            }
            Inst::AluRmI {
                op,
                dst: Rm::Reg(r),
                width,
                ..
            } if op.writes_dst()
                && !(matches!(op, AluOp::Add | AluOp::Sub) && width == Width::B8) =>
            {
                self.set(r, None);
            }
            Inst::ShiftRI { dst, .. } => self.set(dst, None),
            Inst::Neg(r) | Inst::Not(r) => self.set(r, None),
            Inst::Imul { dst, .. } => self.set(dst, None),
            Inst::Cmov { dst, src, .. } => {
                // Conservative: either value may land in dst.
                let keep = self.source(dst).or_else(|| self.get_rm(src));
                self.set(dst, keep);
            }
            Inst::Xchg(a, b) => {
                let (sa, sb) = (self.source(a), self.source(b));
                self.set(a, sb);
                self.set(b, sa);
            }
            Inst::Pop(r) => self.set(r, None),
            Inst::Setcc { dst, .. } => self.set(dst, None),
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_isa::{Asm, Mem as M};
    use cr_vm::{Exit, NullHook, Prot};
    use Reg::*;

    fn run(build: impl FnOnce(&mut Asm), regions: Vec<(u64, u64)>) -> Provenance {
        let mut a = Asm::new(0x1000);
        build(&mut a);
        let asm = a.assemble().unwrap();
        let mut mem = Memory::new();
        mem.map(0x1000, 0x1000, Prot::RX);
        mem.poke(0x1000, &asm.code).unwrap();
        mem.map(0x10_0000, 0x1000, Prot::RW);
        let mut cpu = Cpu::new();
        cpu.rip = 0x1000;
        let mut prov = Provenance::new(regions);
        loop {
            match cpu.step(&mut mem, &mut prov) {
                Exit::Normal => {}
                Exit::Halt => break,
                e => panic!("{e:?}"),
            }
        }
        let _ = NullHook;
        prov
    }

    #[test]
    fn load_from_region_sets_source() {
        let p = run(
            |a| {
                a.mov_ri(Rdi, 0x10_0008);
                a.load(Rsi, M::base(Rdi));
                a.hlt();
            },
            vec![(0x10_0000, 0x1000)],
        );
        assert_eq!(p.source(Rsi), Some(0x10_0008));
        assert_eq!(p.source(Rdi), None, "immediate has no source");
    }

    #[test]
    fn load_outside_region_clears() {
        let p = run(
            |a| {
                a.mov_ri(Rdi, 0x10_0000);
                a.load(Rsi, M::base(Rdi));
                a.hlt();
            },
            vec![(0x20_0000, 0x1000)],
        );
        assert_eq!(p.source(Rsi), None);
    }

    #[test]
    fn pointer_arithmetic_preserves_source() {
        let p = run(
            |a| {
                a.mov_ri(Rdi, 0x10_0010);
                a.load(Rsi, M::base(Rdi));
                a.add_ri(Rsi, 0x40);
                a.mov_rr(Rdx, Rsi);
                a.hlt();
            },
            vec![(0x10_0000, 0x1000)],
        );
        assert_eq!(p.source(Rsi), Some(0x10_0010));
        assert_eq!(p.source(Rdx), Some(0x10_0010), "mov copies provenance");
    }

    #[test]
    fn overwrite_clears_source() {
        let p = run(
            |a| {
                a.mov_ri(Rdi, 0x10_0000);
                a.load(Rsi, M::base(Rdi));
                a.zero(Rsi);
                a.hlt();
            },
            vec![(0x10_0000, 0x1000)],
        );
        assert_eq!(p.source(Rsi), None, "xor zeroing clears provenance");
    }

    #[test]
    fn bank_swap_isolates_threads() {
        let mut p = Provenance::new(vec![(0, 0x1000)]);
        p.regs[3] = Some(0x42);
        let mut bank: ProvBank = [None; 16];
        p.swap_bank(&mut bank);
        assert_eq!(p.regs[3], None);
        assert_eq!(bank[3], Some(0x42));
    }
}
