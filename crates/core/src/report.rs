//! Rendering of the paper's tables from discovery output.

use crate::api_fuzzer::FunnelReport;
use crate::seh::ModuleSehAnalysis;
use crate::syscall_finder::{Classification, ServerReport};
use cr_os::linux::syscall::{self, TABLE1_SYSCALLS};
use std::collections::HashMap;

/// Cell symbols for Table I.
///
/// * `±`  — candidate; invalidation crashes the server.
/// * `(+)` — usable crash-resistant primitive (framework verdict) whose
///   service survives manual verification (the paper's green circled +).
/// * `+!` — framework says usable, manual verification shows the service
///   died (the paper's red plus — Memcached's `epoll_wait`).
/// * `·`  — the syscall was not observed during the test run.
/// * `-`  — observed, but no attacker-controllable pointer argument.
/// * `?`  — candidate never re-triggered during invalidation.
pub fn table1_cell(report: &ServerReport, sc: u64) -> &'static str {
    match report.finding(sc).map(|f| f.classification) {
        Some(Classification::CrashesOnInvalidation) => "±",
        Some(Classification::Usable {
            service_after: true,
        }) => "(+)",
        Some(Classification::Usable {
            service_after: false,
        }) => "+!",
        Some(Classification::NotRetriggered) => "?",
        None if report.observed_syscalls.contains(&sc) => "-",
        None => "·",
    }
}

/// Render Table I (syscall candidates × servers).
pub fn render_table1(reports: &[ServerReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!("{:<12}", "syscall"));
    for r in reports {
        out.push_str(&format!("{:>12}", r.server));
    }
    out.push('\n');
    for &sc in TABLE1_SYSCALLS {
        out.push_str(&format!("{:<12}", syscall::name(sc)));
        for r in reports {
            out.push_str(&format!("{:>12}", table1_cell(r, sc)));
        }
        out.push('\n');
    }
    out.push_str(
        "\nlegend: ± candidate, crashes on invalidation; (+) usable; \
                  +! usable per framework but service dead (false positive);\n\
                  - observed, pointer not controllable; · not observed; ? not re-triggered\n",
    );
    out
}

/// Render Table II (guarded code locations per DLL).
pub fn render_table2(rows: &[(ModuleSehAnalysis, usize)]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14}{:>14}{:>14}{:>18}\n",
        "DLL", "guarded (pre)", "after symex", "on exec path"
    ));
    for (a, on_path) in rows {
        out.push_str(&format!(
            "{:<14}{:>14}{:>14}{:>18}\n",
            a.module.trim_end_matches(".dll"),
            a.guarded_before,
            a.guarded_after,
            on_path
        ));
    }
    out
}

/// Render Table III (unique exception filters before/after symex,
/// x64 and x86 containers).
pub fn render_table3(x64: &[ModuleSehAnalysis], x86: &[ModuleSehAnalysis]) -> String {
    let by_name: HashMap<&str, &ModuleSehAnalysis> =
        x86.iter().map(|a| (a.module.as_str(), a)).collect();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14}{:>12}{:>12}{:>12}{:>12}\n",
        "DLL", "x64 pre", "x64 post", "x86 pre", "x86 post"
    ));
    for a in x64 {
        let (b86, a86) = by_name
            .get(a.module.as_str())
            .map(|m| (m.filters_before, m.filters_after))
            .unwrap_or((0, 0));
        out.push_str(&format!(
            "{:<14}{:>12}{:>12}{:>12}{:>12}\n",
            a.module.trim_end_matches(".dll"),
            a.filters_before,
            a.filters_after,
            b86,
            a86
        ));
    }
    out
}

/// Render the §V-B API funnel.
pub fn render_funnel(f: &FunnelReport) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "API functions in corpus:          {:>8}\n",
        f.total
    ));
    out.push_str(&format!(
        "  with pointer arguments:         {:>8}  ({:.1}%)\n",
        f.with_pointer_args,
        100.0 * f.with_pointer_args as f64 / f.total as f64
    ));
    out.push_str(&format!(
        "  crash-resistant after fuzzing:  {:>8}\n",
        f.crash_resistant
    ));
    out.push_str(&format!(
        "  on browse execution path:       {:>8}\n",
        f.on_execution_path
    ));
    out.push_str(&format!(
        "  triggered from JS context:      {:>8}\n",
        f.js_reachable
    ));
    out.push_str(&format!(
        "  with controllable pointer arg:  {:>8}\n",
        f.usable
    ));
    out.push_str("  exclusion reasons:\n");
    for (k, v) in &f.exclusions {
        out.push_str(&format!("    {k:<28}{v:>8}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::syscall_finder::SyscallFinding;
    use cr_os::linux::syscall::nr;

    fn fake_report() -> ServerReport {
        ServerReport {
            server: "nginx".into(),
            observed_syscalls: vec![nr::READ, nr::RECVFROM, nr::OPEN],
            findings: vec![
                SyscallFinding {
                    syscall: nr::RECVFROM,
                    syscall_name: "recv".into(),
                    arg_index: 1,
                    sources: vec![0x60_0110],
                    tainted_by_input: false,
                    classification: Classification::Usable {
                        service_after: true,
                    },
                    efaults_observed: 1,
                },
                SyscallFinding {
                    syscall: nr::OPEN,
                    syscall_name: "open".into(),
                    arg_index: 0,
                    sources: vec![0x60_0020],
                    tainted_by_input: false,
                    classification: Classification::CrashesOnInvalidation,
                    efaults_observed: 0,
                },
            ],
        }
    }

    #[test]
    fn table1_cells() {
        let r = fake_report();
        assert_eq!(table1_cell(&r, nr::RECVFROM), "(+)");
        assert_eq!(table1_cell(&r, nr::OPEN), "±");
        assert_eq!(table1_cell(&r, nr::READ), "-");
        assert_eq!(table1_cell(&r, nr::CHMOD), "·");
    }

    #[test]
    fn table1_renders_all_rows() {
        let out = render_table1(&[fake_report()]);
        for &sc in TABLE1_SYSCALLS {
            assert!(out.contains(syscall::name(sc)), "{}", syscall::name(sc));
        }
        assert!(out.contains("nginx"));
    }
}
