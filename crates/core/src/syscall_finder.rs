//! Linux syscall-oracle discovery (paper §IV-A / §V-A, Table I).
//!
//! Two phases, mirroring the paper's monitor:
//!
//! 1. **Observation.** The server runs its test workload under byte-
//!    granular taint tracking plus pointer-provenance tracking. At every
//!    `-EFAULT`-capable syscall, each pointer argument is checked: if its
//!    value was loaded from attacker-reachable memory (or is tainted by
//!    network input), the call site is a *candidate* and the source cells
//!    are recorded.
//! 2. **Invalidation.** Per candidate, a fresh server instance runs the
//!    workload while a corruption monitor overwrites the source cells
//!    with an invalid address right before the server loads them (the
//!    attacker's arbitrary-write primitive). The outcome classifies the
//!    candidate: a segmentation fault (the pointer is also dereferenced
//!    in user mode) is the paper's "±"; an observable `-EFAULT` with the
//!    process alive is reported **usable** — exactly like the paper's
//!    prototype, which does *not* verify that connection-handling threads
//!    survive. The separate `service_after` bit is the manual
//!    verification step that exposes the Memcached false positive.

use crate::provenance::{ProvBank, Provenance};
use cr_isa::{Inst, Reg, Rm, Width};
use cr_os::linux::syscall::{self, efault_capable, pointer_args};
use cr_os::OsHook;
use cr_taint::{RegShadow, TaintEngine};
use cr_targets::ServerTarget;
use cr_vm::{Cpu, Hook, Memory, NullHook};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Argument registers in syscall ABI order.
pub const ARG_REGS: [Reg; 6] = [Reg::Rdi, Reg::Rsi, Reg::Rdx, Reg::R10, Reg::R8, Reg::R9];

/// Taint label for attacker-reachable memory seeds.
pub const LABEL_ATTACKER_MEM: u8 = 0;
/// Taint label for bytes received from the network.
pub const LABEL_NET_INPUT: u8 = 1;

/// Invalid address used for pointer invalidation.
pub const BAD_POINTER: u64 = 0xdead_0000;

/// A candidate discovered in the observation phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Candidate {
    /// Syscall number.
    pub syscall: u64,
    /// Pointer argument index (0-based).
    pub arg_index: usize,
    /// Memory cells the pointer value was loaded from.
    pub sources: BTreeSet<u64>,
    /// Whether network-input taint reached the argument.
    pub tainted_by_input: bool,
    /// Times the candidate was observed.
    pub hits: u32,
}

/// Invalidation outcome for a candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum Classification {
    /// The server crashed (SIGSEGV) — the pointer is consumed in user
    /// mode too. Table I's "±".
    CrashesOnInvalidation,
    /// `-EFAULT` observed and the process survived — the framework calls
    /// this usable (Table I's circled plus). `service_after` records the
    /// manual-verification follow-up: can a *new* connection still be
    /// served once the attacker stops corrupting? `false` is the paper's
    /// Memcached false positive.
    Usable {
        /// Post-hoc service liveness (manual verification step).
        service_after: bool,
    },
    /// The corrupted path never executed again.
    NotRetriggered,
}

/// One row of the per-server report.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SyscallFinding {
    /// Syscall number.
    pub syscall: u64,
    /// Human-readable name.
    pub syscall_name: String,
    /// Pointer argument index.
    pub arg_index: usize,
    /// Source cells used for invalidation.
    pub sources: Vec<u64>,
    /// Network-input taint reached the argument.
    pub tainted_by_input: bool,
    /// Outcome of the invalidation phase.
    pub classification: Classification,
    /// `-EFAULT`s observed during invalidation.
    pub efaults_observed: u64,
}

/// Full discovery output for one server.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ServerReport {
    /// Server name (Table I column).
    pub server: String,
    /// All syscalls observed during the workload (candidate or not).
    pub observed_syscalls: Vec<u64>,
    /// Classified candidates.
    pub findings: Vec<SyscallFinding>,
}

impl ServerReport {
    /// The finding for `syscall`, if any.
    pub fn finding(&self, syscall: u64) -> Option<&SyscallFinding> {
        self.findings.iter().find(|f| f.syscall == syscall)
    }

    /// Usable primitives (framework verdict, before manual verification).
    pub fn usable(&self) -> Vec<&SyscallFinding> {
        self.findings
            .iter()
            .filter(|f| matches!(f.classification, Classification::Usable { .. }))
            .collect()
    }
}

/// Dynamically observed provenance for one syscall **site** (the
/// virtual address of the `syscall` instruction) — the structured
/// record the static/dynamic cross-validator consumes, instead of
/// re-parsing rendered report text. Populated during the observation
/// phase for every executed site, `-EFAULT`-capable or not.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SiteProvenance {
    /// Virtual address of the `syscall` instruction.
    pub va: u64,
    /// Syscall number executed at the site (last observed).
    pub syscall: u64,
    /// Times the site executed during the workload.
    pub hits: u32,
    /// Whether network-input taint reached any pointer argument here.
    pub tainted_by_input: bool,
    /// Memory cells pointer arguments were loaded from at this site.
    pub sources: BTreeSet<u64>,
    /// Union of taint labels seen on pointer arguments at this site.
    pub labels: BTreeSet<u8>,
}

/// Observation-phase monitor: taint + provenance + candidate recording.
pub struct FinderMonitor {
    taint: TaintEngine,
    prov: Provenance,
    taint_banks: HashMap<u32, RegShadow>,
    prov_banks: HashMap<u32, ProvBank>,
    cur_tid: u32,
    last_args: HashMap<u32, (u64, [u64; 6])>,
    /// Candidates keyed by (syscall, arg index).
    pub candidates: BTreeMap<(u64, usize), Candidate>,
    /// Every syscall number seen.
    pub observed: BTreeSet<u64>,
    /// Per-site provenance keyed by site address.
    pub sites: BTreeMap<u64, SiteProvenance>,
}

impl FinderMonitor {
    /// Monitor seeded with the attacker-reachable regions.
    pub fn new(regions: Vec<(u64, u64)>) -> FinderMonitor {
        let mut taint = TaintEngine::new();
        for &(base, len) in &regions {
            taint.taint_region(base, len, LABEL_ATTACKER_MEM);
        }
        FinderMonitor {
            taint,
            prov: Provenance::new(regions),
            taint_banks: HashMap::new(),
            prov_banks: HashMap::new(),
            cur_tid: 0,
            last_args: HashMap::new(),
            candidates: BTreeMap::new(),
            observed: BTreeSet::new(),
            sites: BTreeMap::new(),
        }
    }

    /// Access the underlying taint engine (for inspection in tests).
    pub fn taint(&self) -> &TaintEngine {
        &self.taint
    }

    /// Every observed site's provenance, sorted by address — the
    /// dynamic half of the static/dynamic cross-validation.
    pub fn site_provenances(&self) -> Vec<SiteProvenance> {
        self.sites.values().cloned().collect()
    }
}

impl Hook for FinderMonitor {
    fn on_inst(&mut self, cpu: &Cpu, mem: &mut Memory, inst: &Inst, va: u64, len: usize) {
        self.taint.on_inst(cpu, mem, inst, va, len);
        self.prov.on_inst(cpu, mem, inst, va, len);
    }
}

impl OsHook for FinderMonitor {
    fn on_schedule(&mut self, tid: u32) {
        if tid == self.cur_tid {
            return;
        }
        // Save current banks, load (or create) the new thread's banks.
        let mut tbank = self.taint_banks.remove(&tid).unwrap_or_default();
        let mut pbank = self.prov_banks.remove(&tid).unwrap_or([None; 16]);
        self.taint.swap_reg_file(&mut tbank);
        self.prov.swap_bank(&mut pbank);
        self.taint_banks.insert(self.cur_tid, tbank);
        self.prov_banks.insert(self.cur_tid, pbank);
        self.cur_tid = tid;
    }

    fn on_syscall(&mut self, tid: u32, cpu: &mut Cpu, _mem: &Memory) {
        let nr = cpu.reg(Reg::Rax);
        // The CPU has already advanced past the two-byte `syscall`
        // encoding when the OS hook fires — back up to the site itself.
        let site_va = cpu.rip.wrapping_sub(2);
        self.observed.insert(nr);
        let args = [
            cpu.reg(Reg::Rdi),
            cpu.reg(Reg::Rsi),
            cpu.reg(Reg::Rdx),
            cpu.reg(Reg::R10),
            cpu.reg(Reg::R8),
            cpu.reg(Reg::R9),
        ];
        self.last_args.insert(tid, (nr, args));
        let site = self.sites.entry(site_va).or_insert_with(|| SiteProvenance {
            va: site_va,
            syscall: nr,
            hits: 0,
            tainted_by_input: false,
            sources: BTreeSet::new(),
            labels: BTreeSet::new(),
        });
        site.hits += 1;
        site.syscall = nr;
        if !efault_capable(nr) {
            return;
        }
        for &ai in pointer_args(nr) {
            let reg = ARG_REGS[ai];
            if args[ai] == 0 {
                continue; // NULL argument (e.g. accept's addr)
            }
            let source = self.prov.source(reg);
            let taint_set = self.taint.reg_taint(reg, Width::B8);
            let tainted = taint_set.contains(LABEL_NET_INPUT);
            let site = self.sites.get_mut(&site_va).expect("inserted above");
            if let Some(s) = source {
                site.sources.insert(s);
            }
            for l in taint_set.labels() {
                site.labels.insert(l);
            }
            site.tainted_by_input |= tainted;
            if source.is_some() || tainted {
                let c = self
                    .candidates
                    .entry((nr, ai))
                    .or_insert_with(|| Candidate {
                        syscall: nr,
                        arg_index: ai,
                        sources: BTreeSet::new(),
                        tainted_by_input: false,
                        hits: 0,
                    });
                if let Some(s) = source {
                    c.sources.insert(s);
                }
                c.tainted_by_input |= tainted;
                c.hits += 1;
            }
        }
    }

    fn on_syscall_ret(&mut self, tid: u32, nr: u64, ret: i64) {
        // Network input becomes a taint source.
        if matches!(nr, syscall::nr::READ | syscall::nr::RECVFROM) && ret > 0 {
            if let Some(&(_, args)) = self.last_args.get(&tid) {
                self.taint
                    .taint_region(args[1], ret as u64, LABEL_NET_INPUT);
            }
        }
    }
}

/// Invalidation-phase monitor: overwrite the source cells with an
/// invalid pointer right before the server loads them.
pub struct CorruptMonitor {
    cells: BTreeSet<u64>,
    bad: u64,
    /// Original cell values (for post-run restoration).
    pub originals: BTreeMap<u64, u64>,
    /// Number of pokes performed.
    pub pokes: u32,
    /// Whether corruption is armed.
    pub armed: bool,
}

impl CorruptMonitor {
    /// Corrupt `cells` with `bad`.
    pub fn new(cells: BTreeSet<u64>, bad: u64) -> CorruptMonitor {
        CorruptMonitor {
            cells,
            bad,
            originals: BTreeMap::new(),
            pokes: 0,
            armed: true,
        }
    }

    /// Restore every corrupted cell in `mem`.
    pub fn restore(&self, mem: &mut Memory) {
        for (&cell, &orig) in &self.originals {
            let _ = mem.write_u64(cell, orig);
        }
    }
}

impl Hook for CorruptMonitor {
    fn on_inst(&mut self, cpu: &Cpu, mem: &mut Memory, inst: &Inst, va: u64, len: usize) {
        if !self.armed {
            return;
        }
        // Only 64-bit loads can pull in a corruptible pointer.
        if let Inst::MovRRm {
            src: Rm::Mem(m),
            width: Width::B8,
            ..
        } = inst
        {
            let ea = cpu.effective_addr(m, va.wrapping_add(len as u64));
            if self.cells.contains(&ea) {
                if let Ok(orig) = mem.read_u64(ea) {
                    if orig != self.bad {
                        self.originals.entry(ea).or_insert(orig);
                        let _ = mem.write_u64(ea, self.bad);
                        self.pokes += 1;
                    }
                }
            }
        }
    }
}

impl OsHook for CorruptMonitor {}

/// Run full discovery (both phases) against one server target.
///
/// # Examples
///
/// ```no_run
/// let target = cr_targets::all_servers().into_iter()
///     .find(|t| t.name == "nginx").unwrap();
/// let report = cr_core::discover_server(&target);
/// for finding in report.usable() {
///     println!("usable primitive: {}", finding.syscall_name);
/// }
/// ```
pub fn discover_server(target: &ServerTarget) -> ServerReport {
    // ---- Phase 1: observation ------------------------------------------
    let mon = observe_server(target);
    let observed: Vec<u64> = mon.observed.iter().copied().collect();
    let candidates: Vec<Candidate> = mon.candidates.values().cloned().collect();

    // ---- Phase 2: invalidation per candidate -----------------------------
    let mut findings = Vec::new();
    for cand in candidates {
        let (classification, efaults) = classify(target, &cand);
        findings.push(SyscallFinding {
            syscall: cand.syscall,
            syscall_name: syscall::name(cand.syscall).to_string(),
            arg_index: cand.arg_index,
            sources: cand.sources.iter().copied().collect(),
            tainted_by_input: cand.tainted_by_input,
            classification,
            efaults_observed: efaults,
        });
    }
    ServerReport {
        server: target.name.to_string(),
        observed_syscalls: observed,
        findings,
    }
}

/// Phase-1 observation only: boot `target`, drive its workload twice
/// under taint + provenance monitoring, and return the populated
/// monitor (candidates, observed syscalls, per-site provenance). The
/// traceless scanner's cross-validation mode consumes this directly.
pub fn observe_server(target: &ServerTarget) -> FinderMonitor {
    let mut mon = FinderMonitor::new(target.attacker_regions.clone());
    let mut p = target.boot(&mut mon);
    for _ in 0..2 {
        (target.exercise)(&mut p, &mut mon);
    }
    mon
}

fn classify(target: &ServerTarget, cand: &Candidate) -> (Classification, u64) {
    if cand.sources.is_empty() {
        // Input-tainted but not memory-resident: nothing to invalidate
        // with a write primitive.
        return (Classification::NotRetriggered, 0);
    }
    let mut cm = CorruptMonitor::new(cand.sources.clone(), BAD_POINTER);
    let mut p = target.boot(&mut NullHook);
    let _ = (target.exercise)(&mut p, &mut cm);
    if p.crash().is_some() {
        return (Classification::CrashesOnInvalidation, p.efault_count);
    }
    let efaults = p.efault_count;
    if efaults == 0 && cm.pokes == 0 {
        return (Classification::NotRetriggered, 0);
    }
    if efaults == 0 {
        // Poked but the syscall never consumed the bad pointer — give the
        // workload one more chance (the path may trigger on request N+1).
        let _ = (target.exercise)(&mut p, &mut cm);
        if p.crash().is_some() {
            return (Classification::CrashesOnInvalidation, p.efault_count);
        }
        if p.efault_count == 0 {
            return (Classification::NotRetriggered, 0);
        }
    }
    // Manual-verification step: stop corrupting, restore, and test service.
    cm.armed = false;
    cm.restore(&mut p.mem);
    let service_after = (target.exercise)(&mut p, &mut cm) && p.alive();
    if p.crash().is_some() {
        return (Classification::CrashesOnInvalidation, p.efault_count);
    }
    (
        Classification::Usable { service_after },
        p.efault_count.max(efaults),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_os::linux::syscall::nr;

    fn report_for(name: &str) -> ServerReport {
        let t = cr_targets::all_servers()
            .into_iter()
            .find(|t| t.name == name)
            .expect("known server");
        discover_server(&t)
    }

    #[test]
    fn nginx_recv_is_usable_and_service_survives() {
        let r = report_for("nginx");
        let recv = r.finding(nr::RECVFROM).expect("recv candidate found");
        assert_eq!(
            recv.classification,
            Classification::Usable {
                service_after: true
            },
            "nginx recv is the paper's ⊕ primitive"
        );
        assert!(recv.efaults_observed >= 1);
        // And the touched sites crash (± cells).
        for sc in [nr::OPEN, nr::CHMOD, nr::MKDIR, nr::UNLINK] {
            let f = r
                .finding(sc)
                .unwrap_or_else(|| panic!("{} candidate", syscall::name(sc)));
            assert_eq!(
                f.classification,
                Classification::CrashesOnInvalidation,
                "{} must crash on invalidation",
                syscall::name(sc)
            );
        }
    }

    #[test]
    fn lighttpd_read_is_usable() {
        let r = report_for("lighttpd");
        let read = r.finding(nr::READ).expect("read candidate");
        assert!(
            matches!(
                read.classification,
                Classification::Usable {
                    service_after: true
                }
            ),
            "lighttpd read must be usable, got {:?}",
            read.classification
        );
    }

    #[test]
    fn memcached_epoll_wait_is_the_false_positive() {
        let r = report_for("memcached");
        let ep = r.finding(nr::EPOLL_WAIT).expect("epoll_wait candidate");
        // Framework verdict: usable. Manual verification: service dead.
        assert_eq!(
            ep.classification,
            Classification::Usable {
                service_after: false
            },
            "the Memcached false positive"
        );
        let read = r.finding(nr::READ).expect("read candidate");
        assert_eq!(
            read.classification,
            Classification::Usable {
                service_after: true
            }
        );
    }

    #[test]
    fn cherokee_epoll_wait_is_usable() {
        let r = report_for("cherokee");
        let ep = r.finding(nr::EPOLL_WAIT).expect("epoll_wait candidate");
        assert_eq!(
            ep.classification,
            Classification::Usable {
                service_after: true
            }
        );
    }

    #[test]
    fn postgresql_epoll_wait_is_usable() {
        let r = report_for("postgresql");
        let ep = r.finding(nr::EPOLL_WAIT).expect("epoll_wait candidate");
        assert_eq!(
            ep.classification,
            Classification::Usable {
                service_after: true
            }
        );
    }
}
