//! Exception-handler discovery (paper §IV-C, Tables II and III).
//!
//! Pipeline per module:
//!
//! 1. parse `.pdata` → RUNTIME_FUNCTION entries → C-specific-handler
//!    scope tables (done by `cr-image`);
//! 2. collect the *unique filter functions* referenced by the scopes;
//! 3. symbolically execute every filter ([`cr_symex::SymExec`]) and ask
//!    the solver whether any path accepts `EXCEPTION_ACCESS_VIOLATION`
//!    (returns ≠ `EXCEPTION_CONTINUE_SEARCH`);
//! 4. classify each scope: catch-all scopes and scopes whose filter
//!    accepts (or defeats the analysis) survive — the "after SB" set;
//! 5. cross-reference surviving guarded regions against an execution
//!    trace to find the ones an attacker can actually trigger.

use cr_image::{FilterRef, Machine, PeImage};
use cr_symex::{CodeSource, FilterVerdict, SymExec};
use std::collections::{BTreeMap, HashSet};

/// Classification of one scope's filter.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub enum FilterClass {
    /// Scope filter field is the constant 1: handles everything.
    CatchAll,
    /// Filter function proven to accept an access violation.
    AcceptsAv {
        /// Witness `ExceptionCode` from the solver model.
        witness: u64,
    },
    /// Filter function proven to reject access violations.
    RejectsAv,
    /// Symbolic execution could not decide (e.g. the filter calls another
    /// function) — kept for manual verification.
    Undecided {
        /// Executor abort reason.
        reason: String,
    },
}

impl FilterClass {
    /// Whether this scope survives symbolic vetting ("after SB").
    pub fn survives(&self) -> bool {
        !matches!(self, FilterClass::RejectsAv)
    }
}

/// One guarded code location (scope) with its classification.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ScopeCandidate {
    /// Guarded region begin (VA).
    pub begin_va: u64,
    /// Guarded region end (VA).
    pub end_va: u64,
    /// `__except` continuation (VA).
    pub target_va: u64,
    /// Filter classification.
    pub class: FilterClass,
}

/// One guarded function (a RUNTIME_FUNCTION with an exception handler).
#[derive(Debug, Clone, serde::Serialize)]
pub struct GuardedFunction {
    /// Function begin (VA).
    pub begin_va: u64,
    /// Function end (VA).
    pub end_va: u64,
    /// The function's `__try` scopes.
    pub scopes: Vec<ScopeCandidate>,
}

impl GuardedFunction {
    /// Whether any scope survives symbolic vetting.
    pub fn survives(&self) -> bool {
        self.scopes.iter().any(|s| s.class.survives())
    }
}

/// Full SEH analysis of one module.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ModuleSehAnalysis {
    /// Module name.
    pub module: String,
    /// x64 or x86 container.
    pub is_x64: bool,
    /// Guarded code locations before symbolic execution (functions with
    /// a C-specific handler).
    pub guarded_before: usize,
    /// Locations with at least one AV-capable scope ("after SB").
    pub guarded_after: usize,
    /// Unique filter functions before symbolic execution.
    pub filters_before: usize,
    /// Filter functions surviving symbolic execution.
    pub filters_after: usize,
    /// Filters the executor could not decide (manual verification).
    pub filters_undecided: usize,
    /// Guarded functions with their scopes.
    pub functions: Vec<GuardedFunction>,
    /// All scopes, flattened.
    pub scopes: Vec<ScopeCandidate>,
}

/// Code source over a parsed PE image's executable sections.
pub struct PeCode<'a> {
    image: &'a PeImage,
}

impl<'a> PeCode<'a> {
    /// Wrap an image.
    pub fn new(image: &'a PeImage) -> PeCode<'a> {
        PeCode { image }
    }
}

impl CodeSource for PeCode<'_> {
    fn read_code(&self, va: u64, buf: &mut [u8]) -> usize {
        let Some(rva) = va.checked_sub(self.image.image_base) else { return 0 };
        let Some(section) = self.image.section_at(rva as u32) else { return 0 };
        if !section.perm.x {
            return 0;
        }
        let off = (rva as u32 - section.rva) as usize;
        if off >= section.data.len() {
            return 0;
        }
        let n = buf.len().min(section.data.len() - off);
        buf[..n].copy_from_slice(&section.data[off..off + n]);
        n
    }
}

/// Analyze one module: parse scopes, vet filters, classify.
pub fn analyze_module(image: &PeImage) -> ModuleSehAnalysis {
    let base = image.image_base;
    let code = PeCode::new(image);
    let exec = SymExec::default();

    // Unique filters across all scopes.
    let mut filter_rvas: Vec<u32> = image
        .runtime_functions
        .iter()
        .flat_map(|rf| rf.unwind.scopes.iter())
        .filter_map(|s| match s.filter {
            FilterRef::Function(rva) => Some(rva),
            FilterRef::CatchAll => None,
        })
        .collect();
    filter_rvas.sort_unstable();
    filter_rvas.dedup();

    // Symbolically vet every unique filter once.
    let mut verdicts: BTreeMap<u32, FilterVerdict> = BTreeMap::new();
    for &rva in &filter_rvas {
        let analysis = exec.analyze_filter(&code, base + rva as u64);
        verdicts.insert(rva, analysis.verdict);
    }

    let mut functions = Vec::new();
    for rf in &image.runtime_functions {
        if rf.unwind.handler_rva.is_none() || rf.unwind.scopes.is_empty() {
            continue;
        }
        let mut scopes = Vec::new();
        for s in &rf.unwind.scopes {
            let class = match s.filter {
                FilterRef::CatchAll => FilterClass::CatchAll,
                FilterRef::Function(rva) => match &verdicts[&rva] {
                    FilterVerdict::AcceptsAccessViolation { witness_code } => {
                        FilterClass::AcceptsAv { witness: *witness_code }
                    }
                    FilterVerdict::RejectsAccessViolation => FilterClass::RejectsAv,
                    FilterVerdict::Unknown(r) => FilterClass::Undecided { reason: r.to_string() },
                },
            };
            scopes.push(ScopeCandidate {
                begin_va: base + s.begin_rva as u64,
                end_va: base + s.end_rva as u64,
                target_va: base + s.target_rva as u64,
                class,
            });
        }
        functions.push(GuardedFunction {
            begin_va: base + rf.begin_rva as u64,
            end_va: base + rf.end_rva as u64,
            scopes,
        });
    }
    let scopes: Vec<ScopeCandidate> =
        functions.iter().flat_map(|f| f.scopes.iter().cloned()).collect();

    let guarded_before = functions.len();
    let guarded_after = functions.iter().filter(|f| f.survives()).count();
    let filters_before = filter_rvas.len();
    let filters_after = verdicts
        .values()
        .filter(|v| !matches!(v, FilterVerdict::RejectsAccessViolation))
        .count();
    let filters_undecided = verdicts
        .values()
        .filter(|v| matches!(v, FilterVerdict::Unknown(_)))
        .count();

    ModuleSehAnalysis {
        module: image.name.clone(),
        is_x64: image.machine == Machine::X64,
        guarded_before,
        guarded_after,
        filters_before,
        filters_after,
        filters_undecided,
        functions,
        scopes,
    }
}

/// Count surviving guarded locations whose region intersects the
/// execution trace (the paper's DynamoRIO cross-reference).
pub fn on_path_count(analysis: &ModuleSehAnalysis, visited: &HashSet<u64>) -> usize {
    analysis
        .functions
        .iter()
        .filter(|f| f.survives())
        .filter(|f| visited.iter().any(|&va| va >= f.begin_va && va < f.end_va))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_targets::browsers::{calib, generate_dll, DllSpec, CALIBRATION};

    #[test]
    fn recovers_calibrated_counts_for_user32() {
        let c = calib("user32").unwrap();
        let img = generate_dll(&DllSpec::from_calib_x64(c, 0));
        let a = analyze_module(&img);
        assert_eq!(a.guarded_before as u32, c.guarded_before, "Table II before-SB");
        assert_eq!(a.guarded_after as u32, c.guarded_after, "Table II after-SB");
        assert_eq!(a.filters_before as u32, c.fx64_before, "Table III before-SB");
        assert_eq!(a.filters_after as u32, c.fx64_after, "Table III after-SB");
    }

    #[test]
    fn recovers_all_table2_rows() {
        for (i, c) in CALIBRATION.iter().filter(|c| c.in_table2).enumerate() {
            let img = generate_dll(&DllSpec::from_calib_x64(c, i));
            let a = analyze_module(&img);
            assert_eq!(a.guarded_before as u32, c.guarded_before, "{} before", c.name);
            assert_eq!(a.guarded_after as u32, c.guarded_after, "{} after", c.name);
        }
    }

    #[test]
    fn x86_filter_counts_recovered() {
        let c = calib("kernel32").unwrap();
        let img = generate_dll(&DllSpec::from_calib_x86(c, 1));
        let a = analyze_module(&img);
        assert!(!a.is_x64);
        assert_eq!(a.filters_before as u32, c.fx86_before);
        assert_eq!(a.filters_after as u32, c.fx86_after);
    }

    #[test]
    fn jscript9_has_an_undecided_filter() {
        // The "filter calls a helper" shape must surface as Undecided —
        // the paper's manual-verification bucket.
        let c = calib("jscript9").unwrap();
        let img = generate_dll(&DllSpec::from_calib_x64(c, 3));
        let a = analyze_module(&img);
        assert_eq!(a.filters_undecided, 1);
        assert!(a
            .scopes
            .iter()
            .any(|s| matches!(s.class, FilterClass::Undecided { .. })));
    }

    #[test]
    fn on_path_cross_reference() {
        let c = calib("xmllite").unwrap();
        let img = generate_dll(&DllSpec::from_calib_x64(c, 7));
        let a = analyze_module(&img);
        // Simulate a trace that visited the first surviving function.
        let first = a.functions.iter().find(|f| f.survives()).unwrap();
        let mut visited = HashSet::new();
        visited.insert(first.begin_va);
        assert_eq!(on_path_count(&a, &visited), 1);
        assert_eq!(on_path_count(&a, &HashSet::new()), 0);
    }
}
