//! Exception-handler discovery (paper §IV-C, Tables II and III).
//!
//! Pipeline per module:
//!
//! 1. parse `.pdata` → RUNTIME_FUNCTION entries → C-specific-handler
//!    scope tables (done by `cr-image`);
//! 2. collect the *unique filter functions* referenced by the scopes;
//! 3. explore every filter path-by-path ([`cr_symex::FilterExplorer`],
//!    feasibility-pruned forking with incremental solving) and ask the
//!    solver whether any path accepts `EXCEPTION_ACCESS_VIOLATION`
//!    (returns ≠ `EXCEPTION_CONTINUE_SEARCH`); the single-shot
//!    [`cr_symex::SymExec`] pipeline survives only as a
//!    differential-testing reference;
//! 4. classify each scope: catch-all scopes and scopes whose filter
//!    accepts (or defeats the analysis) survive — the "after SB" set;
//! 5. cross-reference surviving guarded regions against an execution
//!    trace to find the ones an attacker can actually trigger.

use crate::stable_hash::{sha256_hex, Sha256};
use cr_image::{FilterRef, Machine, PeImage};
use cr_symex::{CodeSource, FilterExplorer, FilterVerdict};
use std::collections::{BTreeMap, HashSet};

/// Classification of one scope's filter.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub enum FilterClass {
    /// Scope filter field is the constant 1: handles everything.
    CatchAll,
    /// Filter function proven to accept an access violation.
    AcceptsAv {
        /// Witness `ExceptionCode` from the solver model.
        witness: u64,
    },
    /// Filter function proven to reject access violations.
    RejectsAv,
    /// Symbolic execution could not decide (e.g. the filter calls another
    /// function) — kept for manual verification.
    Undecided {
        /// Executor abort reason.
        reason: String,
    },
}

impl FilterClass {
    /// Whether this scope survives symbolic vetting ("after SB").
    pub fn survives(&self) -> bool {
        !matches!(self, FilterClass::RejectsAv)
    }
}

/// One guarded code location (scope) with its classification.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ScopeCandidate {
    /// Guarded region begin (VA).
    pub begin_va: u64,
    /// Guarded region end (VA).
    pub end_va: u64,
    /// `__except` continuation (VA).
    pub target_va: u64,
    /// Filter classification.
    pub class: FilterClass,
}

/// One guarded function (a RUNTIME_FUNCTION with an exception handler).
#[derive(Debug, Clone, serde::Serialize)]
pub struct GuardedFunction {
    /// Function begin (VA).
    pub begin_va: u64,
    /// Function end (VA).
    pub end_va: u64,
    /// The function's `__try` scopes.
    pub scopes: Vec<ScopeCandidate>,
}

impl GuardedFunction {
    /// Whether any scope survives symbolic vetting.
    pub fn survives(&self) -> bool {
        self.scopes.iter().any(|s| s.class.survives())
    }
}

/// Full SEH analysis of one module.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ModuleSehAnalysis {
    /// Module name.
    pub module: String,
    /// x64 or x86 container.
    pub is_x64: bool,
    /// Guarded code locations before symbolic execution (functions with
    /// a C-specific handler).
    pub guarded_before: usize,
    /// Locations with at least one AV-capable scope ("after SB").
    pub guarded_after: usize,
    /// Unique filter functions before symbolic execution.
    pub filters_before: usize,
    /// Filter functions surviving symbolic execution.
    pub filters_after: usize,
    /// Filters the executor could not decide (manual verification).
    pub filters_undecided: usize,
    /// Guarded functions with their scopes.
    pub functions: Vec<GuardedFunction>,
    /// All scopes, flattened.
    pub scopes: Vec<ScopeCandidate>,
}

/// Code source over a parsed PE image's executable sections.
pub struct PeCode<'a> {
    image: &'a PeImage,
}

impl<'a> PeCode<'a> {
    /// Wrap an image.
    pub fn new(image: &'a PeImage) -> PeCode<'a> {
        PeCode { image }
    }
}

impl CodeSource for PeCode<'_> {
    fn read_code(&self, va: u64, buf: &mut [u8]) -> usize {
        let Some(rva) = va.checked_sub(self.image.image_base) else {
            return 0;
        };
        let Some(section) = self.image.section_at(rva as u32) else {
            return 0;
        };
        if !section.perm.x {
            return 0;
        }
        let off = (rva as u32 - section.rva) as usize;
        if off >= section.data.len() {
            return 0;
        }
        let n = buf.len().min(section.data.len() - off);
        buf[..n].copy_from_slice(&section.data[off..off + n]);
        n
    }
}

/// Lookaside store for filter verdicts, keyed by a stable content hash
/// of the filter function's code bytes (see [`filter_key`]).
///
/// [`analyze_module_cached`] consults the cache before symbolically
/// executing a filter and publishes fresh verdicts back, so identical
/// filter code shared across modules (or across campaign runs) is only
/// ever solved once. The trait is object-safe on purpose: `cr-core`
/// stays oblivious to where verdicts persist (memory, JSONL, …).
pub trait VerdictCache {
    /// Look up a previously computed verdict.
    fn get(&self, key: &str) -> Option<FilterVerdict>;
    /// Record a freshly computed verdict.
    fn put(&mut self, key: &str, verdict: &FilterVerdict);
}

/// The trivial cache: never hits, never stores.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoCache;

impl VerdictCache for NoCache {
    fn get(&self, _key: &str) -> Option<FilterVerdict> {
        None
    }
    fn put(&mut self, _key: &str, _verdict: &FilterVerdict) {}
}

/// Code bytes of the filter function at `rva`.
///
/// The covering RUNTIME_FUNCTION entry delimits the function; filters
/// without one (not all filter thunks get unwind entries) fall back to
/// a fixed 512-byte window clamped to the section.
pub fn filter_code_bytes(image: &PeImage, rva: u32) -> Vec<u8> {
    let end = image
        .runtime_functions
        .iter()
        .find(|rf| rf.begin_rva <= rva && rva < rf.end_rva)
        .map(|rf| rf.end_rva);
    let Some(section) = image.section_at(rva) else {
        return Vec::new();
    };
    let off = (rva - section.rva) as usize;
    if off >= section.data.len() {
        return Vec::new();
    }
    let avail = section.data.len() - off;
    let len = match end {
        Some(e) => ((e - rva) as usize).min(avail),
        None => avail.min(512),
    };
    section.data[off..off + len].to_vec()
}

/// Stable cache key for the filter at `rva`: machine tag plus SHA-256
/// of the filter's code bytes. Identical filter code always maps to
/// the same key, across modules, processes and campaign runs.
pub fn filter_key(image: &PeImage, rva: u32) -> String {
    let tag = match image.machine {
        Machine::X64 => "x64",
        _ => "x86",
    };
    format!("{}:{}", tag, sha256_hex(&filter_code_bytes(image, rva)))
}

/// Stable content hash of a whole image — the cache key for
/// module-level analyses. Covers everything `analyze_module` can
/// observe: identity, layout, section bytes and permissions.
pub fn image_content_hash(image: &PeImage) -> String {
    let mut h = Sha256::new();
    h.update(image.name.as_bytes());
    h.update(&[
        0,
        if image.machine == Machine::X64 {
            64
        } else {
            32
        },
    ]);
    h.update(&image.image_base.to_le_bytes());
    h.update(&image.entry_rva.to_le_bytes());
    for s in &image.sections {
        h.update(s.name.as_bytes());
        h.update(&s.rva.to_le_bytes());
        h.update(&s.virtual_size.to_le_bytes());
        h.update(&[0, s.perm.r as u8, s.perm.w as u8, s.perm.x as u8]);
        h.update(&(s.data.len() as u64).to_le_bytes());
        h.update(&s.data);
    }
    crate::stable_hash::to_hex(&h.finish())
}

/// Analyze one module: parse scopes, vet filters, classify.
pub fn analyze_module(image: &PeImage) -> ModuleSehAnalysis {
    analyze_module_cached(image, &mut NoCache)
}

/// [`analyze_module`], consulting `cache` before each symbolic
/// execution and publishing fresh verdicts back into it.
pub fn analyze_module_cached(image: &PeImage, cache: &mut dyn VerdictCache) -> ModuleSehAnalysis {
    analyze_module_cached_jobs(image, cache, 1)
}

/// [`analyze_module_cached`] with explorer-level parallelism: the
/// module's uncached filters are batched through one
/// [`FilterExplorer::explore_batch`] call so `jobs` exploration workers
/// share a warm arena/session across every filter of the image, instead
/// of one opaque filter-at-a-time task. Verdicts are identical at any
/// `jobs` (the explorer's canonical merge guarantees it); `jobs <= 1`
/// is exactly the serial path.
pub fn analyze_module_cached_jobs(
    image: &PeImage,
    cache: &mut dyn VerdictCache,
    jobs: usize,
) -> ModuleSehAnalysis {
    let base = image.image_base;
    let code = PeCode::new(image);
    let explorer = FilterExplorer::builder().jobs(jobs.max(1)).build();

    // Unique filters across all scopes.
    let mut filter_rvas: Vec<u32> = image
        .runtime_functions
        .iter()
        .flat_map(|rf| rf.unwind.scopes.iter())
        .filter_map(|s| match s.filter {
            FilterRef::Function(rva) => Some(rva),
            FilterRef::CatchAll => None,
        })
        .collect();
    filter_rvas.sort_unstable();
    filter_rvas.dedup();
    let keys: Vec<String> = filter_rvas
        .iter()
        .map(|&rva| filter_key(image, rva))
        .collect();

    // Symbolically vet every unique filter once, going through the
    // content-addressed cache: two filters with identical code bytes
    // share one solver run even within a single module. `computed`
    // mirrors this run's own puts so a non-storing cache (NoCache)
    // still gets the share-one-run behavior under batching.
    let mut computed: BTreeMap<&str, FilterVerdict> = BTreeMap::new();
    if jobs > 1 {
        // Pre-resolve the cache misses in one batch: first RVA per
        // unique key explores (same choice the serial loop makes), the
        // rest alias its verdict.
        let mut miss_rvas: Vec<u32> = Vec::new();
        let mut miss_keys: Vec<&str> = Vec::new();
        for (&rva, key) in filter_rvas.iter().zip(&keys) {
            if cache.get(key).is_none() && !computed.contains_key(key.as_str()) {
                computed.insert(key, FilterVerdict::Unknown("pending"));
                miss_rvas.push(rva);
                miss_keys.push(key);
            }
        }
        if !miss_rvas.is_empty() {
            let entries: Vec<u64> = miss_rvas.iter().map(|&rva| base + rva as u64).collect();
            let (reports, _stats) = explorer.explore_batch(&code, &entries);
            for (key, report) in miss_keys.iter().zip(reports) {
                cache.put(key, &report.verdict);
                computed.insert(key, report.verdict);
            }
        }
    }
    let mut verdicts: BTreeMap<u32, FilterVerdict> = BTreeMap::new();
    for (&rva, key) in filter_rvas.iter().zip(&keys) {
        let verdict = match cache.get(key) {
            Some(v) => v,
            None => match computed.get(key.as_str()) {
                Some(v) => v.clone(),
                None => {
                    let report = explorer.explore(&code, base + rva as u64);
                    cache.put(key, &report.verdict);
                    computed.insert(key, report.verdict.clone());
                    report.verdict
                }
            },
        };
        verdicts.insert(rva, verdict);
    }

    let mut functions = Vec::new();
    for rf in &image.runtime_functions {
        if rf.unwind.handler_rva.is_none() || rf.unwind.scopes.is_empty() {
            continue;
        }
        let mut scopes = Vec::new();
        for s in &rf.unwind.scopes {
            let class = match s.filter {
                FilterRef::CatchAll => FilterClass::CatchAll,
                FilterRef::Function(rva) => match &verdicts[&rva] {
                    FilterVerdict::AcceptsAccessViolation { witness_code } => {
                        FilterClass::AcceptsAv {
                            witness: *witness_code,
                        }
                    }
                    FilterVerdict::RejectsAccessViolation => FilterClass::RejectsAv,
                    FilterVerdict::Unknown(r) => FilterClass::Undecided {
                        reason: r.to_string(),
                    },
                },
            };
            scopes.push(ScopeCandidate {
                begin_va: base + s.begin_rva as u64,
                end_va: base + s.end_rva as u64,
                target_va: base + s.target_rva as u64,
                class,
            });
        }
        functions.push(GuardedFunction {
            begin_va: base + rf.begin_rva as u64,
            end_va: base + rf.end_rva as u64,
            scopes,
        });
    }
    let scopes: Vec<ScopeCandidate> = functions
        .iter()
        .flat_map(|f| f.scopes.iter().cloned())
        .collect();

    let guarded_before = functions.len();
    let guarded_after = functions.iter().filter(|f| f.survives()).count();
    let filters_before = filter_rvas.len();
    let filters_after = verdicts
        .values()
        .filter(|v| !matches!(v, FilterVerdict::RejectsAccessViolation))
        .count();
    let filters_undecided = verdicts
        .values()
        .filter(|v| matches!(v, FilterVerdict::Unknown(_)))
        .count();

    ModuleSehAnalysis {
        module: image.name.clone(),
        is_x64: image.machine == Machine::X64,
        guarded_before,
        guarded_after,
        filters_before,
        filters_after,
        filters_undecided,
        functions,
        scopes,
    }
}

/// Count surviving guarded locations whose region intersects the
/// execution trace (the paper's DynamoRIO cross-reference).
pub fn on_path_count(analysis: &ModuleSehAnalysis, visited: &HashSet<u64>) -> usize {
    analysis
        .functions
        .iter()
        .filter(|f| f.survives())
        .filter(|f| visited.iter().any(|&va| va >= f.begin_va && va < f.end_va))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_targets::browsers::{calib, generate_dll, DllSpec, CALIBRATION};
    use serde::Serialize;

    #[test]
    fn recovers_calibrated_counts_for_user32() {
        let c = calib("user32").unwrap();
        let img = generate_dll(&DllSpec::from_calib_x64(c, 0));
        let a = analyze_module(&img);
        assert_eq!(
            a.guarded_before as u32, c.guarded_before,
            "Table II before-SB"
        );
        assert_eq!(a.guarded_after as u32, c.guarded_after, "Table II after-SB");
        assert_eq!(
            a.filters_before as u32, c.fx64_before,
            "Table III before-SB"
        );
        assert_eq!(a.filters_after as u32, c.fx64_after, "Table III after-SB");
    }

    #[test]
    fn recovers_all_table2_rows() {
        for (i, c) in CALIBRATION.iter().filter(|c| c.in_table2).enumerate() {
            let img = generate_dll(&DllSpec::from_calib_x64(c, i));
            let a = analyze_module(&img);
            assert_eq!(
                a.guarded_before as u32, c.guarded_before,
                "{} before",
                c.name
            );
            assert_eq!(a.guarded_after as u32, c.guarded_after, "{} after", c.name);
        }
    }

    #[test]
    fn x86_filter_counts_recovered() {
        let c = calib("kernel32").unwrap();
        let img = generate_dll(&DllSpec::from_calib_x86(c, 1));
        let a = analyze_module(&img);
        assert!(!a.is_x64);
        assert_eq!(a.filters_before as u32, c.fx86_before);
        assert_eq!(a.filters_after as u32, c.fx86_after);
    }

    #[test]
    fn jscript9_has_an_undecided_filter() {
        // The "filter calls a helper" shape must surface as Undecided —
        // the paper's manual-verification bucket.
        let c = calib("jscript9").unwrap();
        let img = generate_dll(&DllSpec::from_calib_x64(c, 3));
        let a = analyze_module(&img);
        assert_eq!(a.filters_undecided, 1);
        assert!(a
            .scopes
            .iter()
            .any(|s| matches!(s.class, FilterClass::Undecided { .. })));
    }

    #[derive(Default)]
    struct MapCache {
        map: BTreeMap<String, FilterVerdict>,
    }

    impl VerdictCache for MapCache {
        fn get(&self, key: &str) -> Option<FilterVerdict> {
            self.map.get(key).cloned()
        }
        fn put(&mut self, key: &str, verdict: &FilterVerdict) {
            self.map.insert(key.to_string(), verdict.clone());
        }
    }

    /// Read-only view of a [`MapCache`]: any `put` means symbolic
    /// execution ran, which a warm rerun must never do.
    struct Frozen<'a>(&'a MapCache);

    impl VerdictCache for Frozen<'_> {
        fn get(&self, key: &str) -> Option<FilterVerdict> {
            self.0.get(key)
        }
        fn put(&mut self, key: &str, _verdict: &FilterVerdict) {
            panic!("warm rerun recomputed a verdict for {key:?}");
        }
    }

    #[test]
    fn cached_analysis_is_identical_and_skips_symex_on_rerun() {
        let c = calib("user32").unwrap();
        let img = generate_dll(&DllSpec::from_calib_x64(c, 0));

        let mut cache = MapCache::default();
        let first = analyze_module_cached(&img, &mut cache);
        assert!(!cache.map.is_empty(), "cold run must populate the cache");

        // Every verdict is served from the cache: Frozen panics on put.
        let second = analyze_module_cached(&img, &mut Frozen(&cache));

        // Cached and uncached paths agree bit-for-bit.
        let plain = analyze_module(&img);
        for a in [&first, &second] {
            assert_eq!(a.guarded_before, plain.guarded_before);
            assert_eq!(a.guarded_after, plain.guarded_after);
            assert_eq!(a.filters_before, plain.filters_before);
            assert_eq!(a.filters_after, plain.filters_after);
            assert_eq!(a.filters_undecided, plain.filters_undecided);
        }
        assert_eq!(first.to_json(), plain.to_json());
        assert_eq!(second.to_json(), plain.to_json());
    }

    #[test]
    fn filter_keys_are_content_addressed() {
        let c = calib("user32").unwrap();
        let img = generate_dll(&DllSpec::from_calib_x64(c, 0));
        let rvas: Vec<u32> = img
            .runtime_functions
            .iter()
            .flat_map(|rf| rf.unwind.scopes.iter())
            .filter_map(|s| match s.filter {
                FilterRef::Function(rva) => Some(rva),
                FilterRef::CatchAll => None,
            })
            .collect();
        assert!(!rvas.is_empty());
        for &rva in &rvas {
            let bytes = filter_code_bytes(&img, rva);
            assert!(!bytes.is_empty(), "filter at {rva:#x} has code bytes");
            // Key is a pure function of the code bytes + machine.
            assert_eq!(
                filter_key(&img, rva),
                format!("x64:{}", crate::stable_hash::sha256_hex(&bytes))
            );
        }
        // A different module produces a different image hash.
        let other = generate_dll(&DllSpec::from_calib_x64(calib("ntdll").unwrap(), 1));
        assert_ne!(image_content_hash(&img), image_content_hash(&other));
        assert_eq!(image_content_hash(&img), image_content_hash(&img));
    }

    #[test]
    fn on_path_cross_reference() {
        let c = calib("xmllite").unwrap();
        let img = generate_dll(&DllSpec::from_calib_x64(c, 7));
        let a = analyze_module(&img);
        // Simulate a trace that visited the first surviving function.
        let first = a.functions.iter().find(|f| f.survives()).unwrap();
        let mut visited = HashSet::new();
        visited.insert(first.begin_va);
        assert_eq!(on_path_count(&a, &visited), 1);
        assert_eq!(on_path_count(&a, &HashSet::new()), 0);
    }
}
