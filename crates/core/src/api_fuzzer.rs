//! Windows API fuzzing and the §V-B funnel.
//!
//! Reproduces the paper's pipeline:
//!
//! 1. **Corpus fuzzing** — every API function with pointer arguments is
//!    invoked with invalid pointers; functions that return gracefully
//!    (instead of raising) are *crash-resistant candidates* (the paper
//!    found 400 of 11,521).
//! 2. **Call-site harvesting** — browse workloads run under an API-call
//!    monitor that records which candidates appear on the execution path
//!    (25) and which of those are invoked from a JavaScript context (12),
//!    detected by walking the dynamic call stack.
//! 3. **Pointer-argument classification** — for each JS-reachable call,
//!    every pointer argument is classified: stack-allocated short-lived
//!    out-parameter, dereferenced by the caller outside the API, or a
//!    volatile pointer with no references stored in writable memory. An
//!    argument with none of these exclusions would be controllable; the
//!    paper (and this reproduction) finds **zero** — the negative result.

use cr_os::windows::api::{execute_api, ApiOutcome, ApiTable};
use cr_os::OsHook;
use cr_targets::browsers::ie::{browse, IeSim};
use cr_vm::{Cpu, Hook, Memory};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Invalid pointer used while fuzzing.
pub const FUZZ_BAD_PTR: u64 = 0xdead_0000;

/// Why a JS-reachable pointer argument is not attacker-controllable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, serde::Serialize)]
pub enum ArgExclusion {
    /// Short-lived stack out-parameter (corrupting it corrupts `rsp`).
    StackAllocated,
    /// The caller dereferences the pointer outside the API.
    DereferencedOutside,
    /// No writable memory cell holds the pointer value (volatile).
    VolatileHeapPointer,
    /// No exclusion found — the argument would be controllable.
    Controllable,
}

/// One harvested API call.
#[derive(Debug, Clone, serde::Serialize)]
pub struct ApiCallRecord {
    /// API name.
    pub name: String,
    /// Whether the dynamic call stack included the JS engine entry.
    pub in_js_context: bool,
    /// Per-pointer-argument exclusions.
    pub arg_exclusions: Vec<ArgExclusion>,
}

/// The full §V-B funnel.
#[derive(Debug, Clone, serde::Serialize)]
pub struct FunnelReport {
    /// Total API functions in the corpus.
    pub total: usize,
    /// Functions with at least one pointer argument (fuzz inputs).
    pub with_pointer_args: usize,
    /// Crash-resistant candidates (graceful under invalid pointers).
    pub crash_resistant: usize,
    /// Candidates observed on the browse execution path.
    pub on_execution_path: usize,
    /// Candidates triggered from a JavaScript context.
    pub js_reachable: usize,
    /// Candidates with a controllable pointer argument.
    pub usable: usize,
    /// Exclusion histogram over JS-reachable pointer arguments.
    pub exclusions: BTreeMap<String, usize>,
}

/// Phase 1: fuzz the corpus with invalid pointers; return the
/// crash-resistant candidate names.
pub fn fuzz_corpus(api: &ApiTable) -> BTreeSet<String> {
    let mut survivors = BTreeSet::new();
    for spec in api.specs() {
        if !spec.has_pointer_arg() {
            continue;
        }
        // Empty address space: every pointer is invalid.
        let mut mem = Memory::new();
        let args = [
            FUZZ_BAD_PTR,
            FUZZ_BAD_PTR + 0x1000,
            FUZZ_BAD_PTR + 0x2000,
            8,
        ];
        match execute_api(spec, args, &mut mem, 0) {
            ApiOutcome::Returned(_) => {
                survivors.insert(spec.name.clone());
            }
            ApiOutcome::Faulted(_) => {}
            // Scheduling outcomes don't dereference the bad pointers.
            ApiOutcome::SleepFor(_) | ApiOutcome::RegisterVeh(_) => {}
        }
    }
    survivors
}

/// Phase 2+3 monitor: harvest API calls, JS-context flags and argument
/// classifications during a browse workload.
pub struct HarvestMonitor {
    api: ApiTable,
    js_entry: u64,
    call_stack: Vec<u64>,
    recent_accesses: VecDeque<u64>,
    /// All harvested call records.
    pub records: Vec<ApiCallRecord>,
}

impl HarvestMonitor {
    /// Monitor for a process whose JS engine entry point is `js_entry`.
    pub fn new(api: ApiTable, js_entry: u64) -> HarvestMonitor {
        HarvestMonitor {
            api,
            js_entry,
            call_stack: Vec::new(),
            recent_accesses: VecDeque::with_capacity(64),
            records: Vec::new(),
        }
    }

    fn classify_arg(&self, cpu: &Cpu, mem: &Memory, ptr: u64) -> ArgExclusion {
        let rsp = cpu.reg(cr_isa::Reg::Rsp);
        if ptr.wrapping_sub(rsp.wrapping_sub(0x10000)) < 0x20000 {
            return ArgExclusion::StackAllocated;
        }
        if self
            .recent_accesses
            .iter()
            .any(|&a| a >= ptr && a < ptr + 16)
        {
            return ArgExclusion::DereferencedOutside;
        }
        // Scan writable memory for any cell holding the pointer value.
        let needle = ptr.to_le_bytes();
        let mut page_buf = vec![0u8; 4096];
        for (base, prot) in mem.pages() {
            if !prot.w {
                continue;
            }
            if mem.peek(base, &mut page_buf).is_err() {
                continue;
            }
            if page_buf.chunks_exact(8).any(|c| c == needle) {
                return ArgExclusion::Controllable;
            }
        }
        ArgExclusion::VolatileHeapPointer
    }
}

impl Hook for HarvestMonitor {
    fn on_mem_read(&mut self, _cpu: &Cpu, va: u64, _len: usize) {
        if self.recent_accesses.len() >= 64 {
            self.recent_accesses.pop_front();
        }
        self.recent_accesses.push_back(va);
    }

    fn on_call(&mut self, _cpu: &Cpu, _ret_to: u64, target: u64) {
        self.call_stack.push(target);
    }

    fn on_ret(&mut self, _cpu: &Cpu, _ret_to: u64) {
        self.call_stack.pop();
    }
}

impl OsHook for HarvestMonitor {
    fn on_api_call(&mut self, name: &str, cpu: &Cpu, mem: &Memory) {
        let in_js = self.call_stack.contains(&self.js_entry);
        let spec = self
            .api
            .spec_at(self.api.address_of(name))
            .expect("known api")
            .clone();
        let arg_regs = [
            cr_isa::Reg::Rcx,
            cr_isa::Reg::Rdx,
            cr_isa::Reg::R8,
            cr_isa::Reg::R9,
        ];
        let mut exclusions = Vec::new();
        for (i, at) in spec.args.iter().enumerate().take(4) {
            if at.is_pointer() {
                let ptr = cpu.reg(arg_regs[i]);
                exclusions.push(self.classify_arg(cpu, mem, ptr));
            }
        }
        self.records.push(ApiCallRecord {
            name: name.to_string(),
            in_js_context: in_js,
            arg_exclusions: exclusions,
        });
    }
}

/// Run the full funnel against an IE-sim built with a generated corpus.
pub fn run_funnel(sim: &mut IeSim, sites: usize) -> FunnelReport {
    let api = sim.proc.api.clone();
    let total = api.specs().len();
    let with_pointer_args = api.specs().iter().filter(|s| s.has_pointer_arg()).count();
    let survivors = fuzz_corpus(&api);

    let mut mon = HarvestMonitor::new(api, sim.process_script);
    browse(sim, sites, &mut mon);

    let mut on_path: BTreeSet<&str> = BTreeSet::new();
    let mut js_reachable: BTreeSet<&str> = BTreeSet::new();
    let mut usable: BTreeSet<&str> = BTreeSet::new();
    let mut exclusions: BTreeMap<String, usize> = BTreeMap::new();
    for rec in &mon.records {
        if !survivors.contains(&rec.name) {
            continue;
        }
        on_path.insert(&rec.name);
        if rec.in_js_context {
            js_reachable.insert(&rec.name);
            let mut all_excluded = true;
            for e in &rec.arg_exclusions {
                *exclusions.entry(format!("{e:?}")).or_default() += 1;
                if *e == ArgExclusion::Controllable {
                    all_excluded = false;
                }
            }
            if !all_excluded {
                usable.insert(&rec.name);
            }
        }
    }

    FunnelReport {
        total,
        with_pointer_args,
        crash_resistant: survivors.len(),
        on_execution_path: on_path.len(),
        js_reachable: js_reachable.len(),
        usable: usable.len(),
        exclusions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_targets::browsers::ie;

    #[test]
    fn fuzzing_finds_graceful_functions() {
        let api = ApiTable::with_corpus(500, 42);
        let survivors = fuzz_corpus(&api);
        assert!(survivors.contains("VirtualQuery"));
        assert!(survivors.contains("IsBadReadPtr"));
        assert!(survivors.contains("GetPwrCapabilities"));
        assert!(!survivors.contains("ReadFile"), "raw-deref APIs fault");
        assert!(!survivors.contains("EnterCriticalSection"));
        // Some generated graceful functions survive too.
        assert!(survivors.iter().any(|s| s.starts_with("ApiFn")));
    }

    #[test]
    fn funnel_collapses_to_zero_usable() {
        let mut sim = ie::build_with_corpus(2000, 7);
        let report = run_funnel(&mut sim, 2);
        assert!(report.total > 2000);
        assert!(report.with_pointer_args < report.total);
        assert!(report.crash_resistant < report.with_pointer_args);
        assert_eq!(report.on_execution_path, 25, "render 13 + JS 12");
        assert_eq!(report.js_reachable, 12);
        assert_eq!(report.usable, 0, "the paper's negative result");
        // All three exclusion categories appear.
        assert!(report.exclusions.contains_key("StackAllocated"));
        assert!(report.exclusions.contains_key("DereferencedOutside"));
        assert!(report.exclusions.contains_key("VolatileHeapPointer"));
    }
}
