//! Focused unit tests for the discovery monitors: candidate recording at
//! syscall boundaries, per-thread shadow-bank isolation, and the
//! corruption monitor's poke/restore bookkeeping.

use cr_core::syscall_finder::{CorruptMonitor, FinderMonitor, BAD_POINTER};
use cr_image::{ElfImage, ElfSegment, SegPerm};
use cr_isa::{Asm, Mem as M, Reg};
use cr_os::linux::syscall::nr;
use cr_os::linux::{LinuxProc, RunExit};
use cr_vm::NullHook;
use std::collections::BTreeSet;
use Reg::*;

const DATA: u64 = 0x60_0000;

fn one_shot(build: impl FnOnce(&mut Asm)) -> ElfImage {
    let mut a = Asm::new(0x40_0000);
    a.global("entry");
    build(&mut a);
    a.mov_ri(Rax, nr::EXIT_GROUP);
    a.zero(Rdi);
    a.syscall();
    let asm = a.assemble().unwrap();
    ElfImage {
        entry: asm.sym("entry"),
        segments: vec![
            ElfSegment {
                vaddr: asm.base,
                memsz: asm.code.len() as u64,
                data: asm.code,
                perm: SegPerm::RX,
            },
            ElfSegment {
                vaddr: DATA,
                memsz: 0x1000,
                data: vec![0; 0x100],
                perm: SegPerm::RW,
            },
        ],
        symbols: asm.symbols,
    }
}

#[test]
fn memory_resident_pointer_becomes_candidate() {
    // write(1, ptr-from-data, 4): the buffer pointer is loaded from the
    // data segment → candidate with the exact source cell.
    let img = one_shot(|a| {
        a.mov_ri(R9, DATA + 0x40);
        a.mov_ri(R10, DATA + 0x80);
        a.store(M::base(R9), R10); // data[0x40] = &data[0x80]
        a.mov_ri(Rdi, 1);
        a.mov_ri(R11, DATA + 0x40);
        a.load(Rsi, M::base(R11)); // rsi loaded FROM writable memory
        a.mov_ri(Rdx, 4);
        a.mov_ri(Rax, nr::WRITE);
        a.syscall();
    });
    let mut mon = FinderMonitor::new(vec![(DATA, 0x1000)]);
    let mut p = LinuxProc::load(&img);
    assert_eq!(p.run(100_000, &mut mon), RunExit::Exited(0));
    let cand = mon
        .candidates
        .get(&(nr::WRITE, 1))
        .expect("write arg1 candidate");
    assert_eq!(
        cand.sources.iter().copied().collect::<Vec<_>>(),
        vec![DATA + 0x40]
    );
}

#[test]
fn stack_built_pointer_is_not_a_candidate() {
    // write(1, rsp-relative, 4): pointer from lea — nothing the attacker's
    // write primitive can corrupt, so no candidate.
    let img = one_shot(|a| {
        a.sub_ri(Rsp, 64);
        a.mov_ri(Rdi, 1);
        a.lea(Rsi, M::base(Rsp));
        a.mov_ri(Rdx, 4);
        a.mov_ri(Rax, nr::WRITE);
        a.syscall();
    });
    let mut mon = FinderMonitor::new(vec![(DATA, 0x1000)]);
    let mut p = LinuxProc::load(&img);
    p.run(100_000, &mut mon);
    assert!(mon.candidates.is_empty(), "{:?}", mon.candidates);
    assert!(mon.observed.contains(&nr::WRITE));
}

#[test]
fn network_taint_flags_candidates_too() {
    // read() fills a buffer; a pointer derived from its CONTENT is the
    // classic tainted-pointer candidate even without a memory source.
    let img = one_shot(|a| {
        // Seed a "network-like" flow: read(0, data+0x80, 8) — fd 0 is the
        // console and returns 0 bytes; instead use the memory path: taint
        // is seeded by the monitor on syscall return, so emulate a recv
        // by reading from a connection-less console is empty. Use the
        // data cell directly: load a value from attacker memory and pass
        // it as a pointer after arithmetic.
        a.mov_ri(R11, DATA + 0x10);
        a.load(Rsi, M::base(R11));
        a.add_ri(Rsi, 8); // pointer arithmetic keeps provenance
        a.mov_ri(Rdi, 1);
        a.mov_ri(Rdx, 1);
        a.mov_ri(Rax, nr::WRITE);
        a.syscall();
    });
    let mut mon = FinderMonitor::new(vec![(DATA, 0x1000)]);
    let mut p = LinuxProc::load(&img);
    p.run(100_000, &mut mon);
    let cand = mon.candidates.get(&(nr::WRITE, 1)).expect("candidate");
    assert!(cand.sources.contains(&(DATA + 0x10)));
}

#[test]
fn corrupt_monitor_pokes_and_restores() {
    let img = one_shot(|a| {
        a.mov_ri(R9, DATA);
        a.mov_ri(R10, DATA + 0x80);
        a.store(M::base(R9), R10);
        // Load the pointer twice; the monitor poisons the cell pre-load.
        a.mov_ri(R11, DATA);
        a.load(Rsi, M::base(R11));
        a.mov_ri(R11, DATA);
        a.load(Rbx, M::base(R11));
    });
    let cells: BTreeSet<u64> = [DATA].into_iter().collect();
    let mut cm = CorruptMonitor::new(cells, BAD_POINTER);
    let mut p = LinuxProc::load(&img);
    p.run(100_000, &mut cm);
    assert!(cm.pokes >= 1);
    assert_eq!(cm.originals[&DATA], DATA + 0x80, "original value recorded");
    // After the run the cell holds the poison; restore puts it back.
    assert_eq!(p.mem.read_u64(DATA).unwrap(), BAD_POINTER);
    cm.restore(&mut p.mem);
    assert_eq!(p.mem.read_u64(DATA).unwrap(), DATA + 0x80);
}

#[test]
fn per_thread_banks_do_not_cross_contaminate() {
    // Parent loads a tracked pointer; child (clone) loads an untracked
    // constant into the same register; both then issue write() — only the
    // parent's call may be a candidate.
    let img = one_shot(|a| {
        // stack for child
        a.zero(Rdi);
        a.mov_ri(Rsi, 0x4000);
        a.mov_ri(Rax, nr::MMAP);
        a.syscall();
        a.add_ri(Rax, 0x3000);
        a.mov_rr(Rsi, Rax);
        a.zero(Rdi);
        a.mov_ri(Rax, nr::CLONE);
        a.syscall();
        a.cmp_ri(Rax, 0);
        let child = a.fresh();
        a.jcc(cr_isa::Cond::E, child);
        // parent: tracked pointer → write
        a.mov_ri(R9, DATA);
        a.mov_ri(R10, DATA + 0x80);
        a.store(M::base(R9), R10);
        a.mov_ri(R11, DATA);
        a.load(Rsi, M::base(R11));
        a.mov_ri(Rdi, 1);
        a.mov_ri(Rdx, 2);
        a.mov_ri(Rax, nr::WRITE);
        a.syscall();
        a.mov_ri(Rax, nr::EXIT);
        a.zero(Rdi);
        a.syscall();
        a.bind(child);
        // child: untracked constant pointer → sendto (distinct syscall so
        // the two calls are distinguishable in the candidate map)
        a.mov_ri(Rsi, DATA + 0x90);
        a.mov_ri(Rdi, 1);
        a.mov_ri(Rdx, 2);
        a.zero(R10);
        a.mov_ri(Rax, nr::SENDTO);
        a.syscall();
        a.mov_ri(Rax, nr::EXIT);
        a.zero(Rdi);
        a.syscall();
    });
    let mut mon = FinderMonitor::new(vec![(DATA, 0x1000)]);
    let mut p = LinuxProc::load(&img);
    p.run(1_000_000, &mut mon);
    assert!(
        mon.candidates.contains_key(&(nr::WRITE, 1)),
        "parent flagged"
    );
    assert!(
        !mon.candidates.contains_key(&(nr::SENDTO, 1)),
        "child's constant pointer must not inherit the parent's provenance: {:?}",
        mon.candidates.keys().collect::<Vec<_>>()
    );
    let _ = NullHook;
}
