//! Worker lifecycle: spawn, heartbeat, restart, quarantine.
//!
//! Each worker is one in-process [`cr_serve::Server`] on its own
//! ephemeral port — the same frames a remote node would speak, so the
//! supervision protocol is exactly what a multi-host deployment uses.
//! Health is judged by *serving-phase* liveness, not process
//! liveness: a Pong that shows queued work, an idle executor, and a
//! stalled completion counter across consecutive heartbeats counts as
//! a miss just like a dead socket does. A worker past the miss
//! threshold is killed and restarted with exponential backoff; one
//! that keeps crash-looping is quarantined out of the ring.

use crate::{FleetConfig, FleetCounters};
use cr_campaign::AnalysisCache;
use cr_chaos::Site;
use cr_serve::{Client, ServeConfig, Server, ServerHandle};
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// One worker's place in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerState {
    /// Answering heartbeats; in the routing set.
    Healthy,
    /// Missed at least one heartbeat; still routed (the next pong
    /// clears it, the miss threshold kills it).
    Suspect,
    /// Being rotated out by a rolling restart; routed around, drains
    /// its in-flight work, then restarts gracefully.
    Draining,
    /// Killed or crashed; the monitor restarts it with backoff.
    Dead,
    /// Crash-looped past the quarantine threshold; never restarted,
    /// never routed.
    Quarantined,
}

impl WorkerState {
    /// Stable name for stats and logs.
    pub fn name(self) -> &'static str {
        match self {
            WorkerState::Healthy => "healthy",
            WorkerState::Suspect => "suspect",
            WorkerState::Draining => "draining",
            WorkerState::Dead => "dead",
            WorkerState::Quarantined => "quarantined",
        }
    }
}

/// One supervised worker slot. The slot persists across restarts; the
/// server behind it is generation-stamped.
struct WorkerSlot {
    id: usize,
    generation: u32,
    addr: String,
    handle: ServerHandle,
    thread: Option<JoinHandle<()>>,
    state: WorkerState,
    /// Consecutive heartbeat misses (transport failure, injected
    /// drop, or serving-phase wedge).
    misses: u32,
    /// Restarts since the last sustained-healthy streak; drives the
    /// backoff exponent and the quarantine verdict.
    consecutive_restarts: u32,
    /// Healthy pongs since the last restart; a long enough streak
    /// forgives the restart history.
    healthy_pongs: u32,
    /// Completion counter and queue depth from the previous pong, for
    /// the serving-phase wedge check.
    last_completed: u64,
    last_queue_len: u64,
    /// Router-maintained count of dispatches outstanding on this
    /// worker (drain gating for rolling restarts).
    in_flight: Arc<AtomicU64>,
    /// Persistent heartbeat connection, reused across ticks so the
    /// monitor does not open a fresh socket every `heartbeat_ms`;
    /// dropped whenever the worker changes generation.
    probe: Option<Client>,
}

/// Spawns and monitors the worker set.
pub struct Supervisor {
    cfg: FleetConfig,
    slots: Mutex<Vec<WorkerSlot>>,
    counters: Arc<FleetCounters>,
    /// Fleet-wide replica of the warm cache, pushed into every fresh
    /// generation so a restarted node comes back warm.
    replica: Arc<AnalysisCache>,
    shutdown: AtomicBool,
    /// Monotone heartbeat ordinal, the scope key for injected
    /// `fleet.heartbeat.drop` decisions.
    hb_seq: AtomicU64,
}

/// A healthy-pong streak long enough to forgive past restarts.
const FORGIVE_AFTER_PONGS: u32 = 10;

fn spawn_server(cfg: &FleetConfig) -> io::Result<(String, ServerHandle, JoinHandle<()>)> {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".into(),
        jobs: cfg.worker_jobs,
        // The router owns fleet-level admission; give each worker
        // enough queue that router-approved work is never bounced.
        admit_capacity: cfg.admit_capacity.max(16),
        busy_retry_ms: 10,
        cache_dir: None, // fleet warmth travels by replication, not disk
        ..ServeConfig::default()
    })?;
    let addr = server.local_addr()?.to_string();
    let handle = server.handle();
    let thread = std::thread::spawn(move || {
        let _ = server.run();
    });
    Ok((addr, handle, thread))
}

impl Supervisor {
    /// Spawn the initial worker set.
    ///
    /// # Errors
    ///
    /// Propagates the first worker's bind failure.
    pub fn start(
        cfg: FleetConfig,
        counters: Arc<FleetCounters>,
        replica: Arc<AnalysisCache>,
    ) -> io::Result<Supervisor> {
        let mut slots = Vec::with_capacity(cfg.workers);
        for id in 0..cfg.workers {
            let (addr, handle, thread) = spawn_server(&cfg)?;
            counters.spawned.fetch_add(1, Ordering::Relaxed);
            slots.push(WorkerSlot {
                id,
                generation: 0,
                addr,
                handle,
                thread: Some(thread),
                state: WorkerState::Healthy,
                misses: 0,
                consecutive_restarts: 0,
                healthy_pongs: 0,
                last_completed: 0,
                last_queue_len: 0,
                in_flight: Arc::new(AtomicU64::new(0)),
                probe: None,
            });
        }
        Ok(Supervisor {
            cfg,
            slots: Mutex::new(slots),
            counters,
            replica,
            shutdown: AtomicBool::new(false),
            hb_seq: AtomicU64::new(0),
        })
    }

    /// Whether the router may dispatch to this worker right now.
    pub fn routable(&self, id: usize) -> bool {
        self.slots
            .lock()
            .unwrap()
            .get(id)
            .is_some_and(|s| matches!(s.state, WorkerState::Healthy | WorkerState::Suspect))
    }

    /// The worker's current address and in-flight gauge, if routable.
    pub fn dispatch_target(&self, id: usize) -> Option<(String, u32, Arc<AtomicU64>)> {
        let slots = self.slots.lock().unwrap();
        let s = slots.get(id)?;
        matches!(s.state, WorkerState::Healthy | WorkerState::Suspect)
            .then(|| (s.addr.clone(), s.generation, s.in_flight.clone()))
    }

    /// Kill a worker abruptly (the node-crash chaos action). Returns
    /// whether the id named a live worker.
    pub fn kill_worker(&self, id: usize) -> bool {
        let mut slots = self.slots.lock().unwrap();
        let Some(s) = slots.get_mut(id) else {
            return false;
        };
        if matches!(s.state, WorkerState::Quarantined | WorkerState::Dead) {
            return false;
        }
        s.handle.kill();
        s.state = WorkerState::Dead;
        s.probe = None;
        self.counters.kills.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// `(id, state, generation)` for every slot.
    pub fn worker_states(&self) -> Vec<(usize, WorkerState, u32)> {
        self.slots
            .lock()
            .unwrap()
            .iter()
            .map(|s| (s.id, s.state, s.generation))
            .collect()
    }

    /// Stop monitoring and gracefully drain every worker that is
    /// still alive (killed/quarantined ones are just joined).
    pub fn shutdown_all(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        let mut slots = self.slots.lock().unwrap();
        for s in slots.iter_mut() {
            s.handle.shutdown();
        }
        for s in slots.iter_mut() {
            if let Some(t) = s.thread.take() {
                let _ = t.join();
            }
        }
    }

    /// One heartbeat pass over the fleet: ping the living, restart the
    /// dead, quarantine the crash-looping. Called by the monitor
    /// thread every `heartbeat_ms`.
    pub fn heartbeat_tick(&self) {
        if self.shutdown.load(Ordering::Relaxed) {
            return;
        }
        for id in 0..self.cfg.workers {
            if self.shutdown.load(Ordering::Relaxed) {
                return;
            }
            self.heartbeat_one(id);
        }
    }

    fn heartbeat_one(&self, id: usize) {
        // Probe outside the slots lock: a slow or dead peer must not
        // stall dispatch-target lookups for the whole fleet.
        let (addr, state, thread_done, probe_conn) = {
            let mut slots = self.slots.lock().unwrap();
            let s = &mut slots[id];
            if matches!(s.state, WorkerState::Quarantined | WorkerState::Draining) {
                return;
            }
            let done = s.thread.as_ref().is_some_and(JoinHandle::is_finished);
            (s.addr.clone(), s.state, done, s.probe.take())
        };
        if state == WorkerState::Dead || thread_done {
            if state != WorkerState::Dead {
                // The server thread exited underneath us (a crash the
                // kill path did not mediate).
                let mut slots = self.slots.lock().unwrap();
                slots[id].state = WorkerState::Dead;
            }
            self.restart(id);
            return;
        }

        let seq = self.hb_seq.fetch_add(1, Ordering::Relaxed);
        let probe = self.probe(&addr, probe_conn);
        let dropped = probe.is_ok()
            && self.cfg.injector.as_ref().is_some_and(|inj| {
                // Keyed per (worker, heartbeat ordinal): each drop
                // decision is independent, mirroring real packet loss.
                inj.fires(Site::FleetHeartbeatDrop, ((id as u64) << 32) | seq, 0)
                    .is_some()
            });
        if dropped {
            self.counters
                .heartbeats_dropped
                .fetch_add(1, Ordering::Relaxed);
        }

        let mut slots = self.slots.lock().unwrap();
        let s = &mut slots[id];
        if matches!(s.state, WorkerState::Quarantined | WorkerState::Draining) {
            return;
        }
        match probe {
            Ok((client, pong)) if !dropped => {
                // Serving-phase wedge: work queued, executor idle, and
                // no completion progress since the last pong.
                let wedged = pong.queue_len > 0
                    && !pong.executing
                    && s.last_queue_len > 0
                    && pong.completed == s.last_completed;
                s.last_completed = pong.completed;
                s.last_queue_len = pong.queue_len;
                self.counters.pongs_ok.fetch_add(1, Ordering::Relaxed);
                if wedged {
                    self.miss(s);
                } else {
                    s.misses = 0;
                    s.state = WorkerState::Healthy;
                    s.healthy_pongs += 1;
                    if s.healthy_pongs >= FORGIVE_AFTER_PONGS {
                        s.consecutive_restarts = 0;
                    }
                }
                if s.state != WorkerState::Dead && s.addr == addr {
                    s.probe = Some(client);
                }
            }
            Ok((client, _)) => {
                // An injected drop loses the pong, not the socket.
                self.miss(s);
                if s.state != WorkerState::Dead && s.addr == addr {
                    s.probe = Some(client);
                }
            }
            Err(_) => self.miss(s),
        }
        let needs_restart = s.state == WorkerState::Dead;
        drop(slots);
        if needs_restart {
            self.restart(id);
        }
    }

    /// One short-deadline Ping round trip, reusing the slot's
    /// persistent heartbeat connection when one survives. A failed
    /// ping on a reused socket falls back to a fresh connection before
    /// counting as a miss, so a benignly-closed pool socket (e.g. a
    /// worker that restarted behind us) judges the worker exactly like
    /// a fresh probe would.
    fn probe(&self, addr: &str, reused: Option<Client>) -> io::Result<(Client, cr_serve::Pong)> {
        if let Some(mut client) = reused {
            if let Ok(pong) = client.ping() {
                return Ok((client, pong));
            }
        }
        let mut client = Client::connect(addr)?;
        client.set_read_timeout(Some(Duration::from_millis(
            self.cfg.heartbeat_ms.max(25) * 4,
        )))?;
        let pong = client.ping()?;
        Ok((client, pong))
    }

    fn miss(&self, s: &mut WorkerSlot) {
        s.misses += 1;
        s.healthy_pongs = 0;
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        if s.misses >= self.cfg.miss_threshold {
            s.handle.kill();
            s.state = WorkerState::Dead;
            s.probe = None;
            self.counters.deaths.fetch_add(1, Ordering::Relaxed);
        } else {
            s.state = WorkerState::Suspect;
        }
    }

    /// Restart a dead worker: join the old generation, back off
    /// exponentially, spawn the next generation, replicate the warm
    /// cache into it. Past the quarantine threshold the slot is
    /// quarantined instead.
    fn restart(&self, id: usize) {
        let (old_thread, restarts) = {
            let mut slots = self.slots.lock().unwrap();
            let s = &mut slots[id];
            if s.state != WorkerState::Dead {
                return;
            }
            if s.consecutive_restarts >= self.cfg.quarantine_after {
                s.state = WorkerState::Quarantined;
                self.counters.quarantined.fetch_add(1, Ordering::Relaxed);
                return;
            }
            (s.thread.take(), s.consecutive_restarts)
        };
        if let Some(t) = old_thread {
            let _ = t.join();
        }
        // Exponential backoff between restart attempts, capped; a
        // crash-looping worker burns quarantine budget, not CPU.
        let backoff = self
            .cfg
            .restart_backoff_ms
            .saturating_mul(1u64 << restarts.min(8))
            .min(self.cfg.restart_backoff_cap_ms);
        std::thread::sleep(Duration::from_millis(backoff));
        if self.shutdown.load(Ordering::Relaxed) {
            return;
        }
        let _span = cr_trace::span_advisory(cr_trace::Stage::Schedule, "fleet.restart");
        match spawn_server(&self.cfg) {
            Ok((addr, handle, thread)) => {
                self.counters.spawned.fetch_add(1, Ordering::Relaxed);
                self.counters.restarts.fetch_add(1, Ordering::Relaxed);
                let records = self.replica.export_jsonl();
                if !records.is_empty() {
                    // Warm the fresh generation before it takes
                    // traffic; failure is benign (it just runs cold).
                    if let Ok(mut c) = Client::connect(&addr) {
                        if c.sync_push(&records).is_ok() {
                            self.counters.replications.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                let mut slots = self.slots.lock().unwrap();
                let s = &mut slots[id];
                s.generation += 1;
                s.addr = addr;
                s.handle = handle;
                s.thread = Some(thread);
                s.state = WorkerState::Healthy;
                s.misses = 0;
                s.healthy_pongs = 0;
                s.consecutive_restarts += 1;
                s.last_completed = 0;
                s.last_queue_len = 0;
                s.probe = None;
            }
            Err(_) => {
                // Could not bind a replacement: leave the slot dead;
                // the next tick retries with more backoff.
                let mut slots = self.slots.lock().unwrap();
                slots[id].consecutive_restarts += 1;
            }
        }
    }

    /// Rotate one worker out gracefully for a rolling restart: route
    /// around it, wait for its in-flight work to drain, drain the
    /// server itself, then bring up the next generation warm.
    pub fn rotate(&self, id: usize) {
        let (addr, in_flight) = {
            let mut slots = self.slots.lock().unwrap();
            let Some(s) = slots.get_mut(id) else { return };
            if !matches!(s.state, WorkerState::Healthy | WorkerState::Suspect) {
                return;
            }
            s.state = WorkerState::Draining;
            (s.addr.clone(), s.in_flight.clone())
        };
        // Wait for the router's outstanding dispatches to finish; the
        // router stopped selecting this worker when it became
        // non-routable.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while in_flight.load(Ordering::Relaxed) > 0 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        // Graceful drain of the worker itself (it may still be
        // finishing the campaign behind an already-accounted reply).
        if let Ok(mut c) = Client::connect(&addr) {
            let _ = c.shutdown();
        } else {
            let slots = self.slots.lock().unwrap();
            slots[id].handle.shutdown();
        }
        let old_thread = self.slots.lock().unwrap()[id].thread.take();
        if let Some(t) = old_thread {
            let _ = t.join();
        }
        match spawn_server(&self.cfg) {
            Ok((addr, handle, thread)) => {
                self.counters.spawned.fetch_add(1, Ordering::Relaxed);
                let records = self.replica.export_jsonl();
                if !records.is_empty() {
                    if let Ok(mut c) = Client::connect(&addr) {
                        if c.sync_push(&records).is_ok() {
                            self.counters.replications.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                let mut slots = self.slots.lock().unwrap();
                let s = &mut slots[id];
                s.generation += 1;
                s.addr = addr;
                s.handle = handle;
                s.thread = Some(thread);
                s.state = WorkerState::Healthy;
                s.misses = 0;
                s.healthy_pongs = 0;
                s.last_completed = 0;
                s.last_queue_len = 0;
                s.probe = None;
                self.counters
                    .rolling_restarts
                    .fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => {
                // No replacement came up: hand the drained slot to the
                // heartbeat restart path (backoff + quarantine
                // accounting) instead of stranding it in Draining.
                let mut slots = self.slots.lock().unwrap();
                slots[id].state = WorkerState::Dead;
            }
        }
    }
}
