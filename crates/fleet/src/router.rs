//! The fleet front: one listener speaking the ordinary serve
//! protocol, so any [`cr_serve::Client`] talks to a fleet without
//! knowing it is one.
//!
//! ## Admission, coalescing, idempotent failover
//!
//! A Request is admitted once per *admission key* — the hash of its
//! payload bytes. Concurrent requests with the same key coalesce onto
//! one in-flight admission and all receive the single campaign's
//! frames; results are deterministic, so byte-identical payloads have
//! byte-identical answers. Each admission is dispatched to the worker
//! owning its *route key* (hashed from the spec's task labels, i.e.
//! the modules involved), and on worker death, partition, or any
//! transport failure it fails over along the consistent-hash ring.
//! The admission uid dedups across attempts: however many workers the
//! request visits, each waiter gets exactly one Result frame, and the
//! deterministic document is byte-identical regardless of which node
//! produced it.

use crate::supervisor::Supervisor;
use crate::{FleetConfig, FleetCounters};
use cr_campaign::json::Json;
use cr_campaign::{AnalysisCache, CampaignSpec};
use cr_chaos::{derive_seed, hash_str, mix64, Site};
use cr_serve::proto::{negotiate, read_frame, write_frame, Frame, FrameError, FrameKind};
use cr_serve::Client;
use std::collections::{HashMap, HashSet};
use std::io::{self, Read};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Idle poll period for connection readers and the dispatch retry
/// sleep.
const POLL_MS: u64 = 25;

/// Idle poll period for the accept loop — short, because a client's
/// very first frame waits on it.
const ACCEPT_POLL_MS: u64 = 2;

/// Upper bound on full ring sweeps for one admission before the fleet
/// gives up and reports the last error. Between sweeps the dispatcher
/// sleeps, so this is also the patience window for the supervisor to
/// restart a crashed owner.
const MAX_SWEEPS: u32 = 200;

/// The writer half of one front connection, shared between its reader
/// thread and every dispatcher delivering to it.
struct FrontConn {
    stream: Mutex<TcpStream>,
    conn_id: u64,
    dead: AtomicBool,
}

impl FrontConn {
    fn send(&self, frame: &Frame) -> bool {
        if self.dead.load(Ordering::Relaxed) {
            return false;
        }
        let mut stream = self.stream.lock().unwrap();
        let ok = write_frame(&mut *stream, frame).is_ok();
        if !ok {
            self.dead.store(true, Ordering::Relaxed);
        }
        ok
    }
}

/// One in-flight admission: the connections waiting on its single
/// execution.
struct Admission {
    waiters: Vec<(Arc<FrontConn>, u64)>,
}

/// The admission table plus an index of every `(conn, request_id)`
/// pair currently waiting on some admission. The index answers the
/// duplicate-id check and [`Router::conn_has_waiters`] without walking
/// every admission's waiter list — under 8 dispatcher threads that
/// linear scan (held inside the admissions lock) was a measurable
/// serialization point.
struct Admissions {
    by_key: HashMap<u64, Admission>,
    waiting: HashSet<(u64, u64)>,
}

/// The delivery ledger. Live connections' counts stay queryable (the
/// exactly-once invariant witness); a closed connection's entries are
/// retired into the `ledger_retired` / `ledger_violations` counters so
/// the map is bounded by live connections, not fleet lifetime.
struct Ledger {
    /// Front connections currently open.
    live: HashSet<u64>,
    /// `(front conn, client request id) -> Result frames delivered`.
    /// The fleet invariant: every admitted pair maps to exactly 1.
    counts: HashMap<(u64, u64), u32>,
}

/// Everything the router threads share.
pub struct Router {
    cfg: FleetConfig,
    supervisor: Arc<Supervisor>,
    ring: crate::ring::HashRing,
    replica: Arc<AnalysisCache>,
    counters: Arc<FleetCounters>,
    admissions: Mutex<Admissions>,
    delivered: Mutex<Ledger>,
    /// Warm dispatch connections, tagged with the worker generation
    /// they were opened against: a fresh connect pays the worker's
    /// accept-poll latency, so the router keeps healthy connections and
    /// lazily discards ones from dead generations. One shard (lock) per
    /// worker: dispatchers bound for different workers never contend on
    /// checkout/checkin.
    pool: Vec<Mutex<Vec<(u32, Client)>>>,
    shutdown: AtomicBool,
    next_uid: AtomicU64,
}

impl Router {
    pub(crate) fn new(
        cfg: FleetConfig,
        supervisor: Arc<Supervisor>,
        replica: Arc<AnalysisCache>,
        counters: Arc<FleetCounters>,
    ) -> Router {
        let ring = crate::ring::HashRing::new(cfg.workers);
        let pool = (0..cfg.workers.max(1))
            .map(|_| Mutex::new(Vec::new()))
            .collect();
        Router {
            cfg,
            supervisor,
            ring,
            replica,
            counters,
            admissions: Mutex::new(Admissions {
                by_key: HashMap::new(),
                waiting: HashSet::new(),
            }),
            delivered: Mutex::new(Ledger {
                live: HashSet::new(),
                counts: HashMap::new(),
            }),
            pool,
            shutdown: AtomicBool::new(false),
            next_uid: AtomicU64::new(0),
        }
    }

    pub(crate) fn shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    pub(crate) fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Admissions still in flight (join gates on zero).
    pub(crate) fn inflight(&self) -> usize {
        self.admissions.lock().unwrap().by_key.len()
    }

    /// The live delivery ledger, sorted: `((conn, request),
    /// results_sent)`. Closed connections' entries live on only as the
    /// `ledger_retired` / `ledger_violations` counters.
    pub(crate) fn delivery_counts(&self) -> Vec<((u64, u64), u32)> {
        let mut v: Vec<_> = self
            .delivered
            .lock()
            .unwrap()
            .counts
            .iter()
            .map(|(&k, &n)| (k, n))
            .collect();
        v.sort_unstable();
        v
    }

    /// Whether `conn_id` still has waiters on any in-flight admission.
    fn conn_has_waiters(&self, conn_id: u64) -> bool {
        self.admissions
            .lock()
            .unwrap()
            .waiting
            .iter()
            .any(|&(c, _)| c == conn_id)
    }

    /// Accept loop; returns when shutdown is requested.
    pub(crate) fn serve(self: &Arc<Router>, listener: &TcpListener) -> io::Result<()> {
        listener.set_nonblocking(true)?;
        let mut conn_threads = Vec::new();
        let mut next_conn_id = 0u64;
        while !self.is_shutdown() {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    // Reap readers whose connection already ended.
                    conn_threads.retain(|t: &std::thread::JoinHandle<()>| !t.is_finished());
                    let conn_id = next_conn_id;
                    next_conn_id += 1;
                    let router = self.clone();
                    conn_threads.push(std::thread::spawn(move || {
                        router.serve_conn(stream, conn_id);
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(ACCEPT_POLL_MS));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        for t in conn_threads {
            let _ = t.join();
        }
        Ok(())
    }

    /// One front connection: handshake, then frames until EOF or
    /// shutdown.
    fn serve_conn(self: &Arc<Router>, stream: TcpStream, conn_id: u64) {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(Duration::from_millis(POLL_MS)));
        let reader_stream = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        };
        let conn = Arc::new(FrontConn {
            stream: Mutex::new(stream),
            conn_id,
            dead: AtomicBool::new(false),
        });
        self.delivered.lock().unwrap().live.insert(conn_id);
        self.conn_loop(&reader_stream, &conn);
        self.retire_conn(conn_id);
    }

    /// Drop a closed connection from the ledger, folding its delivery
    /// counts into the retired/violation counters.
    fn retire_conn(&self, conn_id: u64) {
        let mut ledger = self.delivered.lock().unwrap();
        ledger.live.remove(&conn_id);
        let done: Vec<(u64, u64)> = ledger
            .counts
            .keys()
            .filter(|k| k.0 == conn_id)
            .copied()
            .collect();
        for key in done {
            if let Some(n) = ledger.counts.remove(&key) {
                let counter = if n == 1 {
                    &self.counters.ledger_retired
                } else {
                    &self.counters.ledger_violations
                };
                counter.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// The frame loop behind [`Router::serve_conn`].
    fn conn_loop(self: &Arc<Router>, reader_stream: &TcpStream, conn: &Arc<FrontConn>) {
        let conn_id = conn.conn_id;
        let mut negotiated = false;
        loop {
            let frame = match read_polled(reader_stream) {
                Ok(Some(f)) => f,
                Ok(None) => {
                    if self.is_shutdown() {
                        break;
                    }
                    continue;
                }
                Err(_) => break,
            };
            if !negotiated {
                if frame.kind != FrameKind::Hello {
                    conn.send(&error_frame(
                        frame.request_id,
                        "protocol",
                        "first frame must be Hello",
                    ));
                    break;
                }
                let (min, max) = parse_hello(&frame.payload);
                match negotiate(min, max) {
                    Some(version) => {
                        negotiated = true;
                        conn.send(&Frame::text(
                            FrameKind::HelloAck,
                            0,
                            format!(
                                "{{\"version\":{version},\"server\":\"crash-resist-fleet\",\
                                 \"workers\":{}}}",
                                self.cfg.workers
                            ),
                        ));
                    }
                    None => {
                        conn.send(&error_frame(0, "version", "no shared protocol version"));
                        break;
                    }
                }
                continue;
            }
            match frame.kind {
                FrameKind::Request => self.handle_request(conn, &frame),
                FrameKind::Ping => {
                    let inflight = self.inflight();
                    conn.send(&Frame::text(
                        FrameKind::Pong,
                        frame.request_id,
                        format!(
                            "{{\"queue_len\":{inflight},\"executing\":{},\"completed\":{},\
                             \"draining\":{}}}",
                            inflight > 0,
                            self.counters.results_delivered.load(Ordering::Relaxed),
                            self.is_shutdown(),
                        ),
                    ));
                }
                FrameKind::Shutdown => {
                    self.shutdown();
                    conn.send(&Frame::text(FrameKind::ShutdownAck, 0, "{\"drain\":true}"));
                    break;
                }
                FrameKind::Cancel => {
                    // An admission may be shared by coalesced waiters on
                    // other connections; one client must not cancel it.
                    conn.send(&error_frame(
                        frame.request_id,
                        "unsupported",
                        "the fleet router does not cancel shared admissions",
                    ));
                }
                other => {
                    conn.send(&error_frame(
                        frame.request_id,
                        "protocol",
                        &format!("unexpected client frame kind {other:?}"),
                    ));
                    break;
                }
            }
            if self.is_shutdown() && !self.conn_has_waiters(conn_id) {
                // Draining with nothing left to deliver here: stop
                // reading, so a client that keeps sending frames
                // cannot hold the reader thread — and Fleet::join —
                // hostage past shutdown.
                break;
            }
        }
    }

    /// Admit (or coalesce) one Request frame.
    fn handle_request(self: &Arc<Router>, conn: &Arc<FrontConn>, frame: &Frame) {
        let request_id = frame.request_id;
        let Ok(text) = std::str::from_utf8(&frame.payload) else {
            conn.send(&error_frame(
                request_id,
                "bad_request",
                "payload is not UTF-8",
            ));
            return;
        };
        let spec = match CampaignSpec::from_json(text) {
            Ok(s) => s,
            Err(e) => {
                conn.send(&error_frame(request_id, "bad_request", &e));
                return;
            }
        };
        if self.is_shutdown() {
            conn.send(&error_frame(
                request_id,
                "shutting_down",
                "fleet is draining",
            ));
            return;
        }
        {
            let delivered = self.delivered.lock().unwrap();
            if delivered.counts.contains_key(&(conn.conn_id, request_id)) {
                drop(delivered);
                conn.send(&error_frame(
                    request_id,
                    "duplicate",
                    "request id already used on this connection",
                ));
                return;
            }
        }
        // The admission key is the payload hash: byte-identical
        // requests share one execution. The route key hashes only the
        // task labels, so the same modules land on the same worker
        // regardless of option keys like `jobs`.
        let admission_key = mix64(derive_seed(&[hash_str(text)]));
        let mut labels: Vec<String> = spec.tasks.iter().map(|t| t.label()).collect();
        labels.sort_unstable();
        let route_key = hash_str(&labels.join(","));

        let mut admissions = self.admissions.lock().unwrap();
        // A request id may wait on at most one admission per
        // connection: reusing it while the first is still in flight —
        // even under a different payload — is a duplicate, or the
        // exactly-once ledger would double-count the pair. The waiting
        // index answers this in one hash probe.
        if admissions.waiting.contains(&(conn.conn_id, request_id)) {
            drop(admissions);
            conn.send(&error_frame(
                request_id,
                "duplicate",
                "request id already waiting on this connection",
            ));
            return;
        }
        if let Some(adm) = admissions.by_key.get_mut(&admission_key) {
            // Coalesce: ride the in-flight execution.
            adm.waiters.push((conn.clone(), request_id));
            admissions.waiting.insert((conn.conn_id, request_id));
            drop(admissions);
            self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
            self.counters
                .requests_admitted
                .fetch_add(1, Ordering::Relaxed);
            conn.send(&Frame::text(
                FrameKind::Progress,
                request_id,
                "{\"event\":\"coalesced\"}",
            ));
            return;
        }
        if admissions.by_key.len() >= self.cfg.admit_capacity {
            drop(admissions);
            self.counters
                .busy_rejections
                .fetch_add(1, Ordering::Relaxed);
            conn.send(&Frame::text(
                FrameKind::Busy,
                request_id,
                format!(
                    "{{\"code\":\"busy\",\"retry_after_ms\":{}}}",
                    self.cfg.busy_retry_ms
                ),
            ));
            return;
        }
        let uid = self.next_uid.fetch_add(1, Ordering::Relaxed) + 1;
        admissions.by_key.insert(
            admission_key,
            Admission {
                waiters: vec![(conn.clone(), request_id)],
            },
        );
        admissions.waiting.insert((conn.conn_id, request_id));
        drop(admissions);
        self.counters
            .requests_admitted
            .fetch_add(1, Ordering::Relaxed);
        conn.send(&Frame::text(
            FrameKind::Progress,
            request_id,
            format!("{{\"event\":\"queued\",\"admission\":{uid}}}"),
        ));
        let router = self.clone();
        let payload = text.to_string();
        std::thread::spawn(move || {
            router.dispatch(admission_key, route_key, uid, &payload);
        });
    }

    /// Drive one admission to completion: route, fail over, deliver.
    fn dispatch(self: &Arc<Router>, admission_key: u64, route_key: u64, uid: u64, payload: &str) {
        let mut failovers = 0u32;
        let mut last_error = String::from("no routable workers");
        let mut outcome = None;
        let mut tries = 0u32;
        'sweeps: for sweep in 0..MAX_SWEEPS {
            for id in self.ring.sequence(route_key) {
                let Some((addr, generation, in_flight)) = self.supervisor.dispatch_target(id)
                else {
                    continue;
                };
                // Injected partition: this attempt cannot reach the
                // worker; the ring successor takes it, and the next
                // sweep (attempt index > 0) heals.
                if self.cfg.injector.as_ref().is_some_and(|inj| {
                    inj.fires(Site::FleetPartition, derive_seed(&[uid, id as u64]), sweep)
                        .is_some()
                }) {
                    self.counters.partitions.fetch_add(1, Ordering::Relaxed);
                    failovers += 1;
                    last_error = format!("partitioned from worker {id}");
                    continue;
                }
                in_flight.fetch_add(1, Ordering::Relaxed);
                let result = self.try_worker(id, &addr, generation, uid, tries, payload);
                tries += 1;
                in_flight.fetch_sub(1, Ordering::Relaxed);
                match result {
                    Ok(answer) => {
                        outcome = Some((id, answer));
                        break 'sweeps;
                    }
                    Err(e) => {
                        let _span =
                            cr_trace::span_advisory(cr_trace::Stage::Schedule, "fleet.failover");
                        self.counters.failovers.fetch_add(1, Ordering::Relaxed);
                        failovers += 1;
                        last_error = e.to_string();
                    }
                }
            }
            if self.is_shutdown() {
                break;
            }
            // Whole ring failed this sweep: give the supervisor time
            // to restart someone before trying again.
            std::thread::sleep(Duration::from_millis(POLL_MS));
        }

        let waiters = {
            let mut admissions = self.admissions.lock().unwrap();
            let waiters = admissions
                .by_key
                .remove(&admission_key)
                .map(|a| a.waiters)
                .unwrap_or_default();
            for (conn, request_id) in &waiters {
                admissions.waiting.remove(&(conn.conn_id, *request_id));
            }
            waiters
        };
        match outcome {
            Some((worker, answer)) => {
                if self.cfg.replicate && answer.fresh {
                    self.replicate_from(worker, &answer.addr);
                }
                for (conn, request_id) in &waiters {
                    // The frame writes happen outside the delivery
                    // ledger lock: a slow or dead front connection must
                    // not stall every other dispatcher's bookkeeping
                    // (the per-conn stream mutex already serializes
                    // writers on one connection).
                    conn.send(&Frame::text(
                        FrameKind::Progress,
                        *request_id,
                        format!(
                            "{{\"event\":\"fleet\",\"worker\":{worker},\"failovers\":{failovers}}}"
                        ),
                    ));
                    conn.send(&Frame {
                        kind: FrameKind::Result,
                        request_id: *request_id,
                        payload: answer.result.clone(),
                    });
                    conn.send(&Frame::text(
                        FrameKind::Done,
                        *request_id,
                        answer.done.clone(),
                    ));
                    let mut delivered = self.delivered.lock().unwrap();
                    if delivered.live.contains(&conn.conn_id) {
                        *delivered
                            .counts
                            .entry((conn.conn_id, *request_id))
                            .or_insert(0) += 1;
                    } else {
                        // The waiter's connection closed while we
                        // executed: its ledger was already swept, so
                        // this single delivery retires directly.
                        self.counters.ledger_retired.fetch_add(1, Ordering::Relaxed);
                    }
                    drop(delivered);
                    self.counters
                        .results_delivered
                        .fetch_add(1, Ordering::Relaxed);
                }
            }
            None => {
                for (conn, request_id) in &waiters {
                    conn.send(&error_frame(*request_id, "fleet_exhausted", &last_error));
                }
            }
        }
    }

    /// One attempt against one worker. `Ok` only for a complete,
    /// uncancelled answer; anything else fails over.
    fn try_worker(
        &self,
        id: usize,
        addr: &str,
        generation: u32,
        uid: u64,
        attempt: u32,
        payload: &str,
    ) -> io::Result<Answer> {
        let mut client = match self.checkout(id, generation) {
            Some(c) => c,
            None => {
                let mut c = Client::connect(addr)?;
                c.set_read_timeout(Some(Duration::from_millis(self.cfg.request_timeout_ms)))?;
                c
            }
        };
        // Node-kill chaos fires per admission, on the admission's
        // first dispatch attempt only: the worker is killed right
        // after it has the request — the hardest point in the
        // request's life to lose a node — and the failover retries
        // must then succeed, not be killed in turn.
        let kill = self
            .cfg
            .injector
            .as_ref()
            .is_some_and(|inj| inj.fires(Site::FleetNodeKill, uid, attempt).is_some())
            || (self.cfg.kill_at_admission == Some(uid) && attempt == 0);
        let mut response = client.request_with_hook(payload, || {
            if kill {
                self.supervisor.kill_worker(id);
            }
        })?;
        // A deep worker queue can still answer Busy under pathological
        // load; honor the hint a few times before failing over.
        for _ in 0..5 {
            if response.busy.is_none() {
                break;
            }
            let hint = response.retry_after_ms().unwrap_or(10);
            std::thread::sleep(Duration::from_millis(hint));
            response = client.request(payload)?;
        }
        if let Some(err) = response.error {
            return Err(io::Error::other(format!("worker {id} error: {err}")));
        }
        let status = response.done_str("status");
        let (Some(result), Some(done)) = (response.result, response.done.clone()) else {
            return Err(io::Error::other(format!(
                "worker {id}: incomplete response"
            )));
        };
        if status.as_deref() != Some("ok") {
            // A cancelled or degraded answer is not the deterministic
            // document the fleet promised; treat it as a failed node.
            return Err(io::Error::other(format!(
                "worker {id}: status {status:?}, failing over"
            )));
        }
        let fresh = done.contains("\"parse\":\"fresh\"");
        // A conn that just served a clean answer is worth keeping —
        // unless this attempt killed the worker out from under it.
        if !kill {
            self.checkin(id, generation, client);
        }
        Ok(Answer {
            addr: addr.to_string(),
            result,
            done,
            fresh,
        })
    }

    /// Take a pooled connection to worker `id` from its shard, lazily
    /// discarding any opened against an older (dead) generation.
    fn checkout(&self, id: usize, generation: u32) -> Option<Client> {
        let mut conns = self.pool.get(id)?.lock().unwrap();
        while let Some((g, client)) = conns.pop() {
            if g == generation {
                return Some(client);
            }
        }
        None
    }

    /// Return a healthy connection for reuse; a handful per worker
    /// covers the dispatcher concurrency.
    fn checkin(&self, id: usize, generation: u32, client: Client) {
        let Some(shard) = self.pool.get(id) else {
            return;
        };
        let mut conns = shard.lock().unwrap();
        if conns.len() < 8 {
            conns.push((generation, client));
        }
    }

    /// Pull the answering worker's warm records into the fleet replica
    /// and push the merged store to every other routable worker.
    fn replicate_from(&self, worker: usize, addr: &str) {
        let _span = cr_trace::span_advisory(cr_trace::Stage::Schedule, "fleet.replicate");
        let Ok(mut source) = Client::connect(addr) else {
            return;
        };
        let Ok(records) = source.sync_pull() else {
            return;
        };
        let (merged, _rejected) = self.replica.merge_jsonl(&records);
        if merged == 0 {
            return;
        }
        self.counters
            .records_replicated
            .fetch_add(merged, Ordering::Relaxed);
        let export = self.replica.export_jsonl();
        let mut pushed = false;
        for id in 0..self.cfg.workers {
            if id == worker {
                continue;
            }
            let Some((sibling, _, _)) = self.supervisor.dispatch_target(id) else {
                continue;
            };
            if let Ok(mut c) = Client::connect(&sibling) {
                pushed |= c.sync_push(&export).is_ok();
            }
        }
        if pushed {
            self.counters.replications.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// One worker's accepted answer.
struct Answer {
    addr: String,
    result: Vec<u8>,
    done: String,
    fresh: bool,
}

fn error_frame(request_id: u64, code: &str, message: &str) -> Frame {
    use serde::Serialize;
    Frame::text(
        FrameKind::Error,
        request_id,
        format!(
            "{{\"code\":{},\"message\":{}}}",
            code.to_json(),
            message.to_json()
        ),
    )
}

/// `(min, max)` from a Hello payload; malformed degrades to `(0, 0)`,
/// which negotiation rejects gracefully.
fn parse_hello(payload: &[u8]) -> (u16, u16) {
    let Ok(text) = std::str::from_utf8(payload) else {
        return (0, 0);
    };
    let Ok(v) = Json::parse(text) else {
        return (0, 0);
    };
    let field = |k: &str| {
        v.get(k)
            .and_then(Json::as_u64)
            .unwrap_or(0)
            .min(u64::from(u16::MAX)) as u16
    };
    (field("min"), field("max"))
}

/// One polled frame read: `Ok(None)` means idle (no byte arrived
/// within the poll window), `Err` means the connection is over.
fn read_polled(stream: &TcpStream) -> Result<Option<Frame>, FrameError> {
    let mut reader = PolledReader {
        stream,
        consumed: 0,
    };
    match read_frame(&mut reader) {
        Ok(f) => Ok(Some(f)),
        Err(e) if e.is_timeout() && reader.consumed == 0 => Ok(None),
        Err(e) => Err(e),
    }
}

/// Like the server's reader, but with a fixed mid-frame patience of
/// one second — fleet clients are other programs, not slow humans.
struct PolledReader<'a> {
    stream: &'a TcpStream,
    consumed: usize,
}

impl Read for PolledReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut stalled = Duration::ZERO;
        loop {
            match self.stream.read(buf) {
                Ok(n) => {
                    self.consumed += n;
                    return Ok(n);
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if self.consumed == 0 {
                        return Err(e);
                    }
                    stalled += Duration::from_millis(POLL_MS);
                    if stalled >= Duration::from_secs(1) {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "peer stalled mid-frame",
                        ));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}
