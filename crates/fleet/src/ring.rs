//! Consistent-hash routing over the worker set.
//!
//! Each worker owns [`VNODES`] points on a `u64` ring; a request's
//! route key lands on the first point at or after it (wrapping). The
//! property the fleet cares about: removing one worker only moves the
//! keys that worker owned — every other module keeps hitting the node
//! whose caches are warm for it. Failover follows the same ring: the
//! successor sequence visits every worker exactly once, so a dead
//! node's keys drain onto its ring neighbors instead of reshuffling
//! the whole fleet.

use cr_chaos::{derive_seed, mix64};

/// Virtual nodes per worker — enough to spread 8 workers' arcs to
/// within a few percent of uniform without making the point table
/// noticeable.
const VNODES: u64 = 64;

/// Namespace for ring point hashing, so a ring point can never
/// collide with a route key derived from module names.
const RING_SALT: u64 = 0x52_49_4E_47; // "RING"

/// The ring: sorted `(point, worker)` pairs.
#[derive(Debug, Clone)]
pub struct HashRing {
    points: Vec<(u64, usize)>,
    workers: usize,
}

impl HashRing {
    /// A ring over workers `0..workers`.
    pub fn new(workers: usize) -> HashRing {
        let mut points = Vec::with_capacity(workers * VNODES as usize);
        for id in 0..workers {
            for v in 0..VNODES {
                points.push((mix64(derive_seed(&[RING_SALT, id as u64, v])), id));
            }
        }
        points.sort_unstable();
        HashRing { points, workers }
    }

    /// How many workers the ring was built over.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The owner of `key`: the worker at the first ring point at or
    /// after it, wrapping at the top.
    pub fn route(&self, key: u64) -> Option<usize> {
        self.sequence(key).into_iter().next()
    }

    /// Every worker in failover order for `key`: the owner first, then
    /// each distinct worker as the ring is walked clockwise. Callers
    /// filter by liveness; the order itself is deterministic in `key`.
    pub fn sequence(&self, key: u64) -> Vec<usize> {
        let mut order = Vec::with_capacity(self.workers);
        if self.points.is_empty() {
            return order;
        }
        let start = self.points.partition_point(|&(p, _)| p < key);
        let n = self.points.len();
        for i in 0..n {
            let (_, id) = self.points[(start + i) % n];
            if !order.contains(&id) {
                order.push(id);
                if order.len() == self.workers {
                    break;
                }
            }
        }
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_chaos::hash_str;

    #[test]
    fn sequence_visits_every_worker_once() {
        let ring = HashRing::new(5);
        for key in 0..100u64 {
            let seq = ring.sequence(mix64(key));
            let mut sorted = seq.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3, 4], "key {key}: {seq:?}");
        }
    }

    #[test]
    fn routing_is_deterministic_and_spread() {
        let ring = HashRing::new(8);
        let mut owned = [0usize; 8];
        for key in 0..4096u64 {
            let a = ring.route(mix64(key)).unwrap();
            let b = ring.route(mix64(key)).unwrap();
            assert_eq!(a, b);
            owned[a] += 1;
        }
        // With 64 vnodes each, no worker should own a wildly
        // disproportionate share of a uniform keyspace.
        for (id, &n) in owned.iter().enumerate() {
            assert!(n > 4096 / 8 / 4, "worker {id} owns only {n}/4096 keys");
        }
    }

    #[test]
    fn losing_a_worker_only_moves_its_own_keys() {
        // Consistency: route keys under an 8-ring; for keys not owned
        // by worker 3, the failover sequence with 3 skipped must start
        // at the same owner.
        let ring = HashRing::new(8);
        for key in 0..2048u64 {
            let key = mix64(key ^ 0xABCD);
            let seq = ring.sequence(key);
            let owner = seq[0];
            let survivor = *seq.iter().find(|&&id| id != 3).unwrap();
            if owner != 3 {
                assert_eq!(survivor, owner, "key moved although its owner survived");
            }
        }
    }

    #[test]
    fn module_keys_map_to_stable_workers() {
        let ring = HashRing::new(4);
        let key = hash_str("seh:xmllite.dll");
        assert_eq!(ring.route(key), ring.route(key));
        assert!(ring.route(key).unwrap() < 4);
    }
}
