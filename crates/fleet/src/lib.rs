//! # cr-fleet — the supervised serve fleet
//!
//! The paper's discovery loop survives thousands of injected faults
//! in the *target*; this crate gives the serve tier the same
//! property. One [`Fleet`] runs N [`cr_serve::Server`] workers behind
//! a router that speaks the ordinary framed protocol, so any
//! [`cr_serve::Client`] — the CLI, the load bench, the tests — talks
//! to a fleet without knowing it is one.
//!
//! Three mechanisms, layered:
//!
//! * **Supervision** ([`supervisor`]) — heartbeat Pings judge each
//!   worker by its *serving phase* (queue depth, executor activity,
//!   completion progress), not just socket liveness; a worker past
//!   the miss threshold is killed and restarted with exponential
//!   backoff, and a crash-looping one is quarantined out of the ring.
//! * **Routing** ([`router`]) — requests are consistent-hashed by the
//!   modules they analyze, so the same module keeps hitting the node
//!   whose caches are warm for it; byte-identical concurrent requests
//!   coalesce onto one admission; on worker death or partition the
//!   admission fails over along the ring, and the delivery ledger
//!   guarantees each admitted request exactly one Result frame.
//! * **Replication** — warm-cache records (the same CRC-framed JSONL
//!   the cache persists) are pulled from whichever node analyzed a
//!   module fresh and pushed fleet-wide, so the second request for a
//!   module is warm on *every* node, and a restarted generation comes
//!   back warm before it takes traffic.
//!
//! ## The failover idempotency contract
//!
//! Campaign results are deterministic functions of the spec: the
//! Result frame is byte-identical to a one-shot `crash-resist
//! campaign` run no matter which worker answers, how many times the
//! admission failed over, or how warm the answering node was. That is
//! what makes failover safe to do aggressively — re-executing on a
//! sibling cannot produce a different answer, so the router only has
//! to guarantee *delivery* exactly once, not *execution* exactly
//! once. The chaos plan `fleet` (node kills, partitions, heartbeat
//! drops) exists to hammer exactly this contract.

use cr_campaign::AnalysisCache;
use cr_chaos::FaultInjector;
use std::io;
use std::net::TcpListener;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

pub mod ring;
pub mod router;
pub mod supervisor;

pub use ring::HashRing;
pub use supervisor::{Supervisor, WorkerState};

/// Fleet knobs.
#[derive(Clone)]
pub struct FleetConfig {
    /// Front bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker count.
    pub workers: usize,
    /// Campaign threads inside each worker.
    pub worker_jobs: usize,
    /// Heartbeat period, milliseconds.
    pub heartbeat_ms: u64,
    /// Consecutive heartbeat misses before a worker is declared dead.
    pub miss_threshold: u32,
    /// Base backoff before a restart, milliseconds; doubles per
    /// consecutive restart.
    pub restart_backoff_ms: u64,
    /// Backoff ceiling, milliseconds.
    pub restart_backoff_cap_ms: u64,
    /// Consecutive restarts before a slot is quarantined.
    pub quarantine_after: u32,
    /// Concurrent admissions before the router answers Busy.
    pub admit_capacity: usize,
    /// `retry_after_ms` hint in router Busy replies.
    pub busy_retry_ms: u64,
    /// Per-attempt read deadline on a dispatched request,
    /// milliseconds — a wedged worker surfaces as a failover, not a
    /// hung admission.
    pub request_timeout_ms: u64,
    /// Whether to replicate warm-cache records fleet-wide.
    pub replicate: bool,
    /// Fault injector for the fleet sites (`fleet.node.kill`,
    /// `fleet.partition`, `fleet.heartbeat.drop`).
    pub injector: Option<Arc<FaultInjector>>,
    /// Test/CI hook: kill the serving worker mid-request at this
    /// admission ordinal (1-based), once — the deterministic
    /// equivalent of one `fleet.node.kill` firing.
    pub kill_at_admission: Option<u64>,
}

impl Default for FleetConfig {
    fn default() -> Self {
        FleetConfig {
            addr: "127.0.0.1:0".into(),
            workers: 3,
            worker_jobs: 1,
            heartbeat_ms: 25,
            miss_threshold: 3,
            restart_backoff_ms: 10,
            restart_backoff_cap_ms: 250,
            quarantine_after: 6,
            admit_capacity: 32,
            busy_retry_ms: 25,
            request_timeout_ms: 30_000,
            replicate: true,
            injector: None,
            kill_at_admission: None,
        }
    }
}

/// Fleet-lifetime counters (all advisory: timing- and
/// scheduling-dependent by nature).
#[derive(Default)]
pub struct FleetCounters {
    /// Worker processes spawned (initial + restarts).
    pub spawned: AtomicU64,
    /// Dead workers restarted.
    pub restarts: AtomicU64,
    /// Slots quarantined for crash-looping.
    pub quarantined: AtomicU64,
    /// Workers killed abruptly (injected or explicit).
    pub kills: AtomicU64,
    /// Workers declared dead by the miss threshold.
    pub deaths: AtomicU64,
    /// Injected partitions (dispatch attempts rerouted).
    pub partitions: AtomicU64,
    /// Injected heartbeat drops.
    pub heartbeats_dropped: AtomicU64,
    /// Healthy pongs observed.
    pub pongs_ok: AtomicU64,
    /// Heartbeat misses (transport, drop, or serving-phase wedge).
    pub misses: AtomicU64,
    /// Requests admitted at the router (including coalesced riders).
    pub requests_admitted: AtomicU64,
    /// Requests that coalesced onto an in-flight admission.
    pub coalesced: AtomicU64,
    /// Requests bounced with Busy at the router.
    pub busy_rejections: AtomicU64,
    /// Result frames delivered to waiters.
    pub results_delivered: AtomicU64,
    /// Dispatch attempts that failed over to another worker.
    pub failovers: AtomicU64,
    /// Fleet-wide replication rounds completed.
    pub replications: AtomicU64,
    /// Cache records merged into the fleet replica.
    pub records_replicated: AtomicU64,
    /// Workers rotated by graceful rolling restarts.
    pub rolling_restarts: AtomicU64,
    /// Delivery-ledger entries retired (front connection closed) with
    /// the exactly-once invariant intact.
    pub ledger_retired: AtomicU64,
    /// Delivery-ledger entries retired with a delivery count other
    /// than one: the exactly-once invariant was violated.
    pub ledger_violations: AtomicU64,
}

/// A point-in-time snapshot of [`FleetCounters`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct FleetStats {
    /// Configured worker count.
    pub workers: u64,
    /// Worker processes spawned (initial + restarts).
    pub spawned: u64,
    /// Dead workers restarted.
    pub restarts: u64,
    /// Slots quarantined for crash-looping.
    pub quarantined: u64,
    /// Workers killed abruptly (injected or explicit).
    pub kills: u64,
    /// Workers declared dead by the miss threshold.
    pub deaths: u64,
    /// Injected partitions.
    pub partitions: u64,
    /// Injected heartbeat drops.
    pub heartbeats_dropped: u64,
    /// Healthy pongs observed.
    pub pongs_ok: u64,
    /// Heartbeat misses.
    pub misses: u64,
    /// Requests admitted at the router.
    pub requests_admitted: u64,
    /// Requests coalesced onto an in-flight admission.
    pub coalesced: u64,
    /// Requests bounced with Busy at the router.
    pub busy_rejections: u64,
    /// Result frames delivered.
    pub results_delivered: u64,
    /// Failovers across workers.
    pub failovers: u64,
    /// Replication rounds completed.
    pub replications: u64,
    /// Records merged into the fleet replica.
    pub records_replicated: u64,
    /// Rolling-restart rotations.
    pub rolling_restarts: u64,
    /// Ledger entries retired with exactly one delivery.
    pub ledger_retired: u64,
    /// Ledger entries retired with a delivery count other than one.
    pub ledger_violations: u64,
}

impl FleetCounters {
    fn snapshot(&self, workers: usize) -> FleetStats {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        FleetStats {
            workers: workers as u64,
            spawned: get(&self.spawned),
            restarts: get(&self.restarts),
            quarantined: get(&self.quarantined),
            kills: get(&self.kills),
            deaths: get(&self.deaths),
            partitions: get(&self.partitions),
            heartbeats_dropped: get(&self.heartbeats_dropped),
            pongs_ok: get(&self.pongs_ok),
            misses: get(&self.misses),
            requests_admitted: get(&self.requests_admitted),
            coalesced: get(&self.coalesced),
            busy_rejections: get(&self.busy_rejections),
            results_delivered: get(&self.results_delivered),
            failovers: get(&self.failovers),
            replications: get(&self.replications),
            records_replicated: get(&self.records_replicated),
            rolling_restarts: get(&self.rolling_restarts),
            ledger_retired: get(&self.ledger_retired),
            ledger_violations: get(&self.ledger_violations),
        }
    }
}

/// A running fleet: supervisor + monitor thread + router front.
pub struct Fleet {
    cfg: FleetConfig,
    supervisor: Arc<Supervisor>,
    router: Arc<router::Router>,
    counters: Arc<FleetCounters>,
    addr: String,
    front: Option<JoinHandle<io::Result<()>>>,
    monitor: Option<JoinHandle<()>>,
}

impl Fleet {
    /// Spawn the workers, the heartbeat monitor, and the router front.
    ///
    /// # Errors
    ///
    /// Socket bind failure (front or any worker).
    pub fn start(cfg: FleetConfig) -> io::Result<Fleet> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?.to_string();
        let counters = Arc::new(FleetCounters::default());
        let replica = Arc::new(AnalysisCache::new());
        let supervisor = Arc::new(Supervisor::start(
            cfg.clone(),
            counters.clone(),
            replica.clone(),
        )?);
        let router = Arc::new(router::Router::new(
            cfg.clone(),
            supervisor.clone(),
            replica,
            counters.clone(),
        ));

        let monitor = {
            let supervisor = supervisor.clone();
            let router = router.clone();
            let period = Duration::from_millis(cfg.heartbeat_ms.max(5));
            std::thread::spawn(move || {
                while !router.is_shutdown() {
                    supervisor.heartbeat_tick();
                    std::thread::sleep(period);
                }
            })
        };
        let front = {
            let router = router.clone();
            std::thread::spawn(move || router.serve(&listener))
        };
        Ok(Fleet {
            cfg,
            supervisor,
            router,
            counters,
            addr,
            front: Some(front),
            monitor: Some(monitor),
        })
    }

    /// The front address clients connect to.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Current counter snapshot.
    pub fn stats(&self) -> FleetStats {
        self.counters.snapshot(self.cfg.workers)
    }

    /// The live delivery ledger: `((front_conn, request_id),
    /// results)`. The fleet invariant is that every value is exactly
    /// 1; closed connections' entries are folded into the
    /// `ledger_retired` / `ledger_violations` stats counters, so the
    /// full invariant check is "every live count is 1 and
    /// `ledger_violations` is 0".
    pub fn delivery_counts(&self) -> Vec<((u64, u64), u32)> {
        self.router.delivery_counts()
    }

    /// `(id, state, generation)` per worker slot.
    pub fn worker_states(&self) -> Vec<(usize, WorkerState, u32)> {
        self.supervisor.worker_states()
    }

    /// Kill one worker abruptly (chaos / tests). Returns whether the
    /// id named a live worker.
    pub fn kill_worker(&self, id: usize) -> bool {
        self.supervisor.kill_worker(id)
    }

    /// Rolling restart: rotate every worker through a graceful
    /// drain-and-respawn, one at a time, behind the router. In-flight
    /// and concurrent requests are never dropped — the rotating
    /// worker is routed around while it drains.
    pub fn rolling_restart(&self) {
        for id in 0..self.cfg.workers {
            self.supervisor.rotate(id);
        }
    }

    /// Begin shutdown: stop admitting, let in-flight admissions
    /// finish.
    pub fn shutdown(&self) {
        self.router.shutdown();
    }

    /// Shut down and reap everything: waits for in-flight admissions
    /// (bounded), joins the front and monitor, drains the workers.
    /// Returns the final stats.
    pub fn join(mut self) -> FleetStats {
        self.router.shutdown();
        let deadline = Instant::now() + Duration::from_secs(30);
        while self.router.inflight() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        if let Some(t) = self.front.take() {
            let _ = t.join();
        }
        if let Some(t) = self.monitor.take() {
            let _ = t.join();
        }
        self.supervisor.shutdown_all();
        self.counters.snapshot(self.cfg.workers)
    }
}
