//! The blocking client side of the framed protocol.

use crate::proto::{hello_payload, read_frame, write_frame, Frame, FrameError, FrameKind};
use cr_campaign::json::Json;
use cr_chaos::{derive_seed, mix64};
use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// Ceiling for one exponentially-backed-off Busy retry sleep.
const BACKOFF_CAP_MS: u64 = 2_000;

/// The sleep before Busy retry number `attempt` (0-based): the
/// server's `retry_after_ms` hint doubled per attempt, capped at
/// [`BACKOFF_CAP_MS`], plus seeded jitter in `[0, delay/2]` so a herd
/// of rejected clients does not re-arrive in lockstep. Deterministic
/// in `(seed, request_id, attempt)`.
pub fn backoff_delay_ms(hint_ms: u64, attempt: u32, seed: u64, request_id: u64) -> u64 {
    let doubled = hint_ms.saturating_mul(1u64 << attempt.min(16));
    let delay = doubled.clamp(1, BACKOFF_CAP_MS);
    let jitter = mix64(derive_seed(&[seed, request_id, u64::from(attempt)])) % (delay / 2 + 1);
    delay + jitter
}

/// Everything the server streamed back for one request.
#[derive(Debug, Default)]
pub struct Response {
    /// The request id this response answers.
    pub request_id: u64,
    /// Progress frame payloads, in arrival order.
    pub progress: Vec<String>,
    /// The deterministic results document, verbatim bytes.
    pub result: Option<Vec<u8>>,
    /// The final Done payload (status + advisory stats).
    pub done: Option<String>,
    /// A Busy payload, when the admission queue rejected the request.
    pub busy: Option<String>,
    /// An Error payload, when the request failed at the protocol or
    /// admission layer.
    pub error: Option<String>,
}

impl Response {
    /// Whether the request ran to a final Done frame.
    pub fn completed(&self) -> bool {
        self.done.is_some()
    }

    /// Parse `retry_after_ms` out of a Busy payload.
    pub fn retry_after_ms(&self) -> Option<u64> {
        let busy = self.busy.as_deref()?;
        Json::parse(busy).ok()?.get("retry_after_ms")?.as_u64()
    }

    /// Extract one numeric field from the Done payload.
    pub fn done_u64(&self, key: &str) -> Option<u64> {
        let done = self.done.as_deref()?;
        Json::parse(done).ok()?.get(key)?.as_u64()
    }

    /// Extract one string field from the Done payload.
    pub fn done_str(&self, key: &str) -> Option<String> {
        let done = self.done.as_deref()?;
        Some(Json::parse(done).ok()?.get(key)?.as_str()?.to_string())
    }
}

/// One serving-phase heartbeat answer (a parsed Pong payload).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pong {
    /// Admitted jobs waiting on the executor.
    pub queue_len: u64,
    /// Whether the executor is inside a campaign right now.
    pub executing: bool,
    /// Requests answered with a final Done frame so far.
    pub completed: u64,
    /// Whether the server is draining toward shutdown.
    pub draining: bool,
}

/// A negotiated connection to a resident server.
pub struct Client {
    stream: TcpStream,
    /// Protocol version agreed in the handshake.
    pub version: u16,
    next_request_id: u64,
    /// The address we connected to, kept for transparent reconnect.
    addr: String,
    /// Seed for retry jitter (see [`backoff_delay_ms`]).
    retry_seed: u64,
    /// The configured read timeout, re-applied after a transparent
    /// reconnect so a wedged server still surfaces as `TimedOut`.
    read_timeout: Option<Duration>,
}

fn other_err(e: impl std::fmt::Display) -> io::Error {
    io::Error::other(e.to_string())
}

impl Client {
    /// Connect and negotiate the protocol version.
    ///
    /// # Errors
    ///
    /// Connection failure, a rejected handshake (disjoint version
    /// ranges surface the server's Error payload), or a malformed
    /// server reply.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut client = Client {
            stream,
            version: 0,
            next_request_id: 0,
            addr: addr.to_string(),
            retry_seed: 2017,
            read_timeout: None,
        };
        client.write(&Frame::text(FrameKind::Hello, 0, hello_payload()))?;
        let ack = client.read()?;
        match ack.kind {
            FrameKind::HelloAck => {
                let payload = ack.payload_str();
                let version = Json::parse(&payload)
                    .ok()
                    .and_then(|v| v.get("version")?.as_u64())
                    .ok_or_else(|| other_err("HelloAck without version"))?;
                client.version = version as u16;
                Ok(client)
            }
            FrameKind::Error => Err(other_err(format!(
                "handshake rejected: {}",
                ack.payload_str()
            ))),
            other => Err(other_err(format!("unexpected handshake reply {other:?}"))),
        }
    }

    /// Send one campaign request (a spec JSON document, optionally
    /// with `jobs`/`retries`/`deadline_ms` option keys) and collect
    /// the full response stream.
    ///
    /// # Errors
    ///
    /// Transport failure or a malformed server frame. A Busy or Error
    /// reply is a *successful* call — inspect [`Response::busy`] /
    /// [`Response::error`].
    pub fn request(&mut self, payload: &str) -> io::Result<Response> {
        self.next_request_id += 1;
        let request_id = self.next_request_id;
        self.write(&Frame::text(FrameKind::Request, request_id, payload))?;
        self.collect(request_id)
    }

    /// Seed the deterministic retry jitter (see [`backoff_delay_ms`]);
    /// defaults to the calibration seed 2017.
    pub fn with_retry_seed(mut self, seed: u64) -> Client {
        self.retry_seed = seed;
        self
    }

    /// [`Client::request`], retrying (with a fresh request id) for as
    /// long as the server answers Busy. Each sleep starts from the
    /// server's `retry_after_ms` hint and backs off exponentially with
    /// seeded jitter ([`backoff_delay_ms`]). Campaign requests are
    /// idempotent (results are deterministic and the server dedups by
    /// request id), so one transport failure is also retried — the
    /// client reconnects once and resends before giving up.
    ///
    /// # Errors
    ///
    /// As [`Client::request`] after the reconnect budget is spent; the
    /// final Busy response is returned (not an error) when every retry
    /// was rejected. A Busy payload that does not parse to a
    /// `retry_after_ms` hint is an [`io::ErrorKind::InvalidData`]
    /// malformed-frame error — never silently treated as success.
    pub fn request_with_retry(&mut self, payload: &str, max_retries: u32) -> io::Result<Response> {
        let mut reconnected = false;
        let mut response = self.request_or_reconnect(payload, &mut reconnected)?;
        for attempt in 0..max_retries {
            if response.busy.is_none() {
                break;
            }
            let Some(hint) = response.retry_after_ms() else {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "malformed Busy payload (no retry_after_ms): {:?}",
                        response.busy.as_deref().unwrap_or_default()
                    ),
                ));
            };
            let delay = backoff_delay_ms(hint, attempt, self.retry_seed, response.request_id);
            std::thread::sleep(Duration::from_millis(delay));
            response = self.request_or_reconnect(payload, &mut reconnected)?;
        }
        if response.completed() {
            return Ok(response);
        }
        if response.busy.is_some() && response.retry_after_ms().is_none() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "malformed Busy payload (no retry_after_ms): {:?}",
                    response.busy.as_deref().unwrap_or_default()
                ),
            ));
        }
        Ok(response)
    }

    /// One request attempt with a single-reconnect budget shared
    /// across the whole retry loop.
    fn request_or_reconnect(
        &mut self,
        payload: &str,
        reconnected: &mut bool,
    ) -> io::Result<Response> {
        match self.request(payload) {
            Ok(r) => Ok(r),
            Err(e) if !*reconnected => {
                *reconnected = true;
                let fresh = Client::connect(&self.addr).map_err(|c| {
                    io::Error::new(e.kind(), format!("{e} (reconnect failed: {c})"))
                })?;
                self.stream = fresh.stream;
                self.version = fresh.version;
                // Carry the configured read deadline over to the fresh
                // socket: a reconnected client must not block forever
                // on a wedged server.
                if self.read_timeout.is_some() {
                    self.stream.set_read_timeout(self.read_timeout)?;
                }
                self.request(payload)
            }
            Err(e) => Err(e),
        }
    }

    /// Send one Request frame and run `after_send` before collecting
    /// the response — the fleet router's hook point for injecting a
    /// node kill *mid-request* (after the worker has the frame, before
    /// it answers).
    ///
    /// # Errors
    ///
    /// As [`Client::request`].
    pub fn request_with_hook(
        &mut self,
        payload: &str,
        after_send: impl FnOnce(),
    ) -> io::Result<Response> {
        self.next_request_id += 1;
        let request_id = self.next_request_id;
        self.write(&Frame::text(FrameKind::Request, request_id, payload))?;
        after_send();
        self.collect(request_id)
    }

    /// Heartbeat: send a Ping, parse the Pong. Combine with
    /// [`Client::set_read_timeout`] so a wedged peer surfaces as a
    /// timeout error, not a hung supervisor.
    ///
    /// # Errors
    ///
    /// Transport failure, an unexpected reply kind, or an unparseable
    /// Pong payload.
    pub fn ping(&mut self) -> io::Result<Pong> {
        self.next_request_id += 1;
        let id = self.next_request_id;
        self.write(&Frame::text(FrameKind::Ping, id, "{}"))?;
        let frame = self.read()?;
        if frame.kind != FrameKind::Pong {
            return Err(other_err(format!("expected Pong, got {:?}", frame.kind)));
        }
        let payload = frame.payload_str();
        let v = Json::parse(&payload).map_err(other_err)?;
        let field = |k: &str| v.get(k).and_then(Json::as_u64);
        let flag = |k: &str| v.get(k).and_then(Json::as_bool);
        Ok(Pong {
            queue_len: field("queue_len").ok_or_else(|| other_err("Pong without queue_len"))?,
            executing: flag("executing").unwrap_or(false),
            completed: field("completed").unwrap_or(0),
            draining: flag("draining").unwrap_or(false),
        })
    }

    /// Pull the server's warm-cache records (CRC-framed JSONL, the
    /// replication payload).
    ///
    /// # Errors
    ///
    /// Transport failure or an unexpected reply kind.
    pub fn sync_pull(&mut self) -> io::Result<String> {
        self.next_request_id += 1;
        let id = self.next_request_id;
        self.write(&Frame::text(FrameKind::SyncPull, id, "{}"))?;
        let frame = self.read()?;
        if frame.kind != FrameKind::SyncState {
            return Err(other_err(format!(
                "expected SyncState, got {:?}",
                frame.kind
            )));
        }
        Ok(frame.payload_str())
    }

    /// Push warm-cache records into the server; returns the server's
    /// `(merged, rejected)` line counts from its SyncAck.
    ///
    /// # Errors
    ///
    /// Transport failure or an unexpected reply kind.
    pub fn sync_push(&mut self, records: &str) -> io::Result<(u64, u64)> {
        self.next_request_id += 1;
        let id = self.next_request_id;
        self.write(&Frame::text(FrameKind::SyncPush, id, records))?;
        let frame = self.read()?;
        if frame.kind != FrameKind::SyncAck {
            return Err(other_err(format!("expected SyncAck, got {:?}", frame.kind)));
        }
        let payload = frame.payload_str();
        let v = Json::parse(&payload).map_err(other_err)?;
        let field = |k: &str| v.get(k).and_then(Json::as_u64).unwrap_or(0);
        Ok((field("merged"), field("rejected")))
    }

    /// Bound every read on this connection; `None` blocks forever.
    ///
    /// # Errors
    ///
    /// Propagates the socket's `set_read_timeout` failure.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)?;
        self.read_timeout = timeout;
        Ok(())
    }

    /// Cancel an in-flight request by id (fire-and-forget; the
    /// server's answer arrives in that request's own stream).
    ///
    /// # Errors
    ///
    /// Transport failure.
    pub fn cancel(&mut self, request_id: u64) -> io::Result<()> {
        self.write(&Frame::text(FrameKind::Cancel, request_id, "{}"))
    }

    /// Ask the server to drain and exit; waits for the ShutdownAck.
    ///
    /// # Errors
    ///
    /// Transport failure or a reply other than ShutdownAck.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.write(&Frame::text(FrameKind::Shutdown, 0, "{}"))?;
        let ack = self.read()?;
        if ack.kind == FrameKind::ShutdownAck {
            Ok(())
        } else {
            Err(other_err(format!(
                "expected ShutdownAck, got {:?}: {}",
                ack.kind,
                ack.payload_str()
            )))
        }
    }

    fn collect(&mut self, request_id: u64) -> io::Result<Response> {
        let mut response = Response {
            request_id,
            ..Response::default()
        };
        loop {
            let frame = self.read()?;
            if frame.request_id != request_id && frame.request_id != 0 {
                // A frame for another request (pipelined caller):
                // out of scope for the blocking client, skip it.
                continue;
            }
            match frame.kind {
                FrameKind::Progress => response.progress.push(frame.payload_str()),
                FrameKind::Result => response.result = Some(frame.payload),
                FrameKind::Done => {
                    response.done = Some(frame.payload_str());
                    return Ok(response);
                }
                FrameKind::Busy => {
                    response.busy = Some(frame.payload_str());
                    return Ok(response);
                }
                FrameKind::Error => {
                    response.error = Some(frame.payload_str());
                    return Ok(response);
                }
                other => {
                    return Err(other_err(format!("unexpected server frame {other:?}")));
                }
            }
        }
    }

    fn write(&mut self, frame: &Frame) -> io::Result<()> {
        write_frame(&mut self.stream, frame)
    }

    fn read(&mut self) -> io::Result<Frame> {
        match read_frame(&mut self.stream) {
            Ok(f) => Ok(f),
            Err(FrameError::Eof) => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            Err(FrameError::Io(e)) => Err(e),
            Err(e) => Err(other_err(e)),
        }
    }
}
