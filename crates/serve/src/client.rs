//! The blocking client side of the framed protocol.

use crate::proto::{hello_payload, read_frame, write_frame, Frame, FrameError, FrameKind};
use cr_campaign::json::Json;
use std::io;
use std::net::TcpStream;
use std::time::Duration;

/// Everything the server streamed back for one request.
#[derive(Debug, Default)]
pub struct Response {
    /// The request id this response answers.
    pub request_id: u64,
    /// Progress frame payloads, in arrival order.
    pub progress: Vec<String>,
    /// The deterministic results document, verbatim bytes.
    pub result: Option<Vec<u8>>,
    /// The final Done payload (status + advisory stats).
    pub done: Option<String>,
    /// A Busy payload, when the admission queue rejected the request.
    pub busy: Option<String>,
    /// An Error payload, when the request failed at the protocol or
    /// admission layer.
    pub error: Option<String>,
}

impl Response {
    /// Whether the request ran to a final Done frame.
    pub fn completed(&self) -> bool {
        self.done.is_some()
    }

    /// Parse `retry_after_ms` out of a Busy payload.
    pub fn retry_after_ms(&self) -> Option<u64> {
        let busy = self.busy.as_deref()?;
        Json::parse(busy).ok()?.get("retry_after_ms")?.as_u64()
    }

    /// Extract one numeric field from the Done payload.
    pub fn done_u64(&self, key: &str) -> Option<u64> {
        let done = self.done.as_deref()?;
        Json::parse(done).ok()?.get(key)?.as_u64()
    }

    /// Extract one string field from the Done payload.
    pub fn done_str(&self, key: &str) -> Option<String> {
        let done = self.done.as_deref()?;
        Some(Json::parse(done).ok()?.get(key)?.as_str()?.to_string())
    }
}

/// A negotiated connection to a resident server.
pub struct Client {
    stream: TcpStream,
    /// Protocol version agreed in the handshake.
    pub version: u16,
    next_request_id: u64,
}

fn other_err(e: impl std::fmt::Display) -> io::Error {
    io::Error::other(e.to_string())
}

impl Client {
    /// Connect and negotiate the protocol version.
    ///
    /// # Errors
    ///
    /// Connection failure, a rejected handshake (disjoint version
    /// ranges surface the server's Error payload), or a malformed
    /// server reply.
    pub fn connect(addr: &str) -> io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        let mut client = Client {
            stream,
            version: 0,
            next_request_id: 0,
        };
        client.write(&Frame::text(FrameKind::Hello, 0, hello_payload()))?;
        let ack = client.read()?;
        match ack.kind {
            FrameKind::HelloAck => {
                let payload = ack.payload_str();
                let version = Json::parse(&payload)
                    .ok()
                    .and_then(|v| v.get("version")?.as_u64())
                    .ok_or_else(|| other_err("HelloAck without version"))?;
                client.version = version as u16;
                Ok(client)
            }
            FrameKind::Error => Err(other_err(format!(
                "handshake rejected: {}",
                ack.payload_str()
            ))),
            other => Err(other_err(format!("unexpected handshake reply {other:?}"))),
        }
    }

    /// Send one campaign request (a spec JSON document, optionally
    /// with `jobs`/`retries`/`deadline_ms` option keys) and collect
    /// the full response stream.
    ///
    /// # Errors
    ///
    /// Transport failure or a malformed server frame. A Busy or Error
    /// reply is a *successful* call — inspect [`Response::busy`] /
    /// [`Response::error`].
    pub fn request(&mut self, payload: &str) -> io::Result<Response> {
        self.next_request_id += 1;
        let request_id = self.next_request_id;
        self.write(&Frame::text(FrameKind::Request, request_id, payload))?;
        self.collect(request_id)
    }

    /// [`Client::request`], retrying (with a fresh request id) for as
    /// long as the server answers Busy, honoring its `retry_after_ms`
    /// hint up to `max_retries` times.
    ///
    /// # Errors
    ///
    /// As [`Client::request`]; the final Busy response is returned
    /// (not an error) when every retry was rejected.
    pub fn request_with_retry(&mut self, payload: &str, max_retries: u32) -> io::Result<Response> {
        let mut response = self.request(payload)?;
        for _ in 0..max_retries {
            let Some(retry_ms) = response.retry_after_ms() else {
                break;
            };
            std::thread::sleep(Duration::from_millis(retry_ms));
            response = self.request(payload)?;
        }
        Ok(response)
    }

    /// Cancel an in-flight request by id (fire-and-forget; the
    /// server's answer arrives in that request's own stream).
    ///
    /// # Errors
    ///
    /// Transport failure.
    pub fn cancel(&mut self, request_id: u64) -> io::Result<()> {
        self.write(&Frame::text(FrameKind::Cancel, request_id, "{}"))
    }

    /// Ask the server to drain and exit; waits for the ShutdownAck.
    ///
    /// # Errors
    ///
    /// Transport failure or a reply other than ShutdownAck.
    pub fn shutdown(&mut self) -> io::Result<()> {
        self.write(&Frame::text(FrameKind::Shutdown, 0, "{}"))?;
        let ack = self.read()?;
        if ack.kind == FrameKind::ShutdownAck {
            Ok(())
        } else {
            Err(other_err(format!(
                "expected ShutdownAck, got {:?}: {}",
                ack.kind,
                ack.payload_str()
            )))
        }
    }

    fn collect(&mut self, request_id: u64) -> io::Result<Response> {
        let mut response = Response {
            request_id,
            ..Response::default()
        };
        loop {
            let frame = self.read()?;
            if frame.request_id != request_id && frame.request_id != 0 {
                // A frame for another request (pipelined caller):
                // out of scope for the blocking client, skip it.
                continue;
            }
            match frame.kind {
                FrameKind::Progress => response.progress.push(frame.payload_str()),
                FrameKind::Result => response.result = Some(frame.payload),
                FrameKind::Done => {
                    response.done = Some(frame.payload_str());
                    return Ok(response);
                }
                FrameKind::Busy => {
                    response.busy = Some(frame.payload_str());
                    return Ok(response);
                }
                FrameKind::Error => {
                    response.error = Some(frame.payload_str());
                    return Ok(response);
                }
                other => {
                    return Err(other_err(format!("unexpected server frame {other:?}")));
                }
            }
        }
    }

    fn write(&mut self, frame: &Frame) -> io::Result<()> {
        write_frame(&mut self.stream, frame)
    }

    fn read(&mut self) -> io::Result<Frame> {
        match read_frame(&mut self.stream) {
            Ok(f) => Ok(f),
            Err(FrameError::Eof) => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )),
            Err(FrameError::Io(e)) => Err(e),
            Err(e) => Err(other_err(e)),
        }
    }
}
