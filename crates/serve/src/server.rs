//! The resident analysis server.
//!
//! One [`Server`] owns a [`std::net::TcpListener`], a pool of
//! connection reader threads, one executor thread, and the
//! process-wide warm state: a single
//! [`cr_campaign::AnalysisCache`] shared by every request (filter
//! verdicts, module summaries, resident parsed images) plus the
//! `cr-symex` normalized-query memo, which is process-global already.
//! The Nth request for a module therefore does zero image generation,
//! zero parsing, and zero solver calls.
//!
//! ## Admission and backpressure
//!
//! Requests pass a bounded admission queue
//! ([`ServeConfig::admit_capacity`]). A request arriving at a full
//! queue is answered immediately with a [`FrameKind::Busy`] frame
//! carrying `retry_after_ms` — explicit backpressure instead of
//! unbounded buffering. Admitted requests execute strictly in
//! admission order on the executor thread; the campaign inside a
//! request still fans out over the `cr-campaign` work-stealing pool
//! (`jobs` option).
//!
//! ## Cancellation, deadlines and drain
//!
//! A [`FrameKind::Cancel`] frame (or the per-request wall deadline)
//! sets the request's abort flag; the campaign pool fails unstarted
//! tasks fast as `cancelled` and the response reports
//! `status:"cancelled"`. A [`FrameKind::Shutdown`] frame — the
//! SIGTERM-equivalent, since portable `std` cannot trap signals —
//! stops admission, drains already-admitted work, persists the cache
//! atomically (write-then-rename, inherited from the cache layer) and
//! lets [`Server::run`] return.

use crate::proto::{negotiate, read_frame, Frame, FrameError, FrameKind, PROTO_VERSION};
use cr_campaign::json::Json;
use cr_campaign::{
    run_campaign_with_cache, AnalysisCache, CampaignSpec, EngineConfig, TaskErrorKind,
    DEFAULT_DEADLINE_MS,
};
use cr_chaos::{FaultInjector, FaultKind, Site};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Idle poll period for connection readers.
const POLL_MS: u64 = 25;

/// Idle poll period for the accept loop. Much shorter than the reader
/// poll: a fresh connection's first byte waits on this, and the fleet
/// router opens dispatch and heartbeat connections constantly — an
/// accept stall is pure added latency on every cold path.
const ACCEPT_POLL_MS: u64 = 2;

/// Server knobs.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Campaign worker threads per request.
    pub jobs: usize,
    /// Extra attempts for a failing task.
    pub retries: u32,
    /// Per-attempt virtual-time deadline, milliseconds.
    pub deadline_ms: Option<u64>,
    /// Default per-request wall-clock deadline, milliseconds; a
    /// request may override it with its `deadline_ms` option. `None`
    /// lets requests run unbounded.
    pub request_deadline_ms: Option<u64>,
    /// Admission queue capacity; requests beyond it get `Busy`.
    pub admit_capacity: usize,
    /// `retry_after_ms` hint carried in `Busy` replies.
    pub busy_retry_ms: u64,
    /// Patience for a peer stalled *mid-frame* (slow loris),
    /// milliseconds. Idle connections (no frame started) are never
    /// timed out.
    pub read_timeout_ms: u64,
    /// Cache directory: loaded at bind, persisted at shutdown.
    /// `None` keeps the warm state memory-only.
    pub cache_dir: Option<PathBuf>,
    /// Fault injector for the serve-layer sites (`serve.conn`,
    /// `serve.frame`, `serve.loris`).
    pub injector: Option<Arc<FaultInjector>>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".into(),
            jobs: 1,
            retries: 1,
            deadline_ms: Some(DEFAULT_DEADLINE_MS),
            request_deadline_ms: None,
            admit_capacity: 8,
            busy_retry_ms: 50,
            read_timeout_ms: 2_000,
            cache_dir: None,
            injector: None,
        }
    }
}

/// Counters the server accumulates over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize)]
pub struct ServeStats {
    /// Connections accepted.
    pub conns_accepted: u64,
    /// Connections dropped by injected `serve.conn` faults.
    pub conns_dropped: u64,
    /// Requests admitted to the queue.
    pub requests_admitted: u64,
    /// Requests whose campaign actually started executing.
    pub requests_executed: u64,
    /// Requests answered with a final `Done` frame.
    pub requests_completed: u64,
    /// Requests that ended cancelled (flag set before or during run).
    pub requests_cancelled: u64,
    /// Requests rejected with `Busy` (queue full).
    pub busy_rejections: u64,
    /// Malformed frames received (bad magic/CRC/kind/length).
    pub bad_frames: u64,
    /// Connections closed for stalling mid-frame.
    pub loris_closed: u64,
    /// Response frames fully written.
    pub frames_sent: u64,
    /// Response frames truncated by injected `serve.frame` faults.
    pub frames_truncated: u64,
    /// Heartbeat `Ping` frames answered with a `Pong`.
    pub pings_answered: u64,
    /// `SyncPull` replication requests served.
    pub sync_pulls: u64,
    /// `SyncPush` replication merges applied.
    pub sync_pushes: u64,
    /// Execution-ledger entries retired (connection closed) with the
    /// invariant intact — exactly one execution.
    pub exec_retired: u64,
    /// Execution-ledger entries retired with more than one execution:
    /// the no-double-execution invariant was violated.
    pub exec_violations: u64,
}

#[derive(Default)]
struct Counters {
    conns_accepted: AtomicU64,
    conns_dropped: AtomicU64,
    requests_admitted: AtomicU64,
    requests_executed: AtomicU64,
    requests_completed: AtomicU64,
    requests_cancelled: AtomicU64,
    busy_rejections: AtomicU64,
    bad_frames: AtomicU64,
    loris_closed: AtomicU64,
    frames_sent: AtomicU64,
    frames_truncated: AtomicU64,
    pings_answered: AtomicU64,
    sync_pulls: AtomicU64,
    sync_pushes: AtomicU64,
    exec_retired: AtomicU64,
    exec_violations: AtomicU64,
}

impl Counters {
    fn snapshot(&self) -> ServeStats {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        ServeStats {
            conns_accepted: get(&self.conns_accepted),
            conns_dropped: get(&self.conns_dropped),
            requests_admitted: get(&self.requests_admitted),
            requests_executed: get(&self.requests_executed),
            requests_completed: get(&self.requests_completed),
            requests_cancelled: get(&self.requests_cancelled),
            busy_rejections: get(&self.busy_rejections),
            bad_frames: get(&self.bad_frames),
            loris_closed: get(&self.loris_closed),
            frames_sent: get(&self.frames_sent),
            frames_truncated: get(&self.frames_truncated),
            pings_answered: get(&self.pings_answered),
            sync_pulls: get(&self.sync_pulls),
            sync_pushes: get(&self.sync_pushes),
            exec_retired: get(&self.exec_retired),
            exec_violations: get(&self.exec_violations),
        }
    }
}

/// The response side of one connection: serialized frame writes with
/// the serve-layer fault sites threaded through. Shared between the
/// connection's reader thread and the executor (a request may outlive
/// its reader).
struct ConnWriter {
    stream: Mutex<TcpStream>,
    /// This connection's id, mixed into the frame scope key so fault
    /// decisions differ across connections, not just across ordinals.
    conn_id: u64,
    /// Set after a write failure or injected disconnect; later sends
    /// become no-ops instead of error spam.
    dead: AtomicBool,
    /// Response frame ordinal within this connection — combined with
    /// `conn_id`, the stable scope key for `serve.frame` decisions.
    frame_seq: AtomicU64,
    injector: Option<Arc<FaultInjector>>,
    counters: Arc<Counters>,
}

impl ConnWriter {
    /// Write one frame; returns whether the peer can still be reached.
    fn send(&self, frame: &Frame) -> bool {
        if self.dead.load(Ordering::Relaxed) {
            return false;
        }
        let seq = self.frame_seq.fetch_add(1, Ordering::Relaxed);
        // A fault decision depends only on the scope key, so the key
        // must identify this (connection, frame) pair uniquely or the
        // same ordinal would fault on every connection at once.
        let key = (self.conn_id << 20) | (seq & 0xF_FFFF);
        let bytes = frame.encode();
        if let Some(inj) = &self.injector {
            if let Some(FaultKind::Stall { virtual_ms }) = inj.fires(Site::ServeStall, key, 0) {
                // The server itself becomes the slow peer: stall
                // mid-response so clients exercise their patience.
                std::thread::sleep(Duration::from_millis(virtual_ms));
            }
            match inj.fires(Site::ServeFrame, key, 0) {
                Some(FaultKind::Truncate { keep_per_mille }) => {
                    let keep = bytes.len() * keep_per_mille as usize / 1000;
                    let mut stream = self.stream.lock().unwrap();
                    let _ = stream.write_all(&bytes[..keep]);
                    let _ = stream.flush();
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    self.dead.store(true, Ordering::Relaxed);
                    self.counters
                        .frames_truncated
                        .fetch_add(1, Ordering::Relaxed);
                    return false;
                }
                Some(FaultKind::Disconnect) => {
                    let stream = self.stream.lock().unwrap();
                    let _ = stream.shutdown(std::net::Shutdown::Both);
                    self.dead.store(true, Ordering::Relaxed);
                    self.counters
                        .frames_truncated
                        .fetch_add(1, Ordering::Relaxed);
                    return false;
                }
                _ => {}
            }
        }
        let mut stream = self.stream.lock().unwrap();
        match stream.write_all(&bytes).and_then(|()| stream.flush()) {
            Ok(()) => {
                self.counters.frames_sent.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(_) => {
                self.dead.store(true, Ordering::Relaxed);
                false
            }
        }
    }
}

/// One admitted request.
struct Job {
    conn_id: u64,
    request_id: u64,
    spec: CampaignSpec,
    jobs: usize,
    retries: u32,
    deadline_ms: Option<u64>,
    request_deadline_ms: Option<u64>,
    writer: Arc<ConnWriter>,
    cancel: Arc<AtomicBool>,
}

struct Shared {
    cfg: ServeConfig,
    cache: AnalysisCache,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    /// Abrupt-death flag (the fleet's simulated node crash): unlike
    /// `shutdown` there is no drain — sockets are severed, queued jobs
    /// are abandoned, the warm cache is *not* persisted.
    killed: AtomicBool,
    /// Whether the executor is inside a campaign right now; carried in
    /// `Pong` so a supervisor can judge serving-phase liveness.
    executor_busy: AtomicBool,
    /// One cloned socket per live connection, keyed by conn id, so
    /// `kill` can sever them out from under both reader and writer;
    /// each entry is removed when its connection's reader exits.
    conns: Mutex<HashMap<u64, TcpStream>>,
    counters: Arc<Counters>,
    /// `(conn_id, request_id) -> times the executor started the
    /// campaign`. The no-double-execution invariant: every value is 1.
    /// Entries for closed connections are retired into the
    /// `exec_retired` / `exec_violations` counters so the ledger stays
    /// bounded by live connections, not server lifetime.
    executions: Mutex<HashMap<(u64, u64), u32>>,
    /// Cancel flags of admitted-but-unfinished requests.
    inflight: Mutex<HashMap<(u64, u64), Arc<AtomicBool>>>,
}

/// A cloneable handle onto a running server — stats, the execution
/// ledger, and a programmatic shutdown trigger (used by tests and the
/// in-process chaos harness; network peers use the Shutdown frame).
#[derive(Clone)]
pub struct ServerHandle(Arc<Shared>);

impl ServerHandle {
    /// Current counter snapshot.
    pub fn stats(&self) -> ServeStats {
        self.0.counters.snapshot()
    }

    /// How many times each admitted request's campaign was started,
    /// keyed by `(conn_id, request_id)`. Every value must be exactly 1
    /// — the serve chaos invariant. Covers live connections only:
    /// entries for closed connections are retired into the
    /// `exec_retired` / `exec_violations` stats counters.
    pub fn execution_counts(&self) -> Vec<((u64, u64), u32)> {
        let mut v: Vec<_> = self
            .0
            .executions
            .lock()
            .unwrap()
            .iter()
            .map(|(&k, &n)| (k, n))
            .collect();
        v.sort_unstable();
        v
    }

    /// Connections currently registered (and thus holding a cloned
    /// fd). Bounded by live clients: every connection deregisters on
    /// exit.
    pub fn live_conns(&self) -> usize {
        self.0.conns.lock().unwrap().len()
    }

    /// Trigger the same graceful drain a Shutdown frame does.
    pub fn shutdown(&self) {
        self.0.shutdown.store(true, Ordering::Relaxed);
        self.0.queue_cv.notify_all();
    }

    /// Whether shutdown has been requested.
    pub fn is_shutdown(&self) -> bool {
        self.0.shutdown.load(Ordering::Relaxed)
    }

    /// Kill the server abruptly — the fleet's simulated node crash.
    ///
    /// Unlike [`ServerHandle::shutdown`] there is no drain: every live
    /// connection is severed immediately (in-flight responses fail),
    /// queued jobs are abandoned without a reply, any running campaign
    /// is aborted via its cancel flag, and the warm cache is *not*
    /// persisted. `Server::run` still returns so the supervisor can
    /// join the worker thread and restart a fresh generation.
    pub fn kill(&self) {
        self.0.killed.store(true, Ordering::Relaxed);
        self.0.shutdown.store(true, Ordering::Relaxed);
        // Abort whatever the executor is inside of.
        for cancel in self.0.inflight.lock().unwrap().values() {
            cancel.store(true, Ordering::Relaxed);
        }
        // Sever the sockets: writers see broken pipes, readers see EOF.
        for conn in self.0.conns.lock().unwrap().values() {
            let _ = conn.shutdown(std::net::Shutdown::Both);
        }
        self.0.queue_cv.notify_all();
    }

    /// Whether the server was killed abruptly (vs drained).
    pub fn is_killed(&self) -> bool {
        self.0.killed.load(Ordering::Relaxed)
    }
}

/// The resident server. [`Server::bind`] acquires the socket and warm
/// state; [`Server::run`] blocks until a graceful shutdown completes.
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
    owns_trace: bool,
}

impl Server {
    /// Bind the listener and load the warm cache.
    ///
    /// # Errors
    ///
    /// Socket bind failure or unreadable cache directory.
    pub fn bind(cfg: ServeConfig) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let cache = match &cfg.cache_dir {
            Some(dir) => AnalysisCache::load(dir)?,
            None => AnalysisCache::new(),
        };
        // The server owns a process-wide trace session (unless an
        // embedding test already started one): each request is scoped
        // with `begin_run` + `drain`, sourcing its Progress events.
        let owns_trace = cr_trace::start();
        Ok(Server {
            listener,
            shared: Arc::new(Shared {
                cfg,
                cache,
                queue: Mutex::new(VecDeque::new()),
                queue_cv: Condvar::new(),
                shutdown: AtomicBool::new(false),
                killed: AtomicBool::new(false),
                executor_busy: AtomicBool::new(false),
                conns: Mutex::new(HashMap::new()),
                counters: Arc::new(Counters::default()),
                executions: Mutex::new(HashMap::new()),
                inflight: Mutex::new(HashMap::new()),
            }),
            owns_trace,
        })
    }

    /// The bound address (resolves `:0` to the ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates the socket's `local_addr` failure.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// A handle for stats, the execution ledger, and programmatic
    /// shutdown.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle(self.shared.clone())
    }

    /// Serve until shutdown, then drain in-flight work, persist the
    /// cache, and return the final stats.
    ///
    /// # Errors
    ///
    /// Accept-loop I/O failure or an unwritable cache directory at
    /// drain time.
    pub fn run(self) -> io::Result<ServeStats> {
        let exec_shared = self.shared.clone();
        let executor = std::thread::spawn(move || run_executor(&exec_shared));
        let mut conn_threads = Vec::new();
        let mut next_conn_id = 0u64;
        self.listener.set_nonblocking(true)?;
        while !self.shared.shutdown.load(Ordering::Relaxed) {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    // Reap readers whose connection already ended, so a
                    // long-running server holds handles for live
                    // connections only.
                    conn_threads.retain(|t: &std::thread::JoinHandle<()>| !t.is_finished());
                    let conn_id = next_conn_id;
                    next_conn_id += 1;
                    self.shared
                        .counters
                        .conns_accepted
                        .fetch_add(1, Ordering::Relaxed);
                    let shared = self.shared.clone();
                    conn_threads.push(std::thread::spawn(move || {
                        serve_conn(&shared, stream, conn_id)
                    }));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(ACCEPT_POLL_MS));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        // Drain: the executor finishes every admitted job before it
        // exits; reader threads notice the flag at their next idle
        // poll.
        self.shared.queue_cv.notify_all();
        let _ = executor.join();
        for t in conn_threads {
            let _ = t.join();
        }
        let killed = self.shared.killed.load(Ordering::Relaxed);
        if let Some(dir) = &self.shared.cfg.cache_dir {
            if !killed {
                // Atomic by construction: the cache layer writes a
                // temporary sibling and renames it into place. A
                // killed node deliberately loses its warm state — that
                // is what fleet replication exists to cover.
                self.shared.cache.save(dir)?;
            }
        }
        if self.owns_trace {
            let _ = cr_trace::finish();
        }
        Ok(self.shared.counters.snapshot())
    }
}

/// Blocking frame reader over a polled socket. Distinguishes the two
/// kinds of read timeout the protocol cares about: *idle* (no byte of
/// the next frame yet — surface it so the caller can poll the
/// shutdown flag) and *mid-frame stall* (a slow-loris peer — retried
/// up to `patience`, then surfaced as `TimedOut`).
struct FrameReader<'a> {
    stream: &'a TcpStream,
    consumed: usize,
    patience: Duration,
}

impl Read for FrameReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let mut stalled = Duration::ZERO;
        loop {
            match self.stream.read(buf) {
                Ok(n) => {
                    self.consumed += n;
                    return Ok(n);
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                    ) =>
                {
                    if self.consumed == 0 {
                        return Err(e); // idle: let the caller poll
                    }
                    stalled += Duration::from_millis(POLL_MS);
                    if stalled >= self.patience {
                        return Err(io::Error::new(
                            io::ErrorKind::TimedOut,
                            "peer stalled mid-frame",
                        ));
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

fn error_frame(request_id: u64, code: &str, message: &str) -> Frame {
    use serde::Serialize;
    Frame::text(
        FrameKind::Error,
        request_id,
        format!(
            "{{\"code\":{},\"message\":{}}}",
            code.to_json(),
            message.to_json()
        ),
    )
}

/// One connection: register its kill handle, run the frame loop, then
/// deregister and retire the connection's execution-ledger entries.
fn serve_conn(shared: &Arc<Shared>, stream: TcpStream, conn_id: u64) {
    if let Some(inj) = &shared.cfg.injector {
        if inj.fires(Site::ServeConnDrop, conn_id, 0).is_some() {
            // Injected connection drop right after accept: the peer
            // sees a reset before any frame.
            let _ = stream.shutdown(std::net::Shutdown::Both);
            shared
                .counters
                .conns_dropped
                .fetch_add(1, Ordering::Relaxed);
            return;
        }
    }
    // Frames are small and latency-bound: never let Nagle hold one
    // back waiting for an ACK.
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_millis(POLL_MS)));
    let reader_stream = match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    };
    if let Ok(kill_handle) = stream.try_clone() {
        // Registered so `ServerHandle::kill` can sever this socket out
        // from under us; removed again below once the connection ends,
        // so a long-running server holds one fd per *live* connection.
        shared.conns.lock().unwrap().insert(conn_id, kill_handle);
    }
    conn_loop(shared, stream, &reader_stream, conn_id);
    shared.conns.lock().unwrap().remove(&conn_id);
    retire_conn_executions(shared, conn_id);
}

/// Retire a closed connection's execution-ledger entries into the
/// retired/violation counters, so the ledger stays bounded by live
/// connections. Entries still in flight are left for the executor,
/// which retires them when it finishes (the connection is gone by
/// then).
fn retire_conn_executions(shared: &Shared, conn_id: u64) {
    let pending: Vec<(u64, u64)> = shared
        .inflight
        .lock()
        .unwrap()
        .keys()
        .filter(|k| k.0 == conn_id)
        .copied()
        .collect();
    let mut executions = shared.executions.lock().unwrap();
    let done: Vec<(u64, u64)> = executions
        .keys()
        .filter(|k| k.0 == conn_id && !pending.contains(k))
        .copied()
        .collect();
    for key in done {
        if let Some(times) = executions.remove(&key) {
            retire_execution(&shared.counters, times);
        }
    }
}

fn retire_execution(counters: &Counters, times: u32) {
    if times == 1 {
        counters.exec_retired.fetch_add(1, Ordering::Relaxed);
    } else {
        counters.exec_violations.fetch_add(1, Ordering::Relaxed);
    }
}

/// The frame loop behind [`serve_conn`]: handshake, then frames until
/// EOF, error, or shutdown.
fn conn_loop(shared: &Arc<Shared>, stream: TcpStream, reader_stream: &TcpStream, conn_id: u64) {
    let writer = Arc::new(ConnWriter {
        stream: Mutex::new(stream),
        conn_id,
        dead: AtomicBool::new(false),
        frame_seq: AtomicU64::new(0),
        injector: shared.cfg.injector.clone(),
        counters: shared.counters.clone(),
    });

    let mut negotiated = false;
    loop {
        let mut reader = FrameReader {
            stream: reader_stream,
            consumed: 0,
            patience: Duration::from_millis(shared.cfg.read_timeout_ms),
        };
        let frame = match read_frame(&mut reader) {
            Ok(f) => f,
            Err(e) if e.is_timeout() && reader.consumed == 0 => {
                if shared.shutdown.load(Ordering::Relaxed) {
                    break;
                }
                continue;
            }
            Err(e) if e.is_timeout() => {
                // Mid-frame stall: slow loris. Close rather than hold
                // a reader thread hostage.
                shared.counters.loris_closed.fetch_add(1, Ordering::Relaxed);
                writer.send(&error_frame(0, "timeout", &e.to_string()));
                break;
            }
            Err(FrameError::Eof) => break,
            Err(e @ FrameError::Io(_)) => {
                // Truncated frame or hard I/O failure.
                shared.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
                writer.send(&error_frame(0, "truncated", &e.to_string()));
                break;
            }
            Err(e) => {
                // Bad magic / CRC / kind / length: protocol violation.
                shared.counters.bad_frames.fetch_add(1, Ordering::Relaxed);
                writer.send(&error_frame(0, "bad_frame", &e.to_string()));
                break;
            }
        };

        if !negotiated {
            if frame.kind != FrameKind::Hello {
                writer.send(&error_frame(
                    frame.request_id,
                    "protocol",
                    "first frame must be Hello",
                ));
                break;
            }
            let (min, max) = parse_hello(&frame.payload);
            match negotiate(min, max) {
                Some(version) => {
                    negotiated = true;
                    writer.send(&Frame::text(
                        FrameKind::HelloAck,
                        0,
                        format!(
                            "{{\"version\":{version},\"server\":\"crash-resist\",\"queue_capacity\":{}}}",
                            shared.cfg.admit_capacity
                        ),
                    ));
                }
                None => {
                    writer.send(&error_frame(
                        0,
                        "version",
                        &format!(
                            "no shared protocol version: client [{min},{max}], server [{},{}]",
                            crate::proto::PROTO_MIN_VERSION,
                            PROTO_VERSION
                        ),
                    ));
                    break;
                }
            }
            continue;
        }

        match frame.kind {
            FrameKind::Request => handle_request(shared, &writer, conn_id, &frame),
            FrameKind::Ping => {
                // Serving-phase liveness: answered from the reader
                // thread, but the payload exposes what the *serving
                // loop* is doing so a supervisor can tell "alive but
                // wedged" from "alive and draining its queue".
                let queue_len = shared.queue.lock().unwrap().len();
                let executing = shared.executor_busy.load(Ordering::Relaxed);
                let completed = shared.counters.requests_completed.load(Ordering::Relaxed);
                let draining = shared.shutdown.load(Ordering::Relaxed);
                shared
                    .counters
                    .pings_answered
                    .fetch_add(1, Ordering::Relaxed);
                writer.send(&Frame::text(
                    FrameKind::Pong,
                    frame.request_id,
                    format!(
                        "{{\"queue_len\":{queue_len},\"executing\":{executing},\
                         \"completed\":{completed},\"draining\":{draining}}}"
                    ),
                ));
            }
            FrameKind::SyncPull => {
                shared.counters.sync_pulls.fetch_add(1, Ordering::Relaxed);
                writer.send(&Frame {
                    kind: FrameKind::SyncState,
                    request_id: frame.request_id,
                    payload: shared.cache.export_jsonl().into_bytes(),
                });
            }
            FrameKind::SyncPush => {
                let (merged, rejected) = match std::str::from_utf8(&frame.payload) {
                    Ok(text) => shared.cache.merge_jsonl(text),
                    Err(_) => (0, 1),
                };
                shared.counters.sync_pushes.fetch_add(1, Ordering::Relaxed);
                writer.send(&Frame::text(
                    FrameKind::SyncAck,
                    frame.request_id,
                    format!("{{\"merged\":{merged},\"rejected\":{rejected}}}"),
                ));
            }
            FrameKind::Cancel => {
                let key = (conn_id, frame.request_id);
                match shared.inflight.lock().unwrap().get(&key) {
                    Some(cancel) => cancel.store(true, Ordering::Relaxed),
                    None => {
                        writer.send(&error_frame(
                            frame.request_id,
                            "unknown_request",
                            "no such in-flight request on this connection",
                        ));
                    }
                }
            }
            FrameKind::Shutdown => {
                shared.shutdown.store(true, Ordering::Relaxed);
                shared.queue_cv.notify_all();
                writer.send(&Frame::text(FrameKind::ShutdownAck, 0, "{\"drain\":true}"));
                break;
            }
            FrameKind::Hello => {
                writer.send(&error_frame(0, "protocol", "duplicate Hello"));
                break;
            }
            other => {
                writer.send(&error_frame(
                    frame.request_id,
                    "protocol",
                    &format!("unexpected client frame kind {other:?}"),
                ));
                break;
            }
        }
    }
}

/// `(min, max)` from a Hello payload; a malformed payload degrades to
/// `(0, 0)`, which negotiation rejects gracefully.
fn parse_hello(payload: &[u8]) -> (u16, u16) {
    let Ok(text) = std::str::from_utf8(payload) else {
        return (0, 0);
    };
    let Ok(v) = Json::parse(text) else {
        return (0, 0);
    };
    let field = |k: &str| {
        v.get(k)
            .and_then(Json::as_u64)
            .unwrap_or(0)
            .min(u16::MAX as u64) as u16
    };
    (field("min"), field("max"))
}

/// Parse, dedup, and admit one Request frame.
fn handle_request(shared: &Arc<Shared>, writer: &Arc<ConnWriter>, conn_id: u64, frame: &Frame) {
    let request_id = frame.request_id;
    let Ok(text) = std::str::from_utf8(&frame.payload) else {
        writer.send(&error_frame(
            request_id,
            "bad_request",
            "payload is not UTF-8",
        ));
        return;
    };
    let spec = match CampaignSpec::from_json(text) {
        Ok(s) => s,
        Err(e) => {
            writer.send(&error_frame(request_id, "bad_request", &e));
            return;
        }
    };
    // Reserved option keys ride in the same JSON document; the spec
    // parser ignores unknown top-level keys by design.
    let opts = Json::parse(text).expect("payload parsed once already");
    let opt_u64 = |k: &str| opts.get(k).and_then(Json::as_u64);
    let key = (conn_id, request_id);
    {
        let executed = shared.executions.lock().unwrap().contains_key(&key);
        if executed || shared.inflight.lock().unwrap().contains_key(&key) {
            writer.send(&error_frame(
                request_id,
                "duplicate",
                "request id already used on this connection",
            ));
            return;
        }
    }
    let mut queue = shared.queue.lock().unwrap();
    if shared.shutdown.load(Ordering::Relaxed) {
        drop(queue);
        writer.send(&error_frame(
            request_id,
            "shutting_down",
            "server is draining",
        ));
        return;
    }
    if queue.len() >= shared.cfg.admit_capacity {
        drop(queue);
        shared
            .counters
            .busy_rejections
            .fetch_add(1, Ordering::Relaxed);
        writer.send(&Frame::text(
            FrameKind::Busy,
            request_id,
            format!(
                "{{\"code\":\"busy\",\"retry_after_ms\":{}}}",
                shared.cfg.busy_retry_ms
            ),
        ));
        return;
    }
    let cancel = Arc::new(AtomicBool::new(false));
    shared.inflight.lock().unwrap().insert(key, cancel.clone());
    let depth = queue.len() + 1;
    queue.push_back(Job {
        conn_id,
        request_id,
        spec,
        jobs: opt_u64("jobs").map_or(shared.cfg.jobs, |v| v as usize),
        retries: opt_u64("retries").map_or(shared.cfg.retries, |v| v as u32),
        deadline_ms: shared.cfg.deadline_ms,
        request_deadline_ms: opt_u64("deadline_ms").or(shared.cfg.request_deadline_ms),
        writer: writer.clone(),
        cancel,
    });
    drop(queue);
    shared
        .counters
        .requests_admitted
        .fetch_add(1, Ordering::Relaxed);
    writer.send(&Frame::text(
        FrameKind::Progress,
        request_id,
        format!("{{\"event\":\"queued\",\"depth\":{depth}}}"),
    ));
    shared.queue_cv.notify_one();
}

/// The executor loop: pop admitted jobs in order, run each campaign
/// against the shared warm cache, stream the response. Exits once the
/// queue is empty *and* shutdown was requested — that is the drain.
fn run_executor(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                if shared.killed.load(Ordering::Relaxed) {
                    // Abrupt death: abandon queued jobs without a
                    // reply — the fleet router's failover answers them.
                    break None;
                }
                if let Some(job) = queue.pop_front() {
                    break Some(job);
                }
                if shared.shutdown.load(Ordering::Relaxed) {
                    break None;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(POLL_MS))
                    .unwrap();
                queue = guard;
            }
        };
        let Some(job) = job else { break };
        execute_job(shared, &job);
        let key = (job.conn_id, job.request_id);
        shared.inflight.lock().unwrap().remove(&key);
        if !shared.conns.lock().unwrap().contains_key(&job.conn_id) {
            // The connection ended mid-execution: its reader already
            // swept the ledger, so retire this entry here.
            if let Some(times) = shared.executions.lock().unwrap().remove(&key) {
                retire_execution(&shared.counters, times);
            }
        }
    }
}

fn execute_job(shared: &Arc<Shared>, job: &Job) {
    let key = (job.conn_id, job.request_id);
    if job.cancel.load(Ordering::Relaxed) {
        // Cancelled while queued: never executed.
        shared
            .counters
            .requests_cancelled
            .fetch_add(1, Ordering::Relaxed);
        job.writer.send(&Frame::text(
            FrameKind::Done,
            job.request_id,
            "{\"status\":\"cancelled\",\"executed\":false}",
        ));
        return;
    }
    *shared.executions.lock().unwrap().entry(key).or_insert(0) += 1;
    shared
        .counters
        .requests_executed
        .fetch_add(1, Ordering::Relaxed);
    job.writer.send(&Frame::text(
        FrameKind::Progress,
        job.request_id,
        "{\"event\":\"running\"}",
    ));

    cr_trace::begin_run(&job.spec.name);
    // Per-request wall deadline: a watchdog flips the same abort flag
    // a Cancel frame does; the campaign pool then fails unstarted
    // tasks fast as `cancelled`.
    let done = Arc::new(AtomicBool::new(false));
    let watchdog = job.request_deadline_ms.map(|ms| {
        let cancel = job.cancel.clone();
        let done = done.clone();
        std::thread::spawn(move || {
            let deadline = Instant::now() + Duration::from_millis(ms);
            while !done.load(Ordering::Relaxed) {
                if Instant::now() >= deadline {
                    cancel.store(true, Ordering::Relaxed);
                    break;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        })
    });
    let engine_cfg = EngineConfig {
        jobs: job.jobs,
        symex_jobs: 1, // per-request symex stays serial; parallelism is per-worker
        retries: job.retries,
        cache_dir: None, // the server owns persistence
        deadline_ms: job.deadline_ms,
        wall_watchdog_ms: None,
        backoff_base_ms: 1,
        injector: None, // serve-layer faults live on the wire, not in the campaign
        abort: Some(job.cancel.clone()),
    };
    let started = Instant::now();
    shared.executor_busy.store(true, Ordering::Relaxed);
    let report = run_campaign_with_cache(&job.spec, &engine_cfg, &shared.cache);
    shared.executor_busy.store(false, Ordering::Relaxed);
    done.store(true, Ordering::Relaxed);
    if let Some(w) = watchdog {
        let _ = w.join();
    }
    let wall_us = started.elapsed().as_micros() as u64;

    // Scope this request's trace events out of the session and
    // summarize the advisory solver traffic for the client.
    let trace = cr_trace::drain();
    job.writer.send(&Frame::text(
        FrameKind::Progress,
        job.request_id,
        format!(
            "{{\"event\":\"trace\",\"events\":{},\"solver_spans\":{},\"parse_spans\":{}}}",
            trace.events.len(),
            trace.count_events(cr_trace::Stage::Symex, "solver.check"),
            trace.count_events(cr_trace::Stage::Parse, "pe.parse"),
        ),
    ));

    // The deterministic document travels verbatim: its bytes must
    // equal a one-shot `crash-resist campaign` run of the same spec.
    job.writer.send(&Frame {
        kind: FrameKind::Result,
        request_id: job.request_id,
        payload: report.results_json().into_bytes(),
    });

    let m = &report.metrics;
    let parse = if m.cache.image_misses == 0 {
        if m.cache.image_hits > 0 {
            "cached"
        } else {
            "none"
        }
    } else {
        "fresh"
    };
    let cancelled = report
        .records
        .iter()
        .any(|r| matches!(&r.error, Some(e) if e.kind == TaskErrorKind::Cancelled));
    if cancelled {
        shared
            .counters
            .requests_cancelled
            .fetch_add(1, Ordering::Relaxed);
    }
    let sent = job.writer.send(&Frame::text(
        FrameKind::Done,
        job.request_id,
        format!(
            "{{\"status\":\"{}\",\"executed\":true,\"degraded\":{},\"solver_calls\":{},\
             \"solver_memo_hits\":{},\"parse\":\"{parse}\",\"filter_hits\":{},\
             \"module_hits\":{},\"image_hits\":{},\"wall_us\":{wall_us}}}",
            if cancelled { "cancelled" } else { "ok" },
            report.degraded,
            m.solver_calls,
            m.solver_memo_hits,
            m.cache.filter_hits,
            m.cache.module_hits,
            m.cache.image_hits,
        ),
    ));
    if sent {
        shared
            .counters
            .requests_completed
            .fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::Client;

    const SPEC: &str = r#"{"name":"serve-unit","seed":7,"tasks":[{"PocScan":"ie"}]}"#;

    #[test]
    fn end_to_end_request_and_graceful_shutdown() {
        let server = Server::bind(ServeConfig::default()).expect("bind ephemeral");
        let addr = server.local_addr().unwrap().to_string();
        let runner = std::thread::spawn(move || server.run().expect("clean drain"));

        let mut client = Client::connect(&addr).expect("connect");
        assert_eq!(client.version, PROTO_VERSION);
        let response = client.request(SPEC).expect("request");
        assert!(response.completed(), "error={:?}", response.error);
        assert!(response.result.is_some());
        assert_eq!(response.done_str("status").as_deref(), Some("ok"));
        assert!(
            response.progress.iter().any(|p| p.contains("\"queued\"")),
            "progress={:?}",
            response.progress
        );
        client.shutdown().expect("shutdown ack");

        let stats = runner.join().expect("server thread");
        assert_eq!(stats.conns_accepted, 1);
        assert_eq!(stats.requests_admitted, 1);
        assert_eq!(stats.requests_completed, 1);
        assert_eq!(stats.busy_rejections, 0);
    }

    #[test]
    fn closed_connections_release_their_fd_and_retire_the_ledger() {
        let server = Server::bind(ServeConfig::default()).expect("bind");
        let addr = server.local_addr().unwrap().to_string();
        let handle = server.handle();
        let runner = std::thread::spawn(move || server.run().expect("drain"));

        // A stream of short-lived connections — the supervisor
        // heartbeat pattern. Each must deregister its kill handle on
        // disconnect, or a resident server leaks one fd per probe.
        for round in 0..5 {
            let mut client = Client::connect(&addr).expect("connect");
            if round == 0 {
                let response = client.request(SPEC).expect("request");
                assert!(response.completed(), "error={:?}", response.error);
            } else {
                client.ping().expect("ping");
            }
            drop(client);
            let deadline = Instant::now() + Duration::from_secs(5);
            while handle.live_conns() > 0 {
                assert!(Instant::now() < deadline, "connection never deregistered");
                std::thread::sleep(Duration::from_millis(5));
            }
        }

        // The executed request's ledger entry retired with its
        // connection instead of accumulating for the server lifetime.
        assert!(handle.execution_counts().is_empty());
        handle.shutdown();
        let stats = runner.join().unwrap();
        assert_eq!(stats.conns_accepted, 5);
        assert_eq!(stats.exec_retired, 1);
        assert_eq!(stats.exec_violations, 0);
    }

    #[test]
    fn cancel_while_queued_reports_cancelled_without_execution() {
        // Capacity 1 and a cancel sent immediately: with an empty
        // executor the race is benign — either the request ran (ok)
        // or was skipped (cancelled, executed:false); both keep the
        // no-double-execution ledger at <= 1.
        let server = Server::bind(ServeConfig::default()).expect("bind");
        let addr = server.local_addr().unwrap().to_string();
        let handle = server.handle();
        let runner = std::thread::spawn(move || server.run().expect("drain"));

        let mut client = Client::connect(&addr).expect("connect");
        let response = client.request(SPEC).expect("request");
        assert!(response.completed());
        for (_, n) in handle.execution_counts() {
            assert!(n <= 1, "double execution");
        }
        handle.shutdown();
        let _ = runner.join().unwrap();
    }
}
