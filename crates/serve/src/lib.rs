//! # cr-serve — the resident discovery service
//!
//! The paper's pipeline is batch-oriented: one binary in, Tables
//! I–III out. This crate turns the accumulated machinery — the
//! sharded campaign engine, the content-addressed verdict cache, the
//! normalized-query solver memo, deterministic tracing, seeded fault
//! injection — into a long-lived analysis daemon, the shape a
//! production deployment actually runs.
//!
//! Three layers:
//!
//! * [`proto`] — a length-prefixed, versioned, CRC-checked frame
//!   protocol over TCP, with graceful version negotiation;
//! * [`server`] — the daemon: bounded admission queue, one executor
//!   feeding the `cr-campaign` pool, process-wide warm state shared
//!   across requests (verdicts, module summaries, resident parsed
//!   images, the solver memo), per-request deadlines and
//!   cancellation, `Busy{retry_after}` backpressure, graceful drain
//!   with atomic cache persistence, and `cr-chaos` fault points for
//!   connection drops, truncated frames and slow-loris peers;
//! * [`client`] — the blocking client used by `crash-resist client`,
//!   the load bench, and the integration tests.
//!
//! ## Determinism contract
//!
//! The [`crate::proto::FrameKind::Result`] frame carries the
//! campaign's deterministic document (`results_json()`) verbatim: for
//! the same spec it is byte-identical to a one-shot
//! `crash-resist campaign` run, no matter how warm the server is or
//! how many workers ran it. Everything scheduling- or cache-dependent
//! — latency, solver-call counts, parse classification, queue depth —
//! travels in Progress/Done frames, which are advisory by the same
//! rule that splits campaign metrics from campaign results.

pub mod client;
pub mod proto;
pub mod server;

pub use client::{backoff_delay_ms, Client, Pong, Response};
pub use proto::{
    Frame, FrameError, FrameKind, HEADER_LEN, MAGIC, MAX_PAYLOAD, PROTO_MIN_VERSION, PROTO_VERSION,
};
pub use server::{ServeConfig, ServeStats, Server, ServerHandle};
