//! The framed wire protocol.
//!
//! Every message is one *frame*: a fixed 24-byte header followed by a
//! CRC-checked payload. All integers are little-endian.
//!
//! ```text
//! offset  size  field
//!      0     4  magic          b"CRSV"
//!      4     2  version        u16 (PROTO_VERSION)
//!      6     1  kind           u8  (FrameKind)
//!      7     1  reserved       0
//!      8     8  request_id     u64
//!     16     4  payload_len    u32 (<= MAX_PAYLOAD)
//!     20     4  payload_crc    u32 (CRC-32/IEEE over the payload)
//!     24     …  payload        payload_len bytes
//! ```
//!
//! The CRC is the same CRC-32/IEEE the analysis cache frames its
//! persisted records with ([`cr_campaign::crc32`]), so one checksum
//! implementation guards both the disk format and the wire format.
//!
//! ## Version negotiation
//!
//! The first frame on a connection must be [`FrameKind::Hello`] with a
//! `{"min":M,"max":N}` JSON payload. The server picks the highest
//! version both sides support and replies [`FrameKind::HelloAck`] with
//! `{"version":V,…}`, or an [`FrameKind::Error`] frame with
//! `code:"version"` when the ranges are disjoint — a graceful reject,
//! not a dropped connection.

use cr_campaign::crc32;
use std::io::{self, Read, Write};

/// Protocol version this build speaks. Version 2 added the fleet
/// frames: Ping/Pong heartbeats and the SyncPull/SyncState/SyncPush/
/// SyncAck cache-replication exchange.
pub const PROTO_VERSION: u16 = 2;

/// Oldest protocol version this build still accepts in a Hello.
pub const PROTO_MIN_VERSION: u16 = 1;

/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"CRSV";

/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 24;

/// Upper bound on one frame's payload (16 MiB) — a corrupt or hostile
/// length field must not convince the server to allocate gigabytes.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// What a frame means. The discriminants are the wire encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize)]
pub enum FrameKind {
    /// Client → server: version negotiation opener.
    Hello,
    /// Server → client: negotiation accepted, carries chosen version.
    HelloAck,
    /// Client → server: run a campaign spec.
    Request,
    /// Server → client: progress event for an in-flight request.
    Progress,
    /// Server → client: the deterministic results document.
    Result,
    /// Server → client: request finished (status + advisory stats).
    Done,
    /// Server → client: admission queue full, retry later.
    Busy,
    /// Server → client: request-level or protocol-level failure.
    Error,
    /// Client → server: cancel an in-flight request.
    Cancel,
    /// Client → server: drain in-flight work and exit (the
    /// SIGTERM-equivalent; `std` cannot portably trap signals).
    Shutdown,
    /// Server → client: shutdown acknowledged, drain begins.
    ShutdownAck,
    /// Client → server: heartbeat probe (the fleet supervisor's
    /// liveness check).
    Ping,
    /// Server → client: heartbeat answer carrying serving-phase state
    /// (queue depth, executor activity, completed count) so health is
    /// judged by the serving loop, not just process liveness.
    Pong,
    /// Client → server: request the server's content-addressed cache
    /// records (warm-cache replication, pull side).
    SyncPull,
    /// Server → client: the cache records, as the same CRC-framed
    /// JSONL lines the cache persists to disk.
    SyncState,
    /// Client → server: merge these CRC-framed JSONL cache records
    /// (warm-cache replication, push side).
    SyncPush,
    /// Server → client: push acknowledged, carries merged/rejected
    /// record counts.
    SyncAck,
}

impl FrameKind {
    /// Wire encoding of this kind.
    pub fn code(self) -> u8 {
        match self {
            FrameKind::Hello => 1,
            FrameKind::HelloAck => 2,
            FrameKind::Request => 3,
            FrameKind::Progress => 4,
            FrameKind::Result => 5,
            FrameKind::Done => 6,
            FrameKind::Busy => 7,
            FrameKind::Error => 8,
            FrameKind::Cancel => 9,
            FrameKind::Shutdown => 10,
            FrameKind::ShutdownAck => 11,
            FrameKind::Ping => 12,
            FrameKind::Pong => 13,
            FrameKind::SyncPull => 14,
            FrameKind::SyncState => 15,
            FrameKind::SyncPush => 16,
            FrameKind::SyncAck => 17,
        }
    }

    /// Decode a wire kind byte.
    pub fn from_code(code: u8) -> Option<FrameKind> {
        Some(match code {
            1 => FrameKind::Hello,
            2 => FrameKind::HelloAck,
            3 => FrameKind::Request,
            4 => FrameKind::Progress,
            5 => FrameKind::Result,
            6 => FrameKind::Done,
            7 => FrameKind::Busy,
            8 => FrameKind::Error,
            9 => FrameKind::Cancel,
            10 => FrameKind::Shutdown,
            11 => FrameKind::ShutdownAck,
            12 => FrameKind::Ping,
            13 => FrameKind::Pong,
            14 => FrameKind::SyncPull,
            15 => FrameKind::SyncState,
            16 => FrameKind::SyncPush,
            17 => FrameKind::SyncAck,
            _ => return None,
        })
    }
}

/// One decoded frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// What the frame means.
    pub kind: FrameKind,
    /// The request this frame belongs to (0 for connection-scoped
    /// frames: Hello, HelloAck, Shutdown, ShutdownAck).
    pub request_id: u64,
    /// CRC-checked payload bytes (JSON for every kind except
    /// [`FrameKind::Result`], whose payload is the verbatim
    /// `results_json()` document).
    pub payload: Vec<u8>,
}

impl Frame {
    /// A frame with a UTF-8 payload.
    pub fn text(kind: FrameKind, request_id: u64, payload: impl Into<String>) -> Frame {
        Frame {
            kind,
            request_id,
            payload: payload.into().into_bytes(),
        }
    }

    /// The payload as UTF-8 (lossy — diagnostics only).
    pub fn payload_str(&self) -> String {
        String::from_utf8_lossy(&self.payload).into_owned()
    }

    /// Encode to wire bytes (header + payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len());
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&PROTO_VERSION.to_le_bytes());
        out.push(self.kind.code());
        out.push(0);
        out.extend_from_slice(&self.request_id.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(&self.payload).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }
}

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The peer closed the connection cleanly between frames.
    Eof,
    /// I/O failure (including read timeouts; the caller distinguishes
    /// idle timeouts from mid-frame stalls by where they happen).
    Io(io::Error),
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The header carried an unsupported protocol version.
    BadVersion(u16),
    /// The header carried an unknown kind byte.
    UnknownKind(u8),
    /// The declared payload length exceeds [`MAX_PAYLOAD`].
    Oversize(u32),
    /// The payload failed its CRC check.
    CrcMismatch {
        /// CRC declared in the header.
        want: u32,
        /// CRC computed over the received payload.
        got: u32,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Eof => write!(f, "connection closed"),
            FrameError::Io(e) => write!(f, "i/o: {e}"),
            FrameError::BadMagic(m) => write!(f, "bad magic {m:02x?}"),
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::Oversize(n) => write!(f, "payload length {n} exceeds {MAX_PAYLOAD}"),
            FrameError::CrcMismatch { want, got } => {
                write!(
                    f,
                    "payload CRC mismatch: header {want:08x}, payload {got:08x}"
                )
            }
        }
    }
}

impl FrameError {
    /// Whether this is a timeout (`WouldBlock`/`TimedOut`) rather than
    /// a hard failure.
    pub fn is_timeout(&self) -> bool {
        matches!(
            self,
            FrameError::Io(e) if matches!(
                e.kind(),
                io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
            )
        )
    }
}

/// Read one frame. Distinguishes a clean close ([`FrameError::Eof`],
/// zero bytes before the header) from a truncated frame (EOF
/// mid-header or mid-payload, surfaced as [`FrameError::Io`] with
/// `UnexpectedEof`).
///
/// # Errors
///
/// See [`FrameError`]; a timeout on the *first* header byte also lands
/// in [`FrameError::Io`] — callers treat it as "idle, poll again" via
/// [`FrameError::is_timeout`].
pub fn read_frame(r: &mut impl Read) -> Result<Frame, FrameError> {
    let mut header = [0u8; HEADER_LEN];
    // First byte separately: zero bytes here is a clean close, not a
    // truncation.
    match r.read(&mut header[..1]) {
        Ok(0) => return Err(FrameError::Eof),
        Ok(_) => {}
        Err(e) => return Err(FrameError::Io(e)),
    }
    r.read_exact(&mut header[1..]).map_err(FrameError::Io)?;
    if header[..4] != MAGIC {
        return Err(FrameError::BadMagic([
            header[0], header[1], header[2], header[3],
        ]));
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if !(PROTO_MIN_VERSION..=PROTO_VERSION).contains(&version) {
        return Err(FrameError::BadVersion(version));
    }
    let kind = FrameKind::from_code(header[6]).ok_or(FrameError::UnknownKind(header[6]))?;
    let request_id = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
    let payload_len = u32::from_le_bytes(header[16..20].try_into().expect("4 bytes"));
    if payload_len > MAX_PAYLOAD {
        return Err(FrameError::Oversize(payload_len));
    }
    let want = u32::from_le_bytes(header[20..24].try_into().expect("4 bytes"));
    let mut payload = vec![0u8; payload_len as usize];
    r.read_exact(&mut payload).map_err(FrameError::Io)?;
    let got = crc32(&payload);
    if got != want {
        return Err(FrameError::CrcMismatch { want, got });
    }
    Ok(Frame {
        kind,
        request_id,
        payload,
    })
}

/// Write one frame.
///
/// # Errors
///
/// Underlying stream I/O failure.
pub fn write_frame(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    w.write_all(&frame.encode())?;
    w.flush()
}

/// The client's Hello payload advertising its supported version range.
pub fn hello_payload() -> String {
    format!("{{\"min\":{PROTO_MIN_VERSION},\"max\":{PROTO_VERSION},\"client\":\"cr-serve\"}}")
}

/// Pick the protocol version for a Hello advertising `[min, max]`:
/// the highest version both sides speak, or `None` when the ranges are
/// disjoint.
pub fn negotiate(min: u16, max: u16) -> Option<u16> {
    let chosen = max.min(PROTO_VERSION);
    (chosen >= min && chosen >= PROTO_MIN_VERSION && min <= max).then_some(chosen)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Frame {
        Frame::text(FrameKind::Request, 42, r#"{"name":"t","tasks":[]}"#)
    }

    #[test]
    fn frames_round_trip() {
        let frame = sample();
        let bytes = frame.encode();
        assert_eq!(bytes.len(), HEADER_LEN + frame.payload.len());
        let back = read_frame(&mut &bytes[..]).expect("decodes");
        assert_eq!(back, frame);
    }

    #[test]
    fn every_kind_round_trips() {
        for code in 1..=17u8 {
            let kind = FrameKind::from_code(code).expect("valid code");
            assert_eq!(kind.code(), code);
            let frame = Frame {
                kind,
                request_id: u64::from(code),
                payload: vec![code; 3],
            };
            let back = read_frame(&mut &frame.encode()[..]).unwrap();
            assert_eq!(back, frame);
        }
        assert_eq!(FrameKind::from_code(0), None);
        assert_eq!(FrameKind::from_code(18), None);
    }

    #[test]
    fn clean_close_is_eof_not_truncation() {
        let empty: &[u8] = &[];
        assert!(matches!(read_frame(&mut { empty }), Err(FrameError::Eof)));
    }

    #[test]
    fn truncated_header_and_payload_are_io_errors() {
        let bytes = sample().encode();
        for cut in [1, HEADER_LEN - 1, HEADER_LEN + 2] {
            let err = read_frame(&mut &bytes[..cut]).unwrap_err();
            assert!(matches!(err, FrameError::Io(_)), "cut at {cut}: {err}");
        }
    }

    #[test]
    fn corrupt_payload_fails_crc() {
        let mut bytes = sample().encode();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x01;
        assert!(matches!(
            read_frame(&mut &bytes[..]),
            Err(FrameError::CrcMismatch { .. })
        ));
    }

    #[test]
    fn bad_magic_version_kind_and_length_are_rejected() {
        let good = sample().encode();

        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(matches!(
            read_frame(&mut &bad[..]),
            Err(FrameError::BadMagic(_))
        ));

        let mut bad = good.clone();
        bad[4..6].copy_from_slice(&99u16.to_le_bytes());
        assert!(matches!(
            read_frame(&mut &bad[..]),
            Err(FrameError::BadVersion(99))
        ));

        let mut bad = good.clone();
        bad[6] = 200;
        assert!(matches!(
            read_frame(&mut &bad[..]),
            Err(FrameError::UnknownKind(200))
        ));

        let mut bad = good;
        bad[16..20].copy_from_slice(&(MAX_PAYLOAD + 1).to_le_bytes());
        assert!(matches!(
            read_frame(&mut &bad[..]),
            Err(FrameError::Oversize(_))
        ));
    }

    #[test]
    fn negotiation_picks_highest_shared_version() {
        assert_eq!(negotiate(1, 1), Some(1));
        assert_eq!(negotiate(1, 7), Some(PROTO_VERSION));
        assert_eq!(negotiate(PROTO_VERSION + 1, PROTO_VERSION + 3), None);
        assert_eq!(negotiate(5, 2), None, "inverted range is a reject");
    }

    #[test]
    fn result_payload_is_verbatim_bytes() {
        // The Result frame carries the deterministic document
        // untouched — byte-identical comparison against a one-shot run
        // depends on this.
        let doc = r#"{"spec":{},"records":[],"degraded":false}"#;
        let frame = Frame::text(FrameKind::Result, 7, doc);
        let back = read_frame(&mut &frame.encode()[..]).unwrap();
        assert_eq!(back.payload, doc.as_bytes());
    }
}
