//! Taint monotonicity property: enlarging the initial taint seed never
//! shrinks the final taint anywhere. (A violation would mean the engine
//! *loses* attacker influence somewhere — unsound for discovery.)

use cr_isa::{AluOp, Asm, Inst, Mem as M, Reg, Rm, Width};
use cr_taint::{TaintEngine, TaintSet};
use cr_vm::{Cpu, Exit, Memory, Prot};
use proptest::prelude::*;

const DATA: u64 = 0x10_0000;
const CELLS: u64 = 8;

/// A tiny straight-line program over 4 registers and 8 memory cells.
#[derive(Debug, Clone)]
enum Op {
    Load(u8, u8),  // reg <- cell
    Store(u8, u8), // cell <- reg
    MovRR(u8, u8), // reg <- reg
    Add(u8, u8),   // reg += reg
    Xor(u8, u8),   // reg ^= reg
    Imm(u8),       // reg <- constant
}

const REGS: [Reg; 4] = [Reg::Rax, Reg::Rbx, Reg::Rsi, Reg::Rdi];

fn compile(ops: &[Op]) -> Vec<u8> {
    let mut a = Asm::new(0x1000);
    for op in ops {
        match *op {
            Op::Load(r, c) => {
                a.mov_ri(Reg::R9, DATA + (c as u64 % CELLS) * 8);
                a.load(REGS[r as usize % 4], M::base(Reg::R9));
            }
            Op::Store(r, c) => {
                a.mov_ri(Reg::R9, DATA + (c as u64 % CELLS) * 8);
                a.store(M::base(Reg::R9), REGS[r as usize % 4]);
            }
            Op::MovRR(d, s) => {
                a.mov_rr(REGS[d as usize % 4], REGS[s as usize % 4]);
            }
            Op::Add(d, s) => {
                a.add_rr(REGS[d as usize % 4], REGS[s as usize % 4]);
            }
            Op::Xor(d, s) => {
                a.inst(Inst::AluRmR {
                    op: AluOp::Xor,
                    dst: Rm::Reg(REGS[d as usize % 4]),
                    src: REGS[s as usize % 4],
                    width: Width::B8,
                });
            }
            Op::Imm(r) => {
                a.mov_ri(REGS[r as usize % 4], 0x42);
            }
        }
    }
    a.hlt();
    a.assemble().unwrap().code
}

fn run_with_seed(code: &[u8], seed_cells: &[u8]) -> TaintEngine {
    let mut mem = Memory::new();
    mem.map(0x1000, 0x1000, Prot::RX);
    mem.poke(0x1000, code).unwrap();
    mem.map(DATA, 0x1000, Prot::RW);
    let mut taint = TaintEngine::new();
    for &c in seed_cells {
        taint.taint_region(DATA + (c as u64 % CELLS) * 8, 8, c % 8);
    }
    let mut cpu = Cpu::new();
    cpu.rip = 0x1000;
    loop {
        match cpu.step(&mut mem, &mut taint) {
            Exit::Normal => {}
            Exit::Halt => break,
            e => panic!("{e:?}"),
        }
    }
    taint
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>(), any::<u8>()).prop_map(|(r, c)| Op::Load(r, c)),
        (any::<u8>(), any::<u8>()).prop_map(|(r, c)| Op::Store(r, c)),
        (any::<u8>(), any::<u8>()).prop_map(|(d, s)| Op::MovRR(d, s)),
        (any::<u8>(), any::<u8>()).prop_map(|(d, s)| Op::Add(d, s)),
        (any::<u8>(), any::<u8>()).prop_map(|(d, s)| Op::Xor(d, s)),
        any::<u8>().prop_map(Op::Imm),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn larger_seed_never_shrinks_taint(
        ops in proptest::collection::vec(arb_op(), 1..24),
        small in proptest::collection::vec(any::<u8>(), 0..3),
        extra in proptest::collection::vec(any::<u8>(), 1..3),
    ) {
        let code = compile(&ops);
        let mut big = small.clone();
        big.extend_from_slice(&extra);

        let t_small = run_with_seed(&code, &small);
        let t_big = run_with_seed(&code, &big);

        // Subset check over all cells and registers.
        for c in 0..CELLS {
            let a = t_small.mem_taint_union(DATA + c * 8, 8);
            let b = t_big.mem_taint_union(DATA + c * 8, 8);
            prop_assert_eq!(a.0 & !b.0, 0, "cell {} lost taint: {} ⊄ {}", c, a, b);
        }
        for r in REGS {
            let a = t_small.reg_taint(r, Width::B8);
            let b = t_big.reg_taint(r, Width::B8);
            prop_assert_eq!(a.0 & !b.0, 0, "reg {} lost taint", r);
        }
        let _ = TaintSet::EMPTY;
    }

    #[test]
    fn no_seed_means_no_taint(ops in proptest::collection::vec(arb_op(), 1..24)) {
        let code = compile(&ops);
        let t = run_with_seed(&code, &[]);
        for c in 0..CELLS {
            prop_assert!(!t.mem_taint_union(DATA + c * 8, 8).is_tainted());
        }
        for r in REGS {
            prop_assert!(!t.reg_taint(r, Width::B8).is_tainted());
        }
    }
}
