//! # cr-taint — byte-granular dynamic taint tracking
//!
//! A libdft-style data-flow tracker implemented as a [`cr_vm::Hook`]. The
//! paper extends libdft with byte-granular taint to find syscall call
//! sites whose pointer arguments are influenced by attacker-controlled
//! bytes (§IV-A); this crate reproduces that capability for the emulator.
//!
//! Taint is a set of up to 64 *labels* ([`TaintSet`]); the test monitor
//! assigns one label per attacker-controlled input region (a network
//! message, a header field, …) so a positive query also reports *which*
//! input bytes control the value — the information needed to build an
//! actual probing primitive.
//!
//! Propagation rules (byte-granular where the ISA is, conservative
//! otherwise):
//!
//! * data moves copy taint byte-for-byte;
//! * arithmetic unions the operand taints into every result byte;
//! * `lea` unions the base/index register taints (address arithmetic
//!   propagates attacker control into pointers);
//! * immediates clear taint; the `xor r, r` / `sub r, r` zeroing idioms
//!   clear taint;
//! * flags and control flow are not tracked (explicit-flows-only, like
//!   libdft).
//!
//! # Examples
//!
//! ```
//! use cr_taint::TaintEngine;
//! use cr_vm::{Cpu, Exit, Memory, Prot};
//! use cr_isa::{Asm, Mem as M, Reg, Width};
//!
//! // rax = *(u64*)0x10_0000 — attacker-controlled memory.
//! let mut a = Asm::new(0x1000);
//! a.mov_ri(Reg::Rdi, 0x10_0000);
//! a.load(Reg::Rax, M::base(Reg::Rdi));
//! a.hlt();
//! let code = a.assemble()?.code;
//!
//! let mut mem = Memory::new();
//! mem.map(0x1000, 0x1000, Prot::RX);
//! mem.poke(0x1000, &code)?;
//! mem.map(0x10_0000, 0x1000, Prot::RW);
//!
//! let mut taint = TaintEngine::new();
//! taint.taint_region(0x10_0000, 8, 0); // label 0 = attacker input
//! let mut cpu = Cpu::new();
//! cpu.rip = 0x1000;
//! while cpu.step(&mut mem, &mut taint) == Exit::Normal {}
//! assert!(taint.reg_taint(Reg::Rax, Width::B8).contains(0));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use cr_isa::{AluOp, Inst, Mem as MemOp, Reg, Rm, Width};
use cr_vm::{Cpu, Hook};
use std::collections::HashMap;

/// A set of taint labels (bit `i` = label `i`), at most 64 labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TaintSet(pub u64);

impl TaintSet {
    /// The empty (untainted) set.
    pub const EMPTY: TaintSet = TaintSet(0);

    /// A set holding the single label `label`.
    ///
    /// # Panics
    ///
    /// Panics if `label >= 64`.
    pub fn label(label: u8) -> TaintSet {
        assert!(label < 64, "at most 64 taint labels");
        TaintSet(1 << label)
    }

    /// Whether any label is present.
    #[inline]
    pub fn is_tainted(self) -> bool {
        self.0 != 0
    }

    /// Whether `label` is present.
    #[inline]
    pub fn contains(self, label: u8) -> bool {
        self.0 & (1 << label) != 0
    }

    /// Union of two sets.
    #[inline]
    pub fn union(self, other: TaintSet) -> TaintSet {
        TaintSet(self.0 | other.0)
    }

    /// The labels present, ascending — a non-allocating iterator, so
    /// hot paths (per-syscall provenance recording) can walk a set
    /// without building a `Vec`.
    pub fn labels(self) -> impl Iterator<Item = u8> {
        (0..64).filter(move |&l| self.contains(l))
    }

    /// Number of labels present.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set holds no labels (alias of `!is_tainted()` for
    /// collection-style call sites).
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }
}

impl std::ops::BitOr for TaintSet {
    type Output = TaintSet;

    fn bitor(self, rhs: TaintSet) -> TaintSet {
        self.union(rhs)
    }
}

impl std::fmt::Display for TaintSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if !self.is_tainted() {
            return write!(f, "∅");
        }
        write!(f, "{{")?;
        for (i, l) in self.labels().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "}}")
    }
}

const PAGE: u64 = 4096;

/// Per-thread register shadow bank (see [`TaintEngine::swap_reg_file`]).
pub type RegShadow = [[TaintSet; 8]; 16];

type ShadowPage = Box<[TaintSet; PAGE as usize]>;

/// Byte-granular shadow state for registers and memory, with libdft-style
/// propagation driven from [`Hook::on_inst`].
#[derive(Default)]
pub struct TaintEngine {
    regs: [[TaintSet; 8]; 16],
    mem: HashMap<u64, ShadowPage>,
    /// Total number of propagation steps performed (for overhead benches).
    pub propagations: u64,
}

impl std::fmt::Debug for TaintEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaintEngine")
            .field("shadow_pages", &self.mem.len())
            .field("propagations", &self.propagations)
            .finish()
    }
}

impl TaintEngine {
    /// A fresh engine with no taint.
    pub fn new() -> TaintEngine {
        TaintEngine::default()
    }

    /// Mark `[addr, addr+len)` with `label` (a taint source, e.g. the
    /// bytes `recv` wrote from an attacker-controlled connection).
    pub fn taint_region(&mut self, addr: u64, len: u64, label: u8) {
        let set = TaintSet::label(label);
        for a in addr..addr + len {
            let e = self.mem_mut(a);
            *e = e.union(set);
        }
    }

    /// Clear all taint in `[addr, addr+len)`.
    pub fn clear_region(&mut self, addr: u64, len: u64) {
        for a in addr..addr + len {
            *self.mem_mut(a) = TaintSet::EMPTY;
        }
    }

    /// Clear everything (new test run).
    pub fn clear_all(&mut self) {
        self.regs = [[TaintSet::EMPTY; 8]; 16];
        self.mem.clear();
    }

    /// Taint of one memory byte.
    pub fn mem_taint(&self, addr: u64) -> TaintSet {
        self.mem
            .get(&(addr / PAGE))
            .map(|p| p[(addr % PAGE) as usize])
            .unwrap_or(TaintSet::EMPTY)
    }

    /// Union of taint across `[addr, addr+len)`.
    pub fn mem_taint_union(&self, addr: u64, len: u64) -> TaintSet {
        (addr..addr + len)
            .map(|a| self.mem_taint(a))
            .fold(TaintSet::EMPTY, TaintSet::union)
    }

    /// Taint of one register byte.
    pub fn reg_byte_taint(&self, r: Reg, byte: usize) -> TaintSet {
        self.regs[r.encoding() as usize][byte]
    }

    /// Union of taint across the low `width` bytes of a register.
    pub fn reg_taint(&self, r: Reg, width: Width) -> TaintSet {
        self.regs[r.encoding() as usize][..width.bytes()]
            .iter()
            .copied()
            .fold(TaintSet::EMPTY, TaintSet::union)
    }

    /// Overwrite the taint of a whole register (testing / monitors).
    pub fn set_reg_taint(&mut self, r: Reg, set: TaintSet) {
        self.regs[r.encoding() as usize] = [set; 8];
    }

    /// Swap the register shadow file with `bank` — monitors tracking a
    /// multi-threaded process keep one bank per thread and swap on
    /// scheduler switches.
    pub fn swap_reg_file(&mut self, bank: &mut RegShadow) {
        std::mem::swap(&mut self.regs, bank);
    }

    fn mem_mut(&mut self, addr: u64) -> &mut TaintSet {
        let page = self
            .mem
            .entry(addr / PAGE)
            .or_insert_with(|| Box::new([TaintSet::EMPTY; PAGE as usize]));
        &mut page[(addr % PAGE) as usize]
    }

    fn read_rm_bytes(&self, cpu: &Cpu, rm: Rm, w: Width, next: u64) -> [TaintSet; 8] {
        let mut out = [TaintSet::EMPTY; 8];
        match rm {
            Rm::Reg(r) => {
                out[..w.bytes()].copy_from_slice(&self.regs[r.encoding() as usize][..w.bytes()]);
            }
            Rm::Mem(m) => {
                let ea = cpu.effective_addr(&m, next);
                for (i, slot) in out.iter_mut().take(w.bytes()).enumerate() {
                    *slot = self.mem_taint(ea.wrapping_add(i as u64));
                }
            }
        }
        out
    }

    fn write_rm_bytes(&mut self, cpu: &Cpu, rm: Rm, w: Width, bytes: &[TaintSet; 8], next: u64) {
        match rm {
            Rm::Reg(r) => {
                let enc = r.encoding() as usize;
                match w {
                    Width::B8 => self.regs[enc] = *bytes,
                    Width::B4 => {
                        self.regs[enc][..4].copy_from_slice(&bytes[..4]);
                        // 32-bit writes zero-extend: upper bytes become
                        // constant zero, hence untainted.
                        for b in &mut self.regs[enc][4..] {
                            *b = TaintSet::EMPTY;
                        }
                    }
                    Width::B1 => self.regs[enc][0] = bytes[0],
                }
            }
            Rm::Mem(m) => {
                let ea = cpu.effective_addr(&m, next);
                for (i, &b) in bytes.iter().take(w.bytes()).enumerate() {
                    *self.mem_mut(ea.wrapping_add(i as u64)) = b;
                }
            }
        }
    }

    fn rm_union(&self, cpu: &Cpu, rm: Rm, w: Width, next: u64) -> TaintSet {
        self.read_rm_bytes(cpu, rm, w, next)[..w.bytes()]
            .iter()
            .copied()
            .fold(TaintSet::EMPTY, TaintSet::union)
    }

    fn addr_taint(&self, m: &MemOp) -> TaintSet {
        let mut t = TaintSet::EMPTY;
        if let Some(b) = m.base {
            t = t.union(self.reg_taint(b, Width::B8));
        }
        if let Some((i, _)) = m.index {
            t = t.union(self.reg_taint(i, Width::B8));
        }
        t
    }
}

impl Hook for TaintEngine {
    fn on_inst(&mut self, cpu: &Cpu, _mem: &mut cr_vm::Memory, inst: &Inst, va: u64, len: usize) {
        self.propagations += 1;
        let next = va.wrapping_add(len as u64);
        match *inst {
            Inst::MovRRm { dst, src, width } => {
                let bytes = self.read_rm_bytes(cpu, src, width, next);
                // 32-bit loads zero-extend the destination.
                let w = if width == Width::B4 { Width::B8 } else { width };
                let mut full = [TaintSet::EMPTY; 8];
                full[..width.bytes()].copy_from_slice(&bytes[..width.bytes()]);
                if width == Width::B1 {
                    // Byte moves merge; keep existing upper taint.
                    self.regs[dst.encoding() as usize][0] = full[0];
                } else {
                    self.write_rm_bytes(cpu, Rm::Reg(dst), w, &full, next);
                }
            }
            Inst::MovRmR { dst, src, width } => {
                let mut bytes = [TaintSet::EMPTY; 8];
                bytes[..width.bytes()]
                    .copy_from_slice(&self.regs[src.encoding() as usize][..width.bytes()]);
                self.write_rm_bytes(cpu, dst, width, &bytes, next);
            }
            Inst::MovRI { dst, .. } => {
                self.set_reg_taint(dst, TaintSet::EMPTY);
            }
            Inst::MovRmI { dst, width, .. } => {
                self.write_rm_bytes(cpu, dst, width, &[TaintSet::EMPTY; 8], next);
            }
            Inst::Movzx { dst, src, .. } => {
                let bytes = self.read_rm_bytes(cpu, src, Width::B1, next);
                let mut full = [TaintSet::EMPTY; 8];
                full[0] = bytes[0];
                self.regs[dst.encoding() as usize] = full;
            }
            Inst::Lea { dst, mem } => {
                let t = self.addr_taint(&mem);
                self.set_reg_taint(dst, t);
            }
            Inst::AluRRm {
                op,
                dst,
                src,
                width,
            } => {
                if op.writes_dst() {
                    // Zeroing idioms: xor r,r / sub r,r clear taint.
                    if matches!(op, AluOp::Xor | AluOp::Sub) && src == Rm::Reg(dst) {
                        self.set_reg_taint(dst, TaintSet::EMPTY);
                    } else {
                        let t = self
                            .reg_taint(dst, width)
                            .union(self.rm_union(cpu, src, width, next));
                        let w = if width == Width::B1 {
                            Width::B1
                        } else {
                            Width::B8
                        };
                        self.write_rm_bytes(cpu, Rm::Reg(dst), w, &[t; 8], next);
                    }
                }
            }
            Inst::AluRmR {
                op,
                dst,
                src,
                width,
            } => {
                if op.writes_dst() {
                    if matches!(op, AluOp::Xor | AluOp::Sub) && dst == Rm::Reg(src) {
                        self.set_reg_taint(src, TaintSet::EMPTY);
                    } else {
                        let t = self
                            .rm_union(cpu, dst, width, next)
                            .union(self.reg_taint(src, width));
                        self.write_rm_bytes(cpu, dst, width, &[t; 8], next);
                    }
                }
            }
            Inst::AluRmI { op, dst, width, .. } => {
                if op.writes_dst() {
                    let t = self.rm_union(cpu, dst, width, next);
                    self.write_rm_bytes(cpu, dst, width, &[t; 8], next);
                }
            }
            Inst::ShiftRI { dst, .. } => {
                let t = self.reg_taint(dst, Width::B8);
                self.set_reg_taint(dst, t);
            }
            Inst::Neg(r) | Inst::Not(r) => {
                let t = self.reg_taint(r, Width::B8);
                self.set_reg_taint(r, t);
            }
            Inst::Imul { dst, src } => {
                let t =
                    self.reg_taint(dst, Width::B8)
                        .union(self.rm_union(cpu, src, Width::B8, next));
                self.set_reg_taint(dst, t);
            }
            Inst::Cmov { dst, src, cond } => {
                // Conservative: the destination may take the source's
                // taint regardless of the (untracked) condition.
                let _ = cond;
                let t =
                    self.reg_taint(dst, Width::B8)
                        .union(self.rm_union(cpu, src, Width::B8, next));
                self.set_reg_taint(dst, t);
            }
            Inst::Xchg(a, b) => {
                let enc_a = a.encoding() as usize;
                let enc_b = b.encoding() as usize;
                self.regs.swap(enc_a, enc_b);
            }
            Inst::Push(r) => {
                let sp = cpu.reg(Reg::Rsp).wrapping_sub(8);
                let bytes = self.regs[r.encoding() as usize];
                for (i, &b) in bytes.iter().enumerate() {
                    *self.mem_mut(sp.wrapping_add(i as u64)) = b;
                }
            }
            Inst::Pop(r) => {
                let sp = cpu.reg(Reg::Rsp);
                let mut bytes = [TaintSet::EMPTY; 8];
                for (i, slot) in bytes.iter_mut().enumerate() {
                    *slot = self.mem_taint(sp.wrapping_add(i as u64));
                }
                self.regs[r.encoding() as usize] = bytes;
            }
            Inst::CallRel(_) | Inst::CallRm(_) => {
                // Return address is constant data: untaint the slot.
                let sp = cpu.reg(Reg::Rsp).wrapping_sub(8);
                for i in 0..8 {
                    *self.mem_mut(sp.wrapping_add(i)) = TaintSet::EMPTY;
                }
            }
            Inst::Setcc { dst, .. } => {
                self.regs[dst.encoding() as usize][0] = TaintSet::EMPTY;
            }
            Inst::Jcc { .. }
            | Inst::JmpRel(_)
            | Inst::JmpRm(_)
            | Inst::Ret
            | Inst::Syscall
            | Inst::Int3
            | Inst::Nop
            | Inst::Ud2
            | Inst::Hlt
            | Inst::Cpuid => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_isa::{Asm, Mem as MemOp};
    use cr_vm::{Cpu, Exit, Memory, Prot};
    use Reg::*;

    fn exec(
        build: impl FnOnce(&mut Asm),
        setup: impl FnOnce(&mut Memory, &mut TaintEngine),
    ) -> (Cpu, TaintEngine) {
        let mut a = Asm::new(0x40_0000);
        build(&mut a);
        let asm = a.assemble().unwrap();
        let mut mem = Memory::new();
        mem.map(0x40_0000, 0x1_0000, Prot::RX);
        mem.poke(0x40_0000, &asm.code).unwrap();
        mem.map(0x10_0000, 0x1_0000, Prot::RW); // data
        mem.map(0x7F_0000, 0x1_0000, Prot::RW); // stack
        let mut taint = TaintEngine::new();
        setup(&mut mem, &mut taint);
        let mut cpu = Cpu::new();
        cpu.rip = 0x40_0000;
        cpu.set_reg(Rsp, 0x7F_8000);
        for _ in 0..100_000 {
            match cpu.step(&mut mem, &mut taint) {
                Exit::Normal | Exit::Syscall => {}
                Exit::Halt => return (cpu, taint),
                e => panic!("unexpected exit {e:?}"),
            }
        }
        panic!("no halt");
    }

    #[test]
    fn load_propagates_mem_to_reg() {
        let (_, t) = exec(
            |a| {
                a.mov_ri(Rdi, 0x10_0000);
                a.load(Rax, MemOp::base(Rdi));
                a.hlt();
            },
            |_m, t| t.taint_region(0x10_0000, 8, 3),
        );
        assert!(t.reg_taint(Rax, Width::B8).contains(3));
        assert!(!t.reg_taint(Rdi, Width::B8).is_tainted());
    }

    #[test]
    fn byte_granularity_preserved() {
        let (_, t) = exec(
            |a| {
                a.mov_ri(Rdi, 0x10_0000);
                a.load(Rax, MemOp::base(Rdi));
                a.hlt();
            },
            |_m, t| t.taint_region(0x10_0002, 1, 5), // only byte 2 tainted
        );
        assert!(!t.reg_byte_taint(Rax, 0).is_tainted());
        assert!(t.reg_byte_taint(Rax, 2).contains(5));
        assert!(!t.reg_byte_taint(Rax, 3).is_tainted());
    }

    #[test]
    fn store_propagates_reg_to_mem() {
        let (_, t) = exec(
            |a| {
                a.mov_ri(Rdi, 0x10_0000);
                a.load(Rax, MemOp::base(Rdi));
                a.mov_ri(Rsi, 0x10_0100);
                a.store(MemOp::base(Rsi), Rax);
                a.hlt();
            },
            |_m, t| t.taint_region(0x10_0000, 8, 1),
        );
        assert!(t.mem_taint_union(0x10_0100, 8).contains(1));
    }

    #[test]
    fn immediates_clear_taint() {
        let (_, t) = exec(
            |a| {
                a.mov_ri(Rdi, 0x10_0000);
                a.load(Rax, MemOp::base(Rdi));
                a.mov_ri(Rax, 0); // overwrite with constant
                a.hlt();
            },
            |_m, t| t.taint_region(0x10_0000, 8, 1),
        );
        assert!(!t.reg_taint(Rax, Width::B8).is_tainted());
    }

    #[test]
    fn xor_zeroing_clears_taint() {
        let (_, t) = exec(
            |a| {
                a.mov_ri(Rdi, 0x10_0000);
                a.load(Rax, MemOp::base(Rdi));
                a.zero(Rax);
                a.hlt();
            },
            |_m, t| t.taint_region(0x10_0000, 8, 1),
        );
        assert!(!t.reg_taint(Rax, Width::B8).is_tainted());
    }

    #[test]
    fn arithmetic_unions_taint() {
        let (_, t) = exec(
            |a| {
                a.mov_ri(Rdi, 0x10_0000);
                a.load(Rax, MemOp::base(Rdi));
                a.load(Rbx, MemOp::base_disp(Rdi, 8));
                a.add_rr(Rax, Rbx);
                a.hlt();
            },
            |_m, t| {
                t.taint_region(0x10_0000, 8, 1);
                t.taint_region(0x10_0008, 8, 2);
            },
        );
        let set = t.reg_taint(Rax, Width::B8);
        assert!(set.contains(1) && set.contains(2));
    }

    #[test]
    fn lea_propagates_address_taint() {
        // The key rule for the paper: attacker bytes flowing into pointer
        // arithmetic make the resulting pointer attacker-controlled.
        let (_, t) = exec(
            |a| {
                a.mov_ri(Rdi, 0x10_0000);
                a.load(Rbx, MemOp::base(Rdi)); // tainted offset
                a.lea(Rcx, MemOp::base_index(Rdi, Rbx, 1, 0));
                a.hlt();
            },
            |m, t| {
                m.write_u64(0x10_0000, 0x10).unwrap();
                t.taint_region(0x10_0000, 8, 7);
            },
        );
        assert!(t.reg_taint(Rcx, Width::B8).contains(7));
    }

    #[test]
    fn push_pop_roundtrip() {
        let (_, t) = exec(
            |a| {
                a.mov_ri(Rdi, 0x10_0000);
                a.load(Rax, MemOp::base(Rdi));
                a.push(Rax);
                a.pop(Rbx);
                a.hlt();
            },
            |_m, t| t.taint_region(0x10_0000, 8, 1),
        );
        assert!(t.reg_taint(Rbx, Width::B8).contains(1));
    }

    #[test]
    fn call_untaints_return_slot() {
        let (cpu, t) = exec(
            |a| {
                // Taint the would-be return-address slot, then call.
                a.mov_ri(Rdi, 0x7F_7FF8);
                let f = a.fresh();
                a.call_label(f);
                a.hlt();
                a.bind(f);
                a.ret();
            },
            |_m, t| t.taint_region(0x7F_7FF8, 8, 1),
        );
        let _ = cpu;
        assert!(!t.mem_taint_union(0x7F_7FF8, 8).is_tainted());
    }

    #[test]
    fn imul_unions_and_xchg_swaps() {
        let (_, t) = exec(
            |a| {
                a.mov_ri(Rdi, 0x10_0000);
                a.load(Rax, MemOp::base(Rdi));
                a.mov_ri(Rbx, 3);
                a.inst(cr_isa::Inst::Imul {
                    dst: Rbx,
                    src: cr_isa::Rm::Reg(Rax),
                });
                a.inst(cr_isa::Inst::Xchg(Rbx, Rdx));
                a.hlt();
            },
            |m, t| {
                m.write_u64(0x10_0000, 5).unwrap();
                t.taint_region(0x10_0000, 8, 2);
            },
        );
        assert!(
            t.reg_taint(Rdx, Width::B8).contains(2),
            "taint followed imul+xchg"
        );
        assert!(
            !t.reg_taint(Rbx, Width::B8).is_tainted(),
            "xchg moved taint out"
        );
    }

    #[test]
    fn cmov_is_conservatively_tainted() {
        let (_, t) = exec(
            |a| {
                a.mov_ri(Rdi, 0x10_0000);
                a.load(Rax, MemOp::base(Rdi));
                a.mov_ri(Rbx, 0);
                a.cmp_ri(Rbx, 1); // NE → cmove not taken
                a.inst(cr_isa::Inst::Cmov {
                    cond: cr_isa::Cond::E,
                    dst: Rbx,
                    src: cr_isa::Rm::Reg(Rax),
                });
                a.hlt();
            },
            |_m, t| t.taint_region(0x10_0000, 8, 3),
        );
        // Untaken, but the conservative rule still propagates.
        assert!(t.reg_taint(Rbx, Width::B8).contains(3));
    }

    #[test]
    fn neg_and_not_preserve_taint() {
        let (_, t) = exec(
            |a| {
                a.mov_ri(Rdi, 0x10_0000);
                a.load(Rax, MemOp::base(Rdi));
                a.inst(cr_isa::Inst::Neg(Rax));
                a.inst(cr_isa::Inst::Not(Rax));
                a.hlt();
            },
            |_m, t| t.taint_region(0x10_0000, 8, 1),
        );
        assert!(t.reg_taint(Rax, Width::B8).contains(1));
    }

    #[test]
    fn taintset_ops() {
        let a = TaintSet::label(1);
        let b = TaintSet::label(2);
        let u = a | b;
        assert!(u.contains(1) && u.contains(2) && !u.contains(3));
        assert_eq!(u.labels().collect::<Vec<u8>>(), vec![1, 2]);
        assert_eq!(u.len(), 2);
        assert!(TaintSet::EMPTY.is_empty() && !u.is_empty());
        assert_eq!(TaintSet::EMPTY.to_string(), "∅");
        assert_eq!(u.to_string(), "{1,2}");
    }

    #[test]
    #[should_panic(expected = "at most 64 taint labels")]
    fn label_bound_checked() {
        let _ = TaintSet::label(64);
    }

    #[test]
    fn clear_region_and_all() {
        let mut t = TaintEngine::new();
        t.taint_region(0x1000, 16, 0);
        assert!(t.mem_taint_union(0x1000, 16).is_tainted());
        t.clear_region(0x1000, 8);
        assert!(!t.mem_taint_union(0x1000, 8).is_tainted());
        assert!(t.mem_taint_union(0x1008, 8).is_tainted());
        t.clear_all();
        assert!(!t.mem_taint_union(0x1008, 8).is_tainted());
    }
}
