//! Offline `serde` subset: JSON serialization only.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of serde it uses: `#[derive(serde::Serialize)]` plus a
//! [`Serialize`] trait that renders **canonical JSON** (object keys in
//! declaration order, no whitespace, `\u` escapes for control
//! characters). Enum representation matches serde's external tagging:
//!
//! * unit variant → `"Name"`
//! * newtype variant → `{"Name":value}`
//! * struct/tuple variant → `{"Name":{...}}` / `{"Name":[...]}`
//!
//! Canonical output matters here: the campaign engine content-addresses
//! cached analyses by hashing exactly these bytes.

#![forbid(unsafe_code)]

// Let macro-generated `::serde::` paths resolve inside this crate's own
// tests as well as in downstream crates.
extern crate self as serde;

pub use serde_derive::Serialize;

use std::collections::{BTreeMap, BTreeSet, HashMap};

/// JSON serialization, serde-compatible in shape.
pub trait Serialize {
    /// Append this value's JSON rendering to `out`.
    fn write_json(&self, out: &mut String);

    /// This value's JSON rendering as an owned string.
    fn to_json(&self) -> String {
        let mut out = String::new();
        self.write_json(&mut out);
        out
    }
}

/// Escape and append one JSON string body (no surrounding quotes).
pub fn escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

impl Serialize for str {
    fn write_json(&self, out: &mut String) {
        out.push('"');
        escape_into(self, out);
        out.push('"');
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String) {
        self.as_str().write_json(out);
    }
}

impl Serialize for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}

macro_rules! impl_serialize_display {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(&self.to_string());
            }
        }
    )*};
}

impl_serialize_display!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

impl Serialize for f64 {
    fn write_json(&self, out: &mut String) {
        if self.is_finite() {
            // Always include a decimal point so the value re-parses as
            // floating-point.
            let s = format!("{self}");
            out.push_str(&s);
            if !s.contains('.') && !s.contains('e') {
                out.push_str(".0");
            }
        } else {
            out.push_str("null");
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            None => out.push_str("null"),
            Some(v) => v.write_json(out),
        }
    }
}

fn write_seq<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>, out: &mut String) {
    out.push('[');
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        item.write_json(out);
    }
    out.push(']');
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn write_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn write_json(&self, out: &mut String) {
        write_seq(self.iter(), out);
    }
}

fn write_map<'a, K: AsRef<str> + 'a, V: Serialize + 'a>(
    entries: impl Iterator<Item = (&'a K, &'a V)>,
    out: &mut String,
) {
    out.push('{');
    for (i, (k, v)) in entries.enumerate() {
        if i > 0 {
            out.push(',');
        }
        k.as_ref().write_json(out);
        out.push(':');
        v.write_json(out);
    }
    out.push('}');
}

impl<K: AsRef<str> + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn write_json(&self, out: &mut String) {
        write_map(self.iter(), out);
    }
}

impl<K: AsRef<str> + Ord + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn write_json(&self, out: &mut String) {
        // Deterministic output regardless of hasher state.
        let mut entries: Vec<(&K, &V)> = self.iter().collect();
        entries.sort_by(|a, b| a.0.cmp(b.0));
        write_map(entries.into_iter(), out);
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn write_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first { out.push(','); }
                    first = false;
                    self.$n.write_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )*};
}

impl_serialize_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_and_strings() {
        assert_eq!(42u64.to_json(), "42");
        assert_eq!((-3i32).to_json(), "-3");
        assert_eq!(true.to_json(), "true");
        assert_eq!("a\"b\n".to_json(), "\"a\\\"b\\n\"");
        assert_eq!(1.5f64.to_json(), "1.5");
        assert_eq!(2.0f64.to_json(), "2.0");
    }

    #[test]
    fn containers() {
        assert_eq!(vec![1u8, 2, 3].to_json(), "[1,2,3]");
        let m: BTreeMap<String, usize> = [("b".to_string(), 2), ("a".to_string(), 1)]
            .into_iter()
            .collect();
        assert_eq!(m.to_json(), "{\"a\":1,\"b\":2}");
        assert_eq!(Some(5u32).to_json(), "5");
        assert_eq!(Option::<u32>::None.to_json(), "null");
    }

    #[derive(Serialize)]
    struct Point {
        x: u64,
        y: Vec<u64>,
    }

    #[derive(Serialize)]
    enum Verdict {
        Plain,
        Accepts { witness: u64 },
        Reason(&'static str),
        Pair(u32, u32),
    }

    #[derive(Serialize)]
    struct Unit;

    #[derive(Serialize)]
    struct Wrap(u64, bool);

    #[test]
    fn derived_struct() {
        assert_eq!(
            Point {
                x: 1,
                y: vec![2, 3]
            }
            .to_json(),
            "{\"x\":1,\"y\":[2,3]}"
        );
        assert_eq!(Unit.to_json(), "null");
        assert_eq!(Wrap(9, false).to_json(), "[9,false]");
    }

    #[test]
    fn derived_enum_external_tagging() {
        assert_eq!(Verdict::Plain.to_json(), "\"Plain\"");
        assert_eq!(
            Verdict::Accepts { witness: 7 }.to_json(),
            "{\"Accepts\":{\"witness\":7}}"
        );
        assert_eq!(Verdict::Reason("x").to_json(), "{\"Reason\":\"x\"}");
        assert_eq!(Verdict::Pair(1, 2).to_json(), "{\"Pair\":[1,2]}");
    }
}
