//! Fixed-size array strategies.

use crate::strategy::Strategy;
use crate::TestRng;

/// Four values from the same strategy as a `[T; 4]`.
pub fn uniform4<S: Strategy>(element: S) -> Uniform<S, 4> {
    Uniform { element }
}

/// Strategy for `[S::Value; N]`.
#[derive(Clone)]
pub struct Uniform<S, const N: usize> {
    element: S,
}

impl<S: Strategy, const N: usize> Strategy for Uniform<S, N> {
    type Value = [S::Value; N];
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        std::array::from_fn(|_| self.element.generate(rng))
    }
}
