//! Strategy trait, combinators, and primitive strategies.

use crate::TestRng;
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// How many times a filter retries before giving up.
const FILTER_RETRIES: usize = 256;

/// A generator of test values.
pub trait Strategy: 'static {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> O + 'static,
    {
        Map { inner: self, f }
    }

    /// Discard values failing `pred` (regenerating up to a retry cap).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool + 'static,
    {
        Filter {
            inner: self,
            reason,
            pred,
        }
    }

    /// Combined filter and map.
    fn prop_filter_map<O, F>(self, reason: &'static str, f: F) -> FilterMap<Self, F>
    where
        Self: Sized,
        O: fmt::Debug,
        F: Fn(Self::Value) -> Option<O> + 'static,
    {
        FilterMap {
            inner: self,
            reason,
            f,
        }
    }

    /// Generate an intermediate value, then generate from a strategy
    /// derived from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2 + 'static,
    {
        FlatMap { inner: self, f }
    }

    /// Build recursive values: `f` receives the strategy for the inner
    /// level. `_desired_size`/`_expected_branch` are accepted for
    /// upstream signature compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + Clone,
        R: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        let mut current = self.clone().boxed();
        for _ in 0..depth {
            // Mix the leaf back in so depth varies per case.
            current = union(vec![self.clone().boxed(), f(current).boxed()]);
        }
        current
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// Object-safe strategy view backing [`BoxedStrategy`].
trait DynStrategy {
    type Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy> DynStrategy for S {
    type Value = S::Value;
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Rc<dyn DynStrategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: fmt::Debug + 'static> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

impl<T> fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Uniform choice among strategies (backs `prop_oneof!`).
pub fn union<T: fmt::Debug + 'static>(arms: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
    Union { arms }.boxed()
}

struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: fmt::Debug + 'static> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len());
        self.arms[i].generate(rng)
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug + 'static> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> O + 'static,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// `prop_filter` adapter.
#[derive(Clone)]
pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool + 'static,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..FILTER_RETRIES {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter exhausted retries: {}", self.reason);
    }
}

/// `prop_filter_map` adapter.
#[derive(Clone)]
pub struct FilterMap<S, F> {
    inner: S,
    reason: &'static str,
    f: F,
}

impl<S, O, F> Strategy for FilterMap<S, F>
where
    S: Strategy,
    O: fmt::Debug,
    F: Fn(S::Value) -> Option<O> + 'static,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        for _ in 0..FILTER_RETRIES {
            if let Some(v) = (self.f)(self.inner.generate(rng)) {
                return v;
            }
        }
        panic!("prop_filter_map exhausted retries: {}", self.reason);
    }
}

/// `prop_flat_map` adapter.
#[derive(Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2 + 'static,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Full-range values of a primitive type: `any::<T>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Strategy returned by [`any`].
#[derive(Debug)]
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary: fmt::Debug + Sized + 'static {
    /// Draw one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                ((rng.next_u64() as u128 % span) as i128 + self.start as i128) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                ((rng.next_u64() as u128 % span) as i128 + lo as i128) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($t:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($t: Strategy),+> Strategy for ($($t,)+) {
            type Value = ($($t::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($t,)+) = self;
                ($($t.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// A `&str` is a regex-subset strategy producing matching `String`s.
///
/// Supported syntax: literal characters, `[...]` classes with ranges,
/// and the repeats `{m}`, `{m,n}`, `?`, `*`, `+` (capped at 8 for the
/// unbounded forms).
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for (chars, min, max) in &pieces {
            let n = if min == max {
                *min
            } else {
                min + rng.below(max - min + 1)
            };
            for _ in 0..n {
                out.push(chars[rng.below(chars.len())]);
            }
        }
        out
    }
}

type Piece = (Vec<char>, usize, usize);

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut pieces = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set: Vec<char> = match chars[i] {
            '[' => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                    + i;
                let mut set = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        for c in lo..=hi {
                            set.push(c);
                        }
                        j += 3;
                    } else {
                        set.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                set
            }
            '\\' => {
                i += 2;
                vec![chars[i - 1]]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        // Optional repeat suffix.
        let (min, max) = match chars.get(i) {
            Some('{') => {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.trim().parse().expect("bad repeat min"),
                        n.trim().parse().expect("bad repeat max"),
                    ),
                    None => {
                        let m: usize = body.trim().parse().expect("bad repeat count");
                        (m, m)
                    }
                }
            }
            Some('?') => {
                i += 1;
                (0, 1)
            }
            Some('*') => {
                i += 1;
                (0, 8)
            }
            Some('+') => {
                i += 1;
                (1, 8)
            }
            _ => (1, 1),
        };
        assert!(
            !set.is_empty(),
            "empty character class in pattern {pattern:?}"
        );
        pieces.push((set, min, max));
    }
    pieces
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = (1u64..5, 0u8..=3).generate(&mut rng);
            assert!((1..5).contains(&v.0) && v.1 <= 3);
        }
    }

    #[test]
    fn regex_subset_strings() {
        let mut rng = TestRng::new(2);
        for _ in 0..500 {
            let s = "[a-z_][a-z0-9_]{0,12}".generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 13, "{s:?}");
            let mut cs = s.chars();
            let first = cs.next().unwrap();
            assert!(first.is_ascii_lowercase() || first == '_');
            assert!(cs.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf,
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf => 0,
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = crate::prop_oneof![Just(Tree::Leaf)].prop_recursive(3, 8, 2, |inner| {
            (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
        });
        let mut rng = TestRng::new(3);
        let mut saw_node = false;
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 3);
            saw_node |= matches!(t, Tree::Node(..));
        }
        assert!(saw_node);
    }

    #[test]
    fn filters_respect_predicate() {
        let mut rng = TestRng::new(4);
        let s = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..200 {
            assert_eq!(s.generate(&mut rng) % 2, 0);
        }
    }
}
