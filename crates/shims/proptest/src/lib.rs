//! Offline `proptest` subset.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of proptest its property tests use: [`Strategy`] with the
//! `prop_map`/`prop_filter`/`prop_filter_map`/`prop_flat_map`/
//! `prop_recursive` combinators, [`strategy::Just`], `any::<T>()`,
//! integer-range and string-regex strategies, `collection::{vec,
//! btree_map}`, `array::uniform4`, `sample::select`, and the
//! [`proptest!`]/`prop_assert*` macros.
//!
//! Differences from upstream, deliberately accepted:
//!
//! * **no shrinking** — a failing case reports the original input;
//! * **derandomized** — the RNG seed is derived from the test name (and
//!   `PROPTEST_SEED` if set), so runs are reproducible by default;
//! * string strategies accept only the tiny regex subset the tests use
//!   (char classes, literals, `{m,n}`/`?`/`*`/`+` repeats).

#![forbid(unsafe_code)]

pub mod array;
pub mod collection;
pub mod sample;
pub mod strategy;

pub use strategy::{BoxedStrategy, Just, Strategy};

/// Everything the tests import via `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, ProptestConfig,
    };
}

/// Test-runner configuration (subset: case count only).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A failed property-test case.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Failure with a message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic RNG for case generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded constructor.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// Run one property: generate `cfg.cases` inputs and invoke the body.
///
/// Called by the [`proptest!`] macro expansion; panics on the first
/// failing case with the case's `Debug` rendering.
pub fn run_property<S: Strategy>(
    cfg: &ProptestConfig,
    strat: S,
    name: &str,
    body: impl Fn(S::Value) -> Result<(), TestCaseError>,
) {
    let mut seed: u64 = 0xC0FF_EE00_5EED;
    if let Ok(s) = std::env::var("PROPTEST_SEED") {
        if let Ok(v) = s.parse::<u64>() {
            seed = v;
        }
    }
    for b in name.bytes() {
        seed = seed.wrapping_mul(0x100_0000_01B3) ^ b as u64;
    }
    let mut rng = TestRng::new(seed);
    for case in 0..cfg.cases {
        let value = strat.generate(&mut rng);
        let repr = format!("{value:?}");
        if let Err(e) = body(value) {
            panic!(
                "proptest property {name:?} failed at case {case}/{}: {e}\n    input: {repr}",
                cfg.cases
            );
        }
    }
}

/// Define property tests (subset of proptest's macro of the same name).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($cfg) $($rest)*);
    };
    (@with_config ($cfg:expr)
        $( $(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let strategy = ($($strat,)+);
                $crate::run_property(&config, strategy, stringify!($name), |($($arg,)+)| {
                    $body
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Assert inside a property body; failure reports the generated input.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} ({:?} vs {:?})",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l != r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    }};
}

/// Choose uniformly among strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::union(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}
