//! Collection strategies: `vec` and `btree_map`.

use crate::strategy::Strategy;
use crate::TestRng;
use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Size bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_incl: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_incl: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max_incl: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *r.start(),
            max_incl: *r.end(),
        }
    }
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        self.min + rng.below(self.max_incl - self.min + 1)
    }
}

/// A strategy for `Vec<S::Value>` with length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// A strategy for `BTreeMap`s with up to `size` entries (duplicate keys
/// collapse, as in upstream proptest).
pub fn btree_map<K, V>(keys: K, values: V, size: impl Into<SizeRange>) -> BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord,
    V: Strategy,
{
    BTreeMapStrategy {
        keys,
        values,
        size: size.into(),
    }
}

/// Strategy returned by [`btree_map`].
#[derive(Clone)]
pub struct BTreeMapStrategy<K, V> {
    keys: K,
    values: V,
    size: SizeRange,
}

impl<K, V> Strategy for BTreeMapStrategy<K, V>
where
    K: Strategy,
    K::Value: Ord + fmt::Debug,
    V: Strategy,
{
    type Value = BTreeMap<K::Value, V::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.sample(rng);
        let mut map = BTreeMap::new();
        for _ in 0..n {
            map.insert(self.keys.generate(rng), self.values.generate(rng));
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::any;

    #[test]
    fn vec_lengths_in_bounds() {
        let s = vec(any::<u8>(), 2..5);
        let mut rng = TestRng::new(9);
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn btree_map_respects_cap() {
        let s = btree_map("[a-c]", any::<u8>(), 0..4);
        let mut rng = TestRng::new(10);
        for _ in 0..100 {
            assert!(s.generate(&mut rng).len() <= 3);
        }
    }
}
