//! Sampling from explicit value lists.

use crate::strategy::Strategy;
use crate::TestRng;
use std::fmt;

/// Uniform choice from a slice of values.
pub fn select<T: Clone + fmt::Debug + 'static>(values: &[T]) -> Select<T> {
    assert!(!values.is_empty(), "select() needs at least one value");
    Select {
        values: values.to_vec(),
    }
}

/// Strategy returned by [`select`].
#[derive(Debug, Clone)]
pub struct Select<T> {
    values: Vec<T>,
}

impl<T: Clone + fmt::Debug + 'static> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.values[rng.below(self.values.len())].clone()
    }
}
