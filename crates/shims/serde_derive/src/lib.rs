//! `#[derive(Serialize)]` for the offline serde shim.
//!
//! No `syn`/`quote` (no registry access), so the input item is parsed
//! directly from its token trees. Supported shapes — the only ones this
//! workspace derives on — are non-generic structs (named, tuple, unit)
//! and enums whose variants are unit, tuple, or struct-like. The
//! generated code writes serde-compatible externally-tagged JSON via
//! `::serde::Serialize`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derive `serde::Serialize` (JSON writer) for a struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.shape {
        Shape::NamedStruct(fields) => named_struct_body(fields),
        Shape::TupleStruct(arity) => tuple_struct_body(*arity),
        Shape::UnitStruct => "out.push_str(\"null\");".to_string(),
        Shape::Enum(variants) => enum_body(variants),
    };
    let code = format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn write_json(&self, out: &mut ::std::string::String) {{\n{body}\n}}\n}}",
        name = item.name,
    );
    code.parse().expect("serde_derive generated invalid Rust")
}

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);
    let kind = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, found {other}"),
    };
    i += 1;
    let name = match &tokens[i] {
        TokenTree::Ident(id) => id.to_string(),
        other => panic!("serde_derive: expected type name, found {other}"),
    };
    i += 1;
    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim does not support generic types (deriving on {name})");
    }
    let shape = match kind.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => panic!("serde_derive: unexpected struct body {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive: unexpected enum body {other:?}"),
        },
        other => panic!("serde_derive: cannot derive Serialize for {other} items"),
    };
    Item { name, shape }
}

/// Advance past `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' + bracketed group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Split a brace/paren body at top-level commas (angle-bracket aware).
fn split_top_level(stream: TokenStream) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = vec![Vec::new()];
    let mut angle_depth = 0i32;
    for tt in stream {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => {
                    parts.push(Vec::new());
                    continue;
                }
                _ => {}
            }
        }
        parts.last_mut().expect("parts is never empty").push(tt);
    }
    parts.retain(|p| !p.is_empty());
    parts
}

fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    split_top_level(stream)
        .into_iter()
        .map(|field| {
            let mut i = 0;
            skip_attrs_and_vis(&field, &mut i);
            match &field[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde_derive: expected field name, found {other}"),
            }
        })
        .collect()
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    split_top_level(stream).len()
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    split_top_level(stream)
        .into_iter()
        .map(|var| {
            let mut i = 0;
            skip_attrs_and_vis(&var, &mut i);
            let name = match &var[i] {
                TokenTree::Ident(id) => id.to_string(),
                other => panic!("serde_derive: expected variant name, found {other}"),
            };
            let kind = match var.get(i + 1) {
                None => VariantKind::Unit,
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    VariantKind::Named(parse_named_fields(g.stream()))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    VariantKind::Tuple(count_tuple_fields(g.stream()))
                }
                other => panic!("serde_derive: unexpected tokens after variant {name}: {other:?}"),
            };
            Variant { name, kind }
        })
        .collect()
}

/// `{"a":<a>,"b":<b>}` writer over `self.<field>`.
fn named_struct_body(fields: &[String]) -> String {
    let mut s = String::from("out.push('{');\n");
    for (i, f) in fields.iter().enumerate() {
        if i > 0 {
            s.push_str("out.push(',');\n");
        }
        s.push_str(&format!(
            "out.push_str(\"\\\"{f}\\\":\");\n::serde::Serialize::write_json(&self.{f}, out);\n"
        ));
    }
    s.push_str("out.push('}');");
    s
}

/// Newtype structs render as the inner value, wider tuples as arrays.
fn tuple_struct_body(arity: usize) -> String {
    if arity == 1 {
        return "::serde::Serialize::write_json(&self.0, out);".to_string();
    }
    let mut s = String::from("out.push('[');\n");
    for i in 0..arity {
        if i > 0 {
            s.push_str("out.push(',');\n");
        }
        s.push_str(&format!(
            "::serde::Serialize::write_json(&self.{i}, out);\n"
        ));
    }
    s.push_str("out.push(']');");
    s
}

fn enum_body(variants: &[Variant]) -> String {
    let mut s = String::from("match self {\n");
    for v in variants {
        let name = &v.name;
        match &v.kind {
            VariantKind::Unit => {
                s.push_str(&format!(
                    "Self::{name} => {{ out.push_str(\"\\\"{name}\\\"\"); }}\n"
                ));
            }
            VariantKind::Tuple(arity) => {
                let binders: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                s.push_str(&format!("Self::{name}({}) => {{\n", binders.join(", ")));
                s.push_str(&format!("out.push_str(\"{{\\\"{name}\\\":\");\n"));
                if *arity == 1 {
                    s.push_str("::serde::Serialize::write_json(__f0, out);\n");
                } else {
                    s.push_str("out.push('[');\n");
                    for (i, b) in binders.iter().enumerate() {
                        if i > 0 {
                            s.push_str("out.push(',');\n");
                        }
                        s.push_str(&format!("::serde::Serialize::write_json({b}, out);\n"));
                    }
                    s.push_str("out.push(']');\n");
                }
                s.push_str("out.push('}');\n}\n");
            }
            VariantKind::Named(fields) => {
                s.push_str(&format!("Self::{name} {{ {} }} => {{\n", fields.join(", ")));
                s.push_str(&format!("out.push_str(\"{{\\\"{name}\\\":{{\");\n"));
                for (i, f) in fields.iter().enumerate() {
                    if i > 0 {
                        s.push_str("out.push(',');\n");
                    }
                    s.push_str(&format!(
                        "out.push_str(\"\\\"{f}\\\":\");\n::serde::Serialize::write_json({f}, out);\n"
                    ));
                }
                s.push_str("out.push_str(\"}}\");\n}\n");
            }
        }
    }
    s.push('}');
    s
}
