//! Offline `criterion` subset.
//!
//! The build environment has no registry access, so the workspace
//! vendors the slice of criterion its benches use: [`Criterion`],
//! `bench_function`, `benchmark_group` + `sample_size`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Measurement is a
//! simple best-of-batches wall-clock timer printed as `ns/iter`; there
//! is no statistical analysis. `--test` (passed by `cargo bench --
//! --test` and by `cargo test` over harness-less bench targets) runs
//! each bench exactly once for correctness checking.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Wall-clock budget per bench in measurement mode.
const TIME_BUDGET: Duration = Duration::from_millis(200);

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test")
            || std::env::var_os("CRITERION_TEST_MODE").is_some();
        Criterion {
            test_mode,
            sample_size: 30,
        }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            best_ns: f64::INFINITY,
            iters: 0,
        };
        f(&mut b);
        if self.test_mode {
            println!("test bench {name} ... ok");
        } else {
            println!(
                "bench {name:<40} {:>12.1} ns/iter ({} iters)",
                b.best_ns, b.iters
            );
        }
        self
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
}

impl BenchmarkGroup<'_> {
    /// Set the target sample size for subsequent benches in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Run one named benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.prefix, name);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Finish the group (restores the default sample size).
    pub fn finish(self) {
        self.criterion.sample_size = 30;
    }
}

/// Per-bench measurement interface.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    best_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Measure the closure, keeping the best observed per-iteration time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            self.iters = 1;
            self.best_ns = 0.0;
            return;
        }
        let deadline = Instant::now() + TIME_BUDGET;
        let mut total_iters = 0u64;
        let mut best = f64::INFINITY;
        while total_iters < self.sample_size as u64 && Instant::now() < deadline {
            let start = Instant::now();
            std::hint::black_box(f());
            let ns = start.elapsed().as_nanos() as f64;
            best = best.min(ns.max(1.0));
            total_iters += 1;
        }
        self.best_ns = best;
        self.iters = total_iters.max(1);
    }
}

/// Re-export matching criterion's helper.
pub use std::hint::black_box;

/// Bundle benchmark functions into one group runner.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
