//! Offline drop-in subset of the `rand` 0.8 API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the thin slice of `rand` it actually uses: `StdRng`, `SeedableRng::
//! seed_from_u64`, `Rng::{gen_range, gen_bool, gen}`. The generator is
//! SplitMix64 — statistically fine for workload synthesis, **not** the
//! upstream ChaCha stream, so sequences differ from crates.io `rand`.
//! Every consumer in this workspace seeds explicitly and asserts only
//! distribution-level properties, never exact draws.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level entropy source: 64-bit outputs.
pub trait RngCore {
    /// Next raw 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit output.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Seedable construction.
pub trait SeedableRng: Sized {
    /// Derive a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from a range.
pub trait SampleUniform: Copy {
    /// Sample uniformly from `[low, high)` (`high` exclusive).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_excl: Self) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high_excl: Self) -> Self {
                assert!(low < high_excl, "gen_range: empty range");
                let span = (high_excl as i128 - low as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128 + low as i128;
                v as $t
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges convertible into a uniform sampler (subset of `rand`'s
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Sample one value.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl<T: SampleUniform + WrappingStep> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (low, high) = self.into_inner();
        // Avoid overflow at the numeric max by sampling the exclusive
        // range after a wrapping bump, which is exact unless high is MAX.
        if high.is_max() {
            // Degenerate but correct: fold the MAX endpoint in by hand.
            let v = T::sample_range(rng, low, high);
            return v;
        }
        T::sample_range(rng, low, high.wrapping_next())
    }
}

/// Helper for inclusive-range sampling.
pub trait WrappingStep: Copy {
    /// `self + 1` with wrap.
    fn wrapping_next(self) -> Self;
    /// Whether `self` is the type's maximum.
    fn is_max(self) -> bool;
}

macro_rules! impl_wrapping_step {
    ($($t:ty),*) => {$(
        impl WrappingStep for $t {
            fn wrapping_next(self) -> Self { self.wrapping_add(1) }
            fn is_max(self) -> bool { self == <$t>::MAX }
        }
    )*};
}

impl_wrapping_step!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// High-level sampling interface.
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        // 53-bit mantissa draw in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A full-width random value.
    fn gen<T: FromRng>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }
}

impl<R: RngCore> Rng for R {}

/// Types constructible from raw generator output (subset of `rand`'s
/// `Standard` distribution).
pub trait FromRng {
    /// Draw one value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_from_rng {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_from_rng!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: SplitMix64.
    ///
    /// Deterministic for a given seed across platforms and runs, which is
    /// what the reproducibility requirements (CR_SEED) rely on.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng {
                state: seed ^ 0x6A09_E667_F3BC_C909,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.gen_range(0u64..1_000_000), b.gen_range(0u64..1_000_000));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10u32..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(5i32..=7);
            assert!((5..=7).contains(&w));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((20_000..30_000).contains(&hits), "got {hits}");
    }
}
