//! End-to-end tests for the Windows personality: SEH dispatch with
//! emulator-executed filters, VEH handlers, API dispatch and the
//! fault log the rate-based defense consumes.

use cr_image::{FilterRef, Machine, PeBuilder, PeImage, ScopeEntry};
use cr_isa::{Asm, Cond, Inst, Mem as M, Reg, Rm, Width};
use cr_os::windows::api::ApiTable;
use cr_os::windows::{CallOutcome, WinProc, STATUS_ACCESS_VIOLATION};
use cr_vm::NullHook;
use Reg::*;

const BASE: u64 = 0x1_8000_0000;

/// Build a DLL exposing:
/// * `ProbeGuarded(ptr)` — `__try { rax = *ptr } __except(catch-all) { rax = -1 }`
/// * `ProbeFiltered(ptr)` — same but with a filter accepting only AV
/// * `ProbeUnguarded(ptr)` — raw dereference
/// * `FilterAvOnly` — the filter function (returns 1 iff code == AV)
fn probe_dll() -> PeImage {
    let mut a = Asm::new(BASE + 0x1000);
    a.global("ProbeGuarded");
    a.global("try_begin_1");
    a.load(Rax, M::base(Rcx)); // guarded dereference
    a.global("try_end_1");
    a.ret();
    a.global("except_1");
    a.mov_ri(Rax, u64::MAX);
    a.ret();
    a.align(16);

    a.global("ProbeFiltered");
    a.global("try_begin_2");
    a.load(Rax, M::base(Rcx));
    a.global("try_end_2");
    a.ret();
    a.global("except_2");
    a.mov_ri(Rax, u64::MAX - 1);
    a.ret();
    a.align(16);

    a.global("ProbeUnguarded");
    a.load(Rax, M::base(Rcx));
    a.ret();
    a.align(16);

    // Filter: accept only access violations.
    a.global("FilterAvOnly");
    a.load(Rax, M::base(Rcx)); // rax = &EXCEPTION_RECORD
    a.inst(Inst::MovRRm {
        dst: Rax,
        src: Rm::Mem(M::base(Rax)),
        width: Width::B4,
    });
    a.inst(Inst::AluRmI {
        op: cr_isa::AluOp::Cmp,
        dst: Rm::Reg(Rax),
        imm: STATUS_ACCESS_VIOLATION as i32,
        width: Width::B4,
    });
    let no = a.fresh();
    a.jcc(Cond::Ne, no);
    a.mov_ri(Rax, 1);
    a.ret();
    a.bind(no);
    a.zero(Rax);
    a.ret();
    a.global("code_end");

    let asm = a.assemble().unwrap();
    let rva = |name: &str| (asm.sym(name) - BASE) as u32;
    let mut b = PeBuilder::new("probe.dll", Machine::X64, BASE);
    b.entry(rva("ProbeGuarded"));
    for name in [
        "ProbeGuarded",
        "ProbeFiltered",
        "ProbeUnguarded",
        "FilterAvOnly",
    ] {
        b.export(name, rva(name));
    }
    b.function_with_seh(
        rva("ProbeGuarded"),
        rva("ProbeFiltered"),
        rva("FilterAvOnly"), // handler routine rva (unused placeholder)
        vec![ScopeEntry {
            begin_rva: rva("try_begin_1"),
            end_rva: rva("try_end_1"),
            filter: FilterRef::CatchAll,
            target_rva: rva("except_1"),
        }],
    );
    b.function_with_seh(
        rva("ProbeFiltered"),
        rva("ProbeUnguarded"),
        rva("FilterAvOnly"),
        vec![ScopeEntry {
            begin_rva: rva("try_begin_2"),
            end_rva: rva("try_end_2"),
            filter: FilterRef::Function(rva("FilterAvOnly")),
            target_rva: rva("except_2"),
        }],
    );
    b.function(rva("ProbeUnguarded"), rva("FilterAvOnly"));
    b.function(rva("FilterAvOnly"), rva("code_end"));
    let code_size = (asm.sym("code_end") - (BASE + 0x1000)) as usize;
    let mut text = asm.code;
    text.truncate(code_size.max(text.len().min(code_size + 16)));
    b.text(0x1000, text);
    PeImage::parse(&b.build()).unwrap()
}

fn setup() -> (WinProc, PeImage) {
    let img = probe_dll();
    let mut p = WinProc::new(ApiTable::curated_only());
    p.load_module(&img);
    (p, img)
}

#[test]
fn guarded_probe_survives_unmapped_read() {
    let (mut p, img) = setup();
    let f = img.image_base + img.exports["ProbeGuarded"] as u64;
    // Probe an unmapped address: caught by the catch-all scope.
    match p.call(f, &[0xdead_0000], 1_000_000, &mut NullHook) {
        CallOutcome::Returned(v) => assert_eq!(v, u64::MAX, "__except block ran"),
        other => panic!("{other:?}"),
    }
    assert!(p.alive());
    assert_eq!(p.fault_log.len(), 1);
    assert!(p.fault_log[0].handled);
    assert_eq!(p.fault_log[0].addr, Some(0xdead_0000));
}

#[test]
fn guarded_probe_reads_mapped_memory() {
    let (mut p, img) = setup();
    let f = img.image_base + img.exports["ProbeGuarded"] as u64;
    p.mem.map(0x5000, 0x1000, cr_vm::Prot::RW);
    p.mem.write_u64(0x5000, 0x1234_5678).unwrap();
    match p.call(f, &[0x5000], 1_000_000, &mut NullHook) {
        CallOutcome::Returned(v) => assert_eq!(v, 0x1234_5678),
        other => panic!("{other:?}"),
    }
    assert!(p.fault_log.is_empty(), "no exception for a valid probe");
}

#[test]
fn filtered_probe_runs_filter_in_emulator() {
    let (mut p, img) = setup();
    let f = img.image_base + img.exports["ProbeFiltered"] as u64;
    match p.call(f, &[0xdead_0000], 1_000_000, &mut NullHook) {
        CallOutcome::Returned(v) => assert_eq!(v, u64::MAX - 1),
        other => panic!("{other:?}"),
    }
    assert!(p.alive());
}

#[test]
fn unguarded_probe_crashes_the_process() {
    let (mut p, img) = setup();
    let f = img.image_base + img.exports["ProbeUnguarded"] as u64;
    match p.call(f, &[0xdead_0000], 1_000_000, &mut NullHook) {
        CallOutcome::Crashed(c) => {
            assert_eq!(c.fault.unwrap().addr, 0xdead_0000);
        }
        other => panic!("{other:?}"),
    }
    assert!(!p.alive());
    assert_eq!(p.fault_log.len(), 1);
    assert!(!p.fault_log[0].handled);
}

#[test]
fn veh_handler_swallows_fault() {
    // A VEH handler returning EXCEPTION_CONTINUE_EXECUTION (-1) makes an
    // otherwise-fatal dereference survivable — the Firefox-style oracle.
    let (mut p, img) = setup();
    // Build the VEH handler in fresh memory: return -1 for AV, 0 else.
    let mut a = Asm::new(0x2_0000_0000);
    a.global("veh");
    a.load(Rax, M::base(Rcx));
    a.inst(Inst::MovRRm {
        dst: Rax,
        src: Rm::Mem(M::base(Rax)),
        width: Width::B4,
    });
    a.inst(Inst::AluRmI {
        op: cr_isa::AluOp::Cmp,
        dst: Rm::Reg(Rax),
        imm: STATUS_ACCESS_VIOLATION as i32,
        width: Width::B4,
    });
    let no = a.fresh();
    a.jcc(Cond::Ne, no);
    a.mov_ri(Rax, u64::MAX); // -1 = EXCEPTION_CONTINUE_EXECUTION
    a.ret();
    a.bind(no);
    a.zero(Rax);
    a.ret();
    let code = a.assemble().unwrap();
    p.mem.map(0x2_0000_0000, 0x1000, cr_vm::Prot::RX);
    p.mem.poke(0x2_0000_0000, &code.code).unwrap();
    p.add_veh(0x2_0000_0000);

    let f = img.image_base + img.exports["ProbeUnguarded"] as u64;
    match p.call(f, &[0xdead_0000], 1_000_000, &mut NullHook) {
        // The faulting load is skipped; rax holds whatever was there (0).
        CallOutcome::Returned(_) => {}
        other => panic!("{other:?}"),
    }
    assert!(p.alive(), "VEH made the probe crash-resistant");
    assert!(p.fault_log[0].handled);
}

#[test]
fn api_dispatch_and_virtual_query_oracle() {
    // Guest code calling VirtualQuery through the trampoline.
    let mut a = Asm::new(0x3_0000_0000);
    a.global("QueryState");
    // rcx = probe addr (arg); rdx = buf (static); r8 = 48
    let api = ApiTable::curated_only();
    a.mov_ri(Rdx, 0x3_0000_2000);
    a.mov_ri(R8, 48);
    a.mov_ri(Rax, api.address_of("VirtualQuery"));
    a.call_reg(Rax);
    // return the State dword
    a.mov_ri(Rdx, 0x3_0000_2000 + 32);
    a.inst(Inst::MovRRm {
        dst: Rax,
        src: Rm::Mem(M::base(Rdx)),
        width: Width::B4,
    });
    a.ret();
    let code = a.assemble().unwrap();

    let mut p = WinProc::new(api);
    p.mem.map(0x3_0000_0000, 0x1000, cr_vm::Prot::RX);
    p.mem.poke(0x3_0000_0000, &code.code).unwrap();
    p.mem.map(0x3_0000_2000, 0x1000, cr_vm::Prot::RW);

    // Mapped probe → MEM_COMMIT (0x1000).
    match p.call(0x3_0000_0000, &[0x3_0000_2000], 1_000_000, &mut NullHook) {
        CallOutcome::Returned(v) => assert_eq!(v, 0x1000),
        other => panic!("{other:?}"),
    }
    // Unmapped probe → MEM_FREE (0x10000) — still alive. A memory oracle.
    match p.call(0x3_0000_0000, &[0xdead_0000], 1_000_000, &mut NullHook) {
        CallOutcome::Returned(v) => assert_eq!(v, 0x10000),
        other => panic!("{other:?}"),
    }
    assert!(p.alive());
    assert!(p.fault_log.is_empty());
}

#[test]
fn background_thread_runs_between_calls() {
    // A background thread increments a counter in memory each loop.
    let mut a = Asm::new(0x4_0000_0000);
    a.global("worker");
    let top = a.here();
    a.mov_ri(Rbx, 0x4_0000_2000);
    a.load(Rax, M::base(Rbx));
    a.add_ri(Rax, 1);
    a.store(M::base(Rbx), Rax);
    a.hlt(); // yield
    a.jmp(top);
    let code = a.assemble().unwrap();
    let mut p = WinProc::new(ApiTable::curated_only());
    p.mem.map(0x4_0000_0000, 0x1000, cr_vm::Prot::RX);
    p.mem.poke(0x4_0000_0000, &code.code).unwrap();
    p.mem.map(0x4_0000_2000, 0x1000, cr_vm::Prot::RW);
    p.spawn_thread(0x4_0000_0000, 0);
    p.run(10_000, &mut NullHook);
    let count = p.mem.read_u64(0x4_0000_2000).unwrap();
    assert!(count > 10, "worker must have iterated, got {count}");
}

#[test]
fn sleep_api_advances_time() {
    let api = ApiTable::curated_only();
    let mut a = Asm::new(0x5_0000_0000);
    a.global("napper");
    a.mov_ri(Rcx, 3); // 3 ms
    a.mov_ri(Rax, api.address_of("Sleep"));
    a.call_reg(Rax);
    a.ret();
    let code = a.assemble().unwrap();
    let mut p = WinProc::new(api);
    p.mem.map(0x5_0000_0000, 0x1000, cr_vm::Prot::RX);
    p.mem.poke(0x5_0000_0000, &code.code).unwrap();
    let before = p.vtime;
    match p.call(0x5_0000_0000, &[], 1_000_000, &mut NullHook) {
        CallOutcome::Returned(_) => {}
        other => panic!("{other:?}"),
    }
    assert!(
        p.vtime - before >= 3000,
        "Sleep(3) must advance ≥3000 steps"
    );
}

#[test]
fn strict_policy_blocks_seh_for_unmapped_but_not_guard_pages() {
    // §VII-C: with the mapped-only policy, a guarded probe of unmapped
    // memory is fatal even though a catch-all scope covers it — while a
    // probe of a mapped PROT_NONE page is still caught.
    let (mut p, img) = setup();
    p.strict_unmapped_policy = true;
    let f = img.image_base + img.exports["ProbeGuarded"] as u64;
    // Mapped guard page: still handled.
    p.mem.map(0x7000, 0x1000, cr_vm::Prot::NONE);
    match p.call(f, &[0x7000], 1_000_000, &mut NullHook) {
        CallOutcome::Returned(v) => assert_eq!(v, u64::MAX),
        other => panic!("guard-page probe must stay handled: {other:?}"),
    }
    assert!(p.alive());
    // Unmapped: fatal despite the catch-all.
    match p.call(f, &[0xdead_0000], 1_000_000, &mut NullHook) {
        CallOutcome::Crashed(c) => assert!(!c.fault.unwrap().mapped),
        other => panic!("unmapped probe must be fatal under the policy: {other:?}"),
    }
    assert_eq!(p.fault_log.len(), 2);
    assert!(p.fault_log[0].handled && p.fault_log[0].mapped);
    assert!(!p.fault_log[1].handled && !p.fault_log[1].mapped);
}

#[test]
fn fault_log_orders_by_virtual_time() {
    let (mut p, img) = setup();
    let f = img.image_base + img.exports["ProbeGuarded"] as u64;
    for i in 0..5u64 {
        p.call(f, &[0xdead_0000 + i * 0x1000], 1_000_000, &mut NullHook);
    }
    assert_eq!(p.fault_log.len(), 5);
    for w in p.fault_log.windows(2) {
        assert!(w[0].vtime <= w[1].vtime);
    }
}
