//! End-to-end tests for the Linux personality: an assembled echo server
//! run under the emulator, driven over the virtual network — including
//! the crash-resistance property itself (corrupted pointer argument →
//! `-EFAULT`, not a crash).

use cr_image::{ElfImage, ElfSegment, SegPerm};
use cr_isa::{Asm, Cond, Inst, Mem as M, Reg, Rm, Width};
use cr_os::linux::{syscall::nr, LinuxProc, RunExit};
use cr_os::OsHook;
use cr_vm::{Cpu, Hook, Memory, NullHook};
use Reg::*;

/// Build a single-connection echo server:
/// socket → bind(8080) → listen → accept → loop { read; echo } → exit.
fn echo_server() -> ElfImage {
    let mut a = Asm::new(0x40_0000);
    a.global("entry");
    // r12 = socket()
    a.mov_ri(Rax, nr::SOCKET);
    a.syscall();
    a.mov_rr(R12, Rax);
    // carve stack space: sockaddr at rsp, buffer at rsp+16
    a.sub_ri(Rsp, 128);
    // sockaddr_in: family=AF_INET(2), port 8080 big-endian (0x1F90)
    a.inst(Inst::MovRmI {
        dst: Rm::Mem(M::base(Rsp)),
        imm: 0x901F_0002u32 as i32,
        width: Width::B4,
    });
    a.mov_ri(Rax, nr::BIND);
    a.mov_rr(Rdi, R12);
    a.mov_rr(Rsi, Rsp);
    a.mov_ri(Rdx, 16);
    a.syscall();
    a.mov_ri(Rax, nr::LISTEN);
    a.mov_rr(Rdi, R12);
    a.mov_ri(Rsi, 16);
    a.syscall();
    // r13 = accept(r12, NULL, NULL)
    a.mov_ri(Rax, nr::ACCEPT);
    a.mov_rr(Rdi, R12);
    a.zero(Rsi);
    a.zero(Rdx);
    a.syscall();
    a.mov_rr(R13, Rax);
    // loop: read(r13, rsp+16, 64)
    let top = a.here();
    a.mov_ri(Rax, nr::READ);
    a.mov_rr(Rdi, R13);
    a.lea(Rsi, M::base_disp(Rsp, 16));
    a.mov_ri(Rdx, 64);
    a.syscall();
    let done = a.fresh();
    a.cmp_ri(Rax, 0);
    a.jcc(Cond::Le, done); // error or EOF → exit gracefully
                           // write(r13, rsp+16, n)
    a.mov_rr(Rdx, Rax);
    a.mov_ri(Rax, nr::WRITE);
    a.mov_rr(Rdi, R13);
    a.lea(Rsi, M::base_disp(Rsp, 16));
    a.syscall();
    a.jmp(top);
    a.bind(done);
    a.mov_ri(Rax, nr::EXIT_GROUP);
    a.zero(Rdi);
    a.syscall();
    let asm = a.assemble().unwrap();
    ElfImage {
        entry: asm.sym("entry"),
        segments: vec![ElfSegment {
            vaddr: asm.base,
            memsz: asm.code.len() as u64,
            data: asm.code,
            perm: SegPerm::RX,
        }],
        symbols: asm.symbols,
    }
}

#[test]
fn echo_server_roundtrip() {
    let img = echo_server();
    let mut p = LinuxProc::load(&img);
    // Boot until blocked in accept.
    assert_eq!(p.run(1_000_000, &mut NullHook), RunExit::Idle);
    assert!(p.net.is_listening(8080));
    let conn = p.net.client_connect(8080).unwrap();
    assert_eq!(p.run(1_000_000, &mut NullHook), RunExit::Idle); // blocked in read
    p.net.client_send(conn, b"hello oracle");
    assert_eq!(p.run(1_000_000, &mut NullHook), RunExit::Idle);
    assert_eq!(p.net.client_recv(conn, 64), b"hello oracle".to_vec());
    // EOF → graceful exit.
    p.net.client_close(conn);
    assert_eq!(p.run(1_000_000, &mut NullHook), RunExit::Exited(0));
}

/// The §III-A.1 monitor: corrupt the `read` buffer pointer at the
/// syscall boundary and observe whether the server survives.
struct PointerCorruptor {
    target_nr: u64,
    bad_addr: u64,
    fired: bool,
    efaults_seen: u32,
}

impl Hook for PointerCorruptor {}

impl OsHook for PointerCorruptor {
    fn on_syscall(&mut self, _tid: u32, cpu: &mut Cpu, _mem: &Memory) {
        if cpu.reg(Rax) == self.target_nr && !self.fired {
            cpu.set_reg(Rsi, self.bad_addr); // invalidate the buffer arg
            self.fired = true;
        }
    }

    fn on_syscall_ret(&mut self, _tid: u32, nr_: u64, ret: i64) {
        if nr_ == self.target_nr && ret == -14 {
            self.efaults_seen += 1;
        }
    }
}

#[test]
fn corrupted_read_pointer_yields_efault_not_crash() {
    let img = echo_server();
    let mut p = LinuxProc::load(&img);
    p.run(1_000_000, &mut NullHook);
    let conn = p.net.client_connect(8080).unwrap();
    p.run(1_000_000, &mut NullHook);
    p.net.client_send(conn, b"probe");
    let mut mon = PointerCorruptor {
        target_nr: nr::READ,
        bad_addr: 0xdead_0000,
        fired: false,
        efaults_seen: 0,
    };
    let exit = p.run(1_000_000, &mut mon);
    // The kernel reported EFAULT; the server's error path exited
    // gracefully. Crucially: NOT Crashed.
    assert_eq!(exit, RunExit::Exited(0));
    assert!(mon.fired);
    assert_eq!(mon.efaults_seen, 1);
    assert_eq!(p.efault_count, 1);
    assert!(p.crash().is_none());
}

#[test]
fn direct_bad_dereference_crashes() {
    // A server bug (or non-syscall probe) still crashes: dereference in
    // user code has no EFAULT safety net.
    let mut a = Asm::new(0x40_0000);
    a.global("entry");
    a.mov_ri(Rdi, 0xdead_beef_0000);
    a.load(Rax, M::base(Rdi));
    a.mov_ri(Rax, nr::EXIT_GROUP);
    a.syscall();
    let asm = a.assemble().unwrap();
    let img = ElfImage {
        entry: asm.sym("entry"),
        segments: vec![ElfSegment {
            vaddr: asm.base,
            memsz: asm.code.len() as u64,
            data: asm.code,
            perm: SegPerm::RX,
        }],
        symbols: asm.symbols,
    };
    let mut p = LinuxProc::load(&img);
    match p.run(10_000, &mut NullHook) {
        RunExit::Crashed(c) => {
            assert_eq!(c.signal, 11);
            assert_eq!(c.fault.unwrap().addr, 0xdead_beef_0000);
        }
        other => panic!("expected crash, got {other:?}"),
    }
}

#[test]
fn filesystem_syscalls() {
    // open/read a seeded file; mkdir/symlink/unlink/chmod error paths.
    let mut a = Asm::new(0x40_0000);
    a.global("entry");
    let path = a.fresh();
    a.sub_ri(Rsp, 256);
    // open("/motd", 0)
    a.lea_label(Rdi, path);
    a.zero(Rsi);
    a.mov_ri(Rax, nr::OPEN);
    a.syscall();
    a.mov_rr(R12, Rax);
    // read(fd, rsp, 32)
    a.mov_rr(Rdi, R12);
    a.mov_rr(Rsi, Rsp);
    a.mov_ri(Rdx, 32);
    a.mov_ri(Rax, nr::READ);
    a.syscall();
    // write(1, rsp, rax) — echo file to stdout
    a.mov_rr(Rdx, Rax);
    a.mov_ri(Rax, nr::WRITE);
    a.mov_ri(Rdi, 1);
    a.mov_rr(Rsi, Rsp);
    a.syscall();
    a.mov_ri(Rax, nr::EXIT_GROUP);
    a.zero(Rdi);
    a.syscall();
    a.bind(path);
    a.bytes(b"/motd\0");
    let asm = a.assemble().unwrap();
    let img = ElfImage {
        entry: asm.sym("entry"),
        segments: vec![ElfSegment {
            vaddr: asm.base,
            memsz: asm.code.len() as u64,
            data: asm.code,
            perm: SegPerm::RX,
        }],
        symbols: asm.symbols,
    };
    let mut p = LinuxProc::load(&img);
    p.vfs.write_file("/motd", b"welcome").unwrap();
    assert_eq!(p.run(100_000, &mut NullHook), RunExit::Exited(0));
    assert_eq!(p.console, b"welcome");
}

#[test]
fn epoll_timeout_advances_virtual_time() {
    // epoll_create1 → epoll_wait(timeout=5ms) with no fds → returns 0
    // after ~5000 virtual steps.
    let mut a = Asm::new(0x40_0000);
    a.global("entry");
    a.sub_ri(Rsp, 256);
    a.mov_ri(Rax, nr::EPOLL_CREATE1);
    a.zero(Rdi);
    a.syscall();
    a.mov_rr(R12, Rax);
    a.mov_ri(Rax, nr::EPOLL_WAIT);
    a.mov_rr(Rdi, R12);
    a.mov_rr(Rsi, Rsp);
    a.mov_ri(Rdx, 4);
    a.mov_ri(R10, 5); // 5 ms
    a.syscall();
    a.mov_rr(Rdi, Rax); // exit code = epoll_wait return (0 expected)
    a.mov_ri(Rax, nr::EXIT_GROUP);
    a.syscall();
    let asm = a.assemble().unwrap();
    let img = ElfImage {
        entry: asm.sym("entry"),
        segments: vec![ElfSegment {
            vaddr: asm.base,
            memsz: asm.code.len() as u64,
            data: asm.code,
            perm: SegPerm::RX,
        }],
        symbols: asm.symbols,
    };
    let mut p = LinuxProc::load(&img);
    assert_eq!(p.run(1_000_000, &mut NullHook), RunExit::Exited(0));
    assert!(
        p.vtime >= 5000,
        "virtual time must cover the timeout, got {}",
        p.vtime
    );
}

#[test]
fn epoll_wait_bad_events_pointer_is_efault() {
    // THE crash-resistant primitive of Cherokee/PostgreSQL: an invalid
    // events buffer pointer produces -EFAULT, observable, no crash.
    let mut a = Asm::new(0x40_0000);
    a.global("entry");
    a.mov_ri(Rax, nr::EPOLL_CREATE1);
    a.zero(Rdi);
    a.syscall();
    a.mov_rr(Rdi, Rax);
    a.mov_ri(Rax, nr::EPOLL_WAIT);
    a.mov_ri(Rsi, 0xdead_0000); // invalid events buffer
    a.mov_ri(Rdx, 4);
    a.mov_ri(R10, 1000);
    a.syscall();
    // exit code: 1 if rax == -EFAULT(-14) else 0
    a.cmp_ri(Rax, -14);
    a.mov_ri(Rdi, 0);
    let not = a.fresh();
    a.jcc(Cond::Ne, not);
    a.mov_ri(Rdi, 1);
    a.bind(not);
    a.mov_ri(Rax, nr::EXIT_GROUP);
    a.syscall();
    let asm = a.assemble().unwrap();
    let img = ElfImage {
        entry: asm.sym("entry"),
        segments: vec![ElfSegment {
            vaddr: asm.base,
            memsz: asm.code.len() as u64,
            data: asm.code,
            perm: SegPerm::RX,
        }],
        symbols: asm.symbols,
    };
    let mut p = LinuxProc::load(&img);
    assert_eq!(p.run(100_000, &mut NullHook), RunExit::Exited(1));
    assert!(p.alive() || p.crash().is_none());
}

#[test]
fn clone_spawns_worker_thread() {
    // Parent clones; child writes to console and exits; parent exits.
    let mut a = Asm::new(0x40_0000);
    a.global("entry");
    // child stack via mmap
    a.mov_ri(Rax, nr::MMAP);
    a.zero(Rdi);
    a.mov_ri(Rsi, 0x4000);
    a.syscall();
    a.add_ri(Rax, 0x3000);
    a.mov_rr(Rsi, Rax); // child stack top
    a.mov_ri(Rax, nr::CLONE);
    a.zero(Rdi);
    a.syscall();
    a.cmp_ri(Rax, 0);
    let child = a.fresh();
    a.jcc(Cond::E, child);
    // parent: exit(7) — thread exit; process ends when all threads exit.
    a.mov_ri(Rax, nr::EXIT);
    a.mov_ri(Rdi, 7);
    a.syscall();
    a.bind(child);
    let msg = a.fresh();
    a.mov_ri(Rax, nr::WRITE);
    a.mov_ri(Rdi, 1);
    a.lea_label(Rsi, msg);
    a.mov_ri(Rdx, 5);
    a.syscall();
    a.mov_ri(Rax, nr::EXIT);
    a.zero(Rdi);
    a.syscall();
    a.bind(msg);
    a.bytes(b"child");
    let asm = a.assemble().unwrap();
    let img = ElfImage {
        entry: asm.sym("entry"),
        segments: vec![ElfSegment {
            vaddr: asm.base,
            memsz: asm.code.len() as u64,
            data: asm.code,
            perm: SegPerm::RX,
        }],
        symbols: asm.symbols,
    };
    let mut p = LinuxProc::load(&img);
    match p.run(1_000_000, &mut NullHook) {
        RunExit::Exited(_) => {}
        other => panic!("unexpected {other:?}"),
    }
    assert_eq!(p.console, b"child");
}

#[test]
fn sigsegv_handler_intercepts_fault() {
    // A registered SIGSEGV handler receives control instead of crashing —
    // the signal-based flavour of crash resistance on Linux (§III-B).
    let mut a = Asm::new(0x40_0000);
    a.global("entry");
    let handler = a.fresh();
    // rt_sigaction(SIGSEGV, &act, 0, 8) with act.sa_handler at offset 0.
    a.sub_ri(Rsp, 64);
    a.mov_label_addr(Rax, handler);
    a.store(M::base(Rsp), Rax);
    a.mov_ri(Rdi, 11);
    a.mov_rr(Rsi, Rsp);
    a.zero(Rdx);
    a.mov_ri(R10, 8);
    a.mov_ri(Rax, nr::RT_SIGACTION);
    a.syscall();
    // Fault on purpose.
    a.mov_ri(Rdi, 0xdead_0000);
    a.load(Rax, M::base(Rdi));
    a.ud2(); // unreachable
    a.bind(handler);
    // Handler: exit(42) — prove we got here.
    a.mov_ri(Rax, nr::EXIT_GROUP);
    a.mov_ri(Rdi, 42);
    a.syscall();
    let asm = a.assemble().unwrap();
    let img = ElfImage {
        entry: asm.sym("entry"),
        segments: vec![ElfSegment {
            vaddr: asm.base,
            memsz: asm.code.len() as u64,
            data: asm.code,
            perm: SegPerm::RX,
        }],
        symbols: asm.symbols,
    };
    let mut p = LinuxProc::load(&img);
    assert_eq!(p.run(100_000, &mut NullHook), RunExit::Exited(42));
    assert!(p.crash().is_none(), "handler made the fault survivable");
}

#[test]
fn mprotect_enforces_new_permissions() {
    let mut a = Asm::new(0x40_0000);
    a.global("entry");
    // mmap a page, write, mprotect to read-only, write again (crash).
    a.zero(Rdi);
    a.mov_ri(Rsi, 0x1000);
    a.mov_ri(Rax, nr::MMAP);
    a.syscall();
    a.mov_rr(R12, Rax);
    a.store_i(M::base(R12), 7);
    a.mov_rr(Rdi, R12);
    a.mov_ri(Rsi, 0x1000);
    a.mov_ri(Rdx, 1); // PROT_READ
    a.mov_ri(Rax, nr::MPROTECT);
    a.syscall();
    a.store_i(M::base(R12), 8); // faults
    a.mov_ri(Rax, nr::EXIT_GROUP);
    a.zero(Rdi);
    a.syscall();
    let asm = a.assemble().unwrap();
    let img = ElfImage {
        entry: asm.sym("entry"),
        segments: vec![ElfSegment {
            vaddr: asm.base,
            memsz: asm.code.len() as u64,
            data: asm.code,
            perm: SegPerm::RX,
        }],
        symbols: asm.symbols,
    };
    let mut p = LinuxProc::load(&img);
    match p.run(100_000, &mut NullHook) {
        RunExit::Crashed(c) => {
            let f = c.fault.unwrap();
            assert!(f.mapped, "permission fault on mapped memory");
        }
        other => panic!("expected crash, got {other:?}"),
    }
}

#[test]
fn sendmsg_efault_on_bad_msghdr() {
    // sendmsg validates the msghdr structure itself — an invalid struct
    // pointer is an EFAULT, not a crash (a Table I row).
    let mut a = Asm::new(0x40_0000);
    a.global("entry");
    a.mov_ri(Rax, nr::SOCKET);
    a.syscall();
    a.mov_rr(Rdi, Rax);
    a.mov_ri(Rsi, 0xdead_0000); // bad msghdr
    a.mov_ri(Rax, nr::SENDMSG);
    a.syscall();
    a.cmp_ri(Rax, -14);
    a.mov_ri(Rdi, 0);
    let ne = a.fresh();
    a.jcc(Cond::Ne, ne);
    a.mov_ri(Rdi, 1);
    a.bind(ne);
    a.mov_ri(Rax, nr::EXIT_GROUP);
    a.syscall();
    let asm = a.assemble().unwrap();
    let img = ElfImage {
        entry: asm.sym("entry"),
        segments: vec![ElfSegment {
            vaddr: asm.base,
            memsz: asm.code.len() as u64,
            data: asm.code,
            perm: SegPerm::RX,
        }],
        symbols: asm.symbols,
    };
    let mut p = LinuxProc::load(&img);
    assert_eq!(p.run(100_000, &mut NullHook), RunExit::Exited(1));
    assert_eq!(p.efault_count, 1);
}
