//! # cr-os — OS personalities for the emulator
//!
//! Two operating-system personalities implement the fault-handling
//! contracts crash-resistant primitives are built from:
//!
//! * [`linux`] — processes with threads, a syscall layer that answers
//!   invalid user pointers with `-EFAULT` (never a fault), a virtual TCP
//!   network, an in-memory filesystem, epoll and signals. This hosts the
//!   five synthetic servers of Table I.
//! * [`windows`] — modules loaded from PE images, a Windows-API dispatch
//!   layer with a fuzzable corpus, and a structured-exception-handling
//!   (SEH + VEH) dispatcher that executes exception filters *in the
//!   emulator*. This hosts the browser targets of Tables II/III.
//!
//! Instrumentation attaches through [`OsHook`], which extends the plain
//! [`cr_vm::Hook`] with syscall- and API-level events — the analogue of
//! the paper's libdft/DynamoRIO tooling layers.

pub mod linux;
pub mod windows;

use cr_vm::{CoverageHook, Cpu, Hook, Memory, NullHook, PairHook};

/// Virtual-time conversion: steps per millisecond (1 step ≈ 1 µs).
pub const STEPS_PER_MS: u64 = 1000;

/// Instrumentation interface for OS-level events, extending the
/// instruction-level [`Hook`].
pub trait OsHook: Hook {
    /// The scheduler switched to thread `tid`. Hooks keeping per-thread
    /// shadow state (taint register files, pointer provenance) swap their
    /// banks here.
    fn on_schedule(&mut self, tid: u32) {
        let _ = tid;
    }

    /// A syscall is about to be dispatched. The hook may inspect *and
    /// mutate* the CPU — the discovery monitor uses this to corrupt
    /// pointer arguments ("invalidate" them, §IV-A) before the kernel
    /// reads them.
    fn on_syscall(&mut self, tid: u32, cpu: &mut Cpu, mem: &Memory) {
        let _ = (tid, cpu, mem);
    }

    /// A syscall completed with return value `ret`.
    fn on_syscall_ret(&mut self, tid: u32, nr: u64, ret: i64) {
        let _ = (tid, nr, ret);
    }

    /// A Windows API function is about to run (name, CPU at the call,
    /// and the live address space for argument classification).
    fn on_api_call(&mut self, name: &str, cpu: &Cpu, mem: &Memory) {
        let _ = (name, cpu, mem);
    }

    /// An exception was dispatched: `rip` of the faulting instruction and
    /// whether some handler accepted it (crash-resistance in action).
    fn on_exception(&mut self, rip: u64, handled: bool) {
        let _ = (rip, handled);
    }
}

impl OsHook for NullHook {}

impl OsHook for CoverageHook {}

impl<A: OsHook, B: OsHook> OsHook for PairHook<A, B> {
    fn on_schedule(&mut self, tid: u32) {
        self.0.on_schedule(tid);
        self.1.on_schedule(tid);
    }

    fn on_syscall(&mut self, tid: u32, cpu: &mut Cpu, mem: &Memory) {
        self.0.on_syscall(tid, cpu, mem);
        self.1.on_syscall(tid, cpu, mem);
    }

    fn on_syscall_ret(&mut self, tid: u32, nr: u64, ret: i64) {
        self.0.on_syscall_ret(tid, nr, ret);
        self.1.on_syscall_ret(tid, nr, ret);
    }

    fn on_api_call(&mut self, name: &str, cpu: &Cpu, mem: &Memory) {
        self.0.on_api_call(name, cpu, mem);
        self.1.on_api_call(name, cpu, mem);
    }

    fn on_exception(&mut self, rip: u64, handled: bool) {
        self.0.on_exception(rip, handled);
        self.1.on_exception(rip, handled);
    }
}
