//! Windows OS personality: PE modules, API dispatch, and structured
//! exception handling with filters executed in the emulator.
//!
//! The crash-resistance mechanics reproduced here (paper §III-B):
//!
//! * **SEH**: on a fault, the dispatcher locates the `.pdata`
//!   RUNTIME_FUNCTION covering the faulting instruction, walks its scope
//!   table, evaluates each filter (catch-all constants directly; filter
//!   *functions* by running their machine code in the emulator with a
//!   concrete exception record), and on `EXCEPTION_EXECUTE_HANDLER`
//!   transfers control to the `__except` target.
//! * **VEH**: process-wide handlers registered at runtime via
//!   `AddVectoredExceptionHandler` run before SEH; a handler returning
//!   `EXCEPTION_CONTINUE_EXECUTION` swallows the fault. (Static `.pdata`
//!   analysis cannot see these — reproducing the paper's Firefox
//!   limitation, §VII-A.)
//!
//! Every dispatched exception is appended to [`WinProc::fault_log`]; the
//! rate-based defense of §VII-C consumes that log.

pub mod api;

use crate::{OsHook, STEPS_PER_MS};
use api::{execute_api, ApiOutcome, ApiTable};
use cr_image::{FilterRef, PeImage};
use cr_vm::{Cpu, Exit, Fault, Memory, NullHook, Prot};

/// `STATUS_ACCESS_VIOLATION`.
pub const STATUS_ACCESS_VIOLATION: u32 = 0xC000_0005;
/// `STATUS_ILLEGAL_INSTRUCTION`.
pub const STATUS_ILLEGAL_INSTRUCTION: u32 = 0xC000_001D;

const TRAP_PAGE: u64 = 0x7FF7_0000_0000;
const SCRATCH: u64 = 0x7FF6_0000_0000;
const STACKS_BASE: u64 = 0x7FF5_0000_0000;
const STACK_SIZE: u64 = 0x10_0000;
const ALLOC_BASE: u64 = 0x6_0000_0000;
const QUANTUM: u64 = 256;
const FILTER_STEP_BUDGET: u64 = 100_000;

/// A loaded PE module.
#[derive(Debug, Clone)]
pub struct Module {
    /// Module (DLL) name.
    pub name: String,
    /// Load address (equals the image's preferred base).
    pub base: u64,
    /// The parsed image (headers kept for SEH dispatch).
    pub image: PeImage,
}

impl Module {
    /// Virtual address of an export.
    pub fn export(&self, name: &str) -> u64 {
        self.base + self.image.exports[name] as u64
    }

    /// Size of the module in memory.
    pub fn size(&self) -> u64 {
        self.image
            .sections
            .iter()
            .map(|s| s.rva as u64 + s.virtual_size.max(s.data.len() as u32) as u64)
            .max()
            .unwrap_or(0)
    }
}

/// One dispatched exception (the defense's raw data).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Virtual time of the exception.
    pub vtime: u64,
    /// Faulting instruction (or guarded call site for API faults).
    pub rip: u64,
    /// Faulting data address, if a memory fault.
    pub addr: Option<u64>,
    /// Whether the faulting address was mapped (permission fault).
    pub mapped: bool,
    /// Whether some handler accepted the exception.
    pub handled: bool,
}

/// Crash details for an unhandled exception.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WinCrash {
    /// Faulting instruction pointer.
    pub rip: u64,
    /// Memory fault, if any.
    pub fault: Option<Fault>,
}

/// Why [`WinProc::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WinRunExit {
    /// Nothing runnable (all threads parked/sleeping beyond budget).
    Idle,
    /// Unhandled exception terminated the process (hard crash policy).
    Crashed(WinCrash),
    /// Step budget exhausted.
    StepLimit,
}

/// Outcome of [`WinProc::call`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallOutcome {
    /// The called function returned with this `rax`.
    Returned(u64),
    /// The process crashed during the call.
    Crashed(WinCrash),
    /// Step budget exhausted.
    StepLimit,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    Runnable,
    Sleeping(u64),
    Parked,
    Exited,
}

#[derive(Debug)]
struct WinThread {
    tid: u32,
    cpu: Cpu,
    state: TState,
    stack_top: u64,
}

/// An emulated Windows process.
pub struct WinProc {
    /// Address space.
    pub mem: Memory,
    /// API table (trampoline region is mapped into `mem`).
    pub api: ApiTable,
    /// Loaded modules.
    pub modules: Vec<Module>,
    /// Exception dispatch log (for the rate-based defense).
    pub fault_log: Vec<FaultEvent>,
    /// Virtual time in steps.
    pub vtime: u64,
    /// §VII-C "restricting access violations" policy: when set, faults on
    /// *unmapped* memory are unrecoverable — no handler (VEH or SEH) is
    /// consulted — while permission faults on mapped memory (guard-page
    /// optimizations) remain handleable.
    pub strict_unmapped_policy: bool,
    veh: Vec<u64>,
    threads: Vec<WinThread>,
    next_tid: u32,
    alloc_next: u64,
    crashed: Option<WinCrash>,
    cur: usize,
}

impl std::fmt::Debug for WinProc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WinProc")
            .field("modules", &self.modules.len())
            .field("threads", &self.threads.len())
            .field("vtime", &self.vtime)
            .field("crashed", &self.crashed)
            .finish()
    }
}

impl WinProc {
    /// A process with the given API table and no modules.
    pub fn new(api: ApiTable) -> WinProc {
        let mut mem = Memory::new();
        // API trampoline region: must be executable so `call rax` lands
        // there; actual dispatch is intercepted before execution.
        mem.map(api::API_BASE, api.region_size().max(0x1000), Prot::RX);
        // Trap page (return sentinel): a single hlt.
        mem.map(TRAP_PAGE, 0x1000, Prot::RX);
        mem.poke(TRAP_PAGE, &[0xF4]).expect("trap page mapped");
        // Scratch for exception records and filter stacks.
        mem.map(SCRATCH, 0x1000, Prot::RW);
        let mut p = WinProc {
            mem,
            api,
            modules: Vec::new(),
            fault_log: Vec::new(),
            vtime: 0,
            strict_unmapped_policy: false,
            veh: Vec::new(),
            threads: Vec::new(),
            next_tid: 0,
            alloc_next: ALLOC_BASE,
            crashed: None,
            cur: 0,
        };
        p.spawn_thread(TRAP_PAGE, 0); // main thread, parked at trap
        p.threads[0].state = TState::Parked;
        p
    }

    /// Map a PE image at its preferred base.
    ///
    /// # Panics
    ///
    /// Panics if the image overlaps an already-loaded module (synthetic
    /// images are built with disjoint bases).
    pub fn load_module(&mut self, image: &PeImage) -> &Module {
        for s in &image.sections {
            let va = image.image_base + s.rva as u64;
            let size = s.virtual_size.max(s.data.len() as u32) as u64;
            let prot = Prot {
                r: s.perm.r,
                w: s.perm.w,
                x: s.perm.x,
            };
            self.mem.map(va, size.max(1), prot);
            self.mem.poke(va, &s.data).expect("section fits");
        }
        self.modules.push(Module {
            name: image.name.clone(),
            base: image.image_base,
            image: image.clone(),
        });
        self.modules.last().expect("just pushed")
    }

    /// The module containing `va`, if any.
    pub fn module_at(&self, va: u64) -> Option<&Module> {
        self.modules
            .iter()
            .find(|m| va >= m.base && va < m.base + m.size())
    }

    /// Module by name.
    pub fn module(&self, name: &str) -> Option<&Module> {
        self.modules.iter().find(|m| m.name == name)
    }

    /// Registered VEH handler addresses (runtime-only state — invisible
    /// to static `.pdata` analysis, like the paper's Firefox primitive).
    pub fn veh_handlers(&self) -> &[u64] {
        &self.veh
    }

    /// Register a VEH handler directly (targets also go through the
    /// `AddVectoredExceptionHandler` API).
    pub fn add_veh(&mut self, handler: u64) {
        self.veh.push(handler);
    }

    /// Spawn a background thread entering `entry` with `rcx = arg`.
    pub fn spawn_thread(&mut self, entry: u64, arg: u64) -> u32 {
        self.next_tid += 1;
        let tid = self.next_tid;
        let stack_top = STACKS_BASE + tid as u64 * (STACK_SIZE + 0x1000) + STACK_SIZE;
        self.mem.map(stack_top - STACK_SIZE, STACK_SIZE, Prot::RW);
        let mut cpu = Cpu::new();
        cpu.rip = entry;
        cpu.set_reg(cr_isa::Reg::Rcx, arg);
        let rsp = stack_top - 0x40;
        cpu.set_reg(cr_isa::Reg::Rsp, rsp);
        self.mem.write_u64(rsp, TRAP_PAGE).expect("stack mapped");
        self.threads.push(WinThread {
            tid,
            cpu,
            state: TState::Runnable,
            stack_top,
        });
        tid
    }

    /// Whether the process crashed.
    pub fn crash(&self) -> Option<WinCrash> {
        self.crashed
    }

    /// Whether the process is alive.
    pub fn alive(&self) -> bool {
        self.crashed.is_none()
    }

    /// Call a function on the main thread and run to completion (other
    /// threads are scheduled too). This is how workloads model "the
    /// JavaScript engine invokes a DOM/API function".
    pub fn call(
        &mut self,
        addr: u64,
        args: &[u64],
        max_steps: u64,
        hook: &mut dyn OsHook,
    ) -> CallOutcome {
        if let Some(c) = self.crashed {
            return CallOutcome::Crashed(c);
        }
        let main = 0usize;
        {
            let stack_top = self.threads[main].stack_top;
            let cpu = &mut self.threads[main].cpu;
            cpu.rip = addr;
            let mut rsp = stack_top - 0x100;
            for (i, &a) in args.iter().enumerate().take(4) {
                let regs = [
                    cr_isa::Reg::Rcx,
                    cr_isa::Reg::Rdx,
                    cr_isa::Reg::R8,
                    cr_isa::Reg::R9,
                ];
                cpu.set_reg(regs[i], a);
            }
            rsp -= 8;
            self.mem.write_u64(rsp, TRAP_PAGE).expect("stack mapped");
            cpu.set_reg(cr_isa::Reg::Rsp, rsp);
            self.threads[main].state = TState::Runnable;
            // Synthetic call event: the harness "calls" the entry, so
            // stack-walking hooks see the root frame (JS-context checks).
            let cpu_snapshot = self.threads[main].cpu.clone();
            hook.on_call(&cpu_snapshot, TRAP_PAGE, addr);
        }
        let budget_end = self.vtime.saturating_add(max_steps);
        loop {
            if let Some(c) = self.crashed {
                return CallOutcome::Crashed(c);
            }
            if self.threads[main].state == TState::Parked {
                return CallOutcome::Returned(self.threads[main].cpu.reg(cr_isa::Reg::Rax));
            }
            if self.vtime >= budget_end {
                return CallOutcome::StepLimit;
            }
            self.schedule_slice(budget_end, hook);
        }
    }

    /// Run background threads until idle/crash or budget exhaustion.
    pub fn run(&mut self, max_steps: u64, hook: &mut dyn OsHook) -> WinRunExit {
        let budget_end = self.vtime.saturating_add(max_steps);
        loop {
            if let Some(c) = self.crashed {
                return WinRunExit::Crashed(c);
            }
            if self.vtime >= budget_end {
                return WinRunExit::StepLimit;
            }
            if !self.schedule_slice(budget_end, hook) {
                return WinRunExit::Idle;
            }
        }
    }

    /// Run one scheduling slice; returns false if nothing could run.
    fn schedule_slice(&mut self, budget_end: u64, hook: &mut dyn OsHook) -> bool {
        // Wake sleepers whose deadline passed.
        let vtime = self.vtime;
        for t in &mut self.threads {
            if let TState::Sleeping(d) = t.state {
                if vtime >= d {
                    t.state = TState::Runnable;
                }
            }
        }
        let n = self.threads.len();
        let mut idx = None;
        for off in 0..n {
            let i = (self.cur + 1 + off) % n;
            if self.threads[i].state == TState::Runnable {
                idx = Some(i);
                break;
            }
        }
        let Some(i) = idx else {
            // Jump virtual time to the next sleeper, if within budget.
            let next = self
                .threads
                .iter()
                .filter_map(|t| match t.state {
                    TState::Sleeping(d) => Some(d),
                    _ => None,
                })
                .min();
            match next {
                Some(d) if d <= budget_end => {
                    self.vtime = d.max(self.vtime + 1);
                    return true;
                }
                _ => return false,
            }
        };
        self.cur = i;
        hook.on_schedule(self.threads[i].tid);
        let slice_end = budget_end.min(self.vtime + QUANTUM);
        while self.vtime < slice_end
            && self.threads[i].state == TState::Runnable
            && self.crashed.is_none()
        {
            let rip = self.threads[i].cpu.rip;
            if rip == TRAP_PAGE {
                self.threads[i].state = TState::Parked;
                break;
            }
            if self.api.contains(rip) {
                self.dispatch_api(i, hook);
                continue;
            }
            let exit = self.threads[i].cpu.step(&mut self.mem, hook);
            self.vtime += 1;
            match exit {
                Exit::Normal | Exit::Breakpoint | Exit::Hypercall | Exit::Syscall => {}
                Exit::Halt => break, // cooperative yield
                Exit::Fault(f) => {
                    self.dispatch_exception(i, STATUS_ACCESS_VIOLATION, Some(f), hook);
                    break;
                }
                Exit::IllegalInst => {
                    self.dispatch_exception(i, STATUS_ILLEGAL_INSTRUCTION, None, hook);
                    break;
                }
            }
        }
        true
    }

    fn dispatch_api(&mut self, i: usize, hook: &mut dyn OsHook) {
        let rip = self.threads[i].cpu.rip;
        let Some(spec) = self.api.spec_at(rip).cloned() else {
            self.crashed = Some(WinCrash { rip, fault: None });
            return;
        };
        hook.on_api_call(&spec.name, &self.threads[i].cpu, &self.mem);
        let (args, rsp) = {
            let cpu = &self.threads[i].cpu;
            (
                [
                    cpu.reg(cr_isa::Reg::Rcx),
                    cpu.reg(cr_isa::Reg::Rdx),
                    cpu.reg(cr_isa::Reg::R8),
                    cpu.reg(cr_isa::Reg::R9),
                ],
                cpu.reg(cr_isa::Reg::Rsp),
            )
        };
        let Ok(ret_addr) = self.mem.read_u64(rsp) else {
            self.crashed = Some(WinCrash { rip, fault: None });
            return;
        };
        // Cost of an API call in virtual time.
        self.vtime += 20;
        let outcome = execute_api(&spec, args, &mut self.mem, self.vtime);
        let finish = |p: &mut WinProc, i: usize, rax: u64| {
            let cpu = &mut p.threads[i].cpu;
            cpu.set_reg(cr_isa::Reg::Rax, rax);
            cpu.set_reg(cr_isa::Reg::Rsp, rsp + 8);
            cpu.rip = ret_addr;
        };
        match outcome {
            ApiOutcome::Returned(v) => {
                let v = if spec.name == "VirtualAlloc" {
                    let size = (args[1] + 0xFFF) & !0xFFF;
                    let addr = self.alloc_next;
                    self.alloc_next += size + 0x1000;
                    self.mem.map(addr, size, Prot::RW);
                    addr
                } else {
                    v
                };
                finish(self, i, v);
                hook.on_ret(&self.threads[i].cpu, ret_addr);
            }
            ApiOutcome::SleepFor(ms) => {
                finish(self, i, 0);
                hook.on_ret(&self.threads[i].cpu, ret_addr);
                self.threads[i].state = TState::Sleeping(self.vtime + ms * STEPS_PER_MS);
            }
            ApiOutcome::RegisterVeh(h) => {
                self.veh.push(h);
                finish(self, i, 1);
                hook.on_ret(&self.threads[i].cpu, ret_addr);
            }
            ApiOutcome::Faulted(f) => {
                // The exception unwinds to the call site: dispatch against
                // the guarded region containing the call instruction.
                finish(self, i, 0);
                hook.on_ret(&self.threads[i].cpu, ret_addr);
                let call_site = ret_addr.wrapping_sub(1);
                self.threads[i].cpu.rip = call_site;
                self.dispatch_exception(i, STATUS_ACCESS_VIOLATION, Some(f), hook);
                // If handled via scope target, rip was redirected. If the
                // dispatcher chose "resume", resume means: return from the
                // API with the error return (already set).
                if self.crashed.is_none() && self.threads[i].cpu.rip == call_site {
                    self.threads[i].cpu.rip = ret_addr;
                }
            }
        }
    }

    /// Dispatch an exception for thread `i` whose faulting instruction is
    /// at `cpu.rip`. Updates the fault log and either redirects control
    /// (handled) or records a crash.
    fn dispatch_exception(
        &mut self,
        i: usize,
        code: u32,
        fault: Option<Fault>,
        hook: &mut dyn OsHook,
    ) {
        let rip = self.threads[i].cpu.rip;
        let mut handled = false;
        let mut resume_skip = false;

        // §VII-C policy: an access to unmapped memory is always fatal.
        let policy_blocks = self.strict_unmapped_policy && matches!(fault, Some(f) if !f.mapped);

        // 1. Vectored handlers (runtime-registered, process-wide).
        for h in if policy_blocks {
            Vec::new()
        } else {
            self.veh.clone()
        } {
            let verdict = self.run_handler_code(h, code, fault);
            if verdict == -1 {
                // EXCEPTION_CONTINUE_EXECUTION: the handler repaired the
                // situation; modeled as skipping the faulting instruction.
                handled = true;
                resume_skip = true;
                break;
            }
            // 0 = EXCEPTION_CONTINUE_SEARCH → next handler.
        }

        // 2. SEH scope tables from .pdata.
        if !handled && !policy_blocks {
            if let Some((base, scopes)) = self.seh_scopes_at(rip) {
                let rva = (rip - base) as u32;
                for scope in scopes {
                    if rva < scope.begin_rva || rva >= scope.end_rva {
                        continue;
                    }
                    let verdict = match scope.filter {
                        FilterRef::CatchAll => 1,
                        FilterRef::Function(frva) => {
                            self.run_handler_code(base + frva as u64, code, fault)
                        }
                    };
                    if verdict > 0 {
                        // EXCEPTION_EXECUTE_HANDLER → __except block.
                        self.threads[i].cpu.rip = base + scope.target_rva as u64;
                        handled = true;
                        break;
                    }
                    if verdict == -1 {
                        handled = true;
                        resume_skip = true;
                        break;
                    }
                }
            }
        }

        if resume_skip {
            // Skip the faulting instruction (bounded decode; peek ignores
            // permissions since rip is executable anyway).
            let mut bytes = [0u8; 15];
            if self.mem.peek(rip, &mut bytes).is_ok() {
                if let Ok(d) = cr_isa::decode(&bytes) {
                    self.threads[i].cpu.rip = rip + d.len as u64;
                } else {
                    handled = false;
                }
            } else {
                handled = false;
            }
        }

        self.fault_log.push(FaultEvent {
            vtime: self.vtime,
            rip,
            addr: fault.map(|f| f.addr),
            mapped: fault.map(|f| f.mapped).unwrap_or(false),
            handled,
        });
        hook.on_exception(rip, handled);

        if !handled {
            self.crashed = Some(WinCrash { rip, fault });
        }
    }

    /// Scope table covering `va`, with the module base. If multiple
    /// `.pdata` entries cover the address (overlapping function ranges in
    /// malformed or padded images), prefer one with an exception handler.
    fn seh_scopes_at(&self, va: u64) -> Option<(u64, Vec<cr_image::ScopeEntry>)> {
        let m = self.module_at(va)?;
        let rva = (va - m.base) as u32;
        let rf = m
            .image
            .runtime_functions
            .iter()
            .filter(|f| rva >= f.begin_rva && rva < f.end_rva)
            .find(|f| f.unwind.handler_rva.is_some())?;
        Some((m.base, rf.unwind.scopes.clone()))
    }

    /// Execute a handler/filter function concretely in the emulator with
    /// an exception record for (`code`, `fault`). Returns `eax` as i32,
    /// or 0 (continue search) if the handler itself misbehaves.
    fn run_handler_code(&mut self, entry: u64, code: u32, fault: Option<Fault>) -> i64 {
        // Build EXCEPTION_POINTERS + EXCEPTION_RECORD in scratch.
        let ptrs = SCRATCH;
        let record = SCRATCH + 0x100;
        let context = SCRATCH + 0x400;
        let _ = self.mem.write_u64(ptrs, record);
        let _ = self.mem.write_u64(ptrs + 8, context);
        let _ = self.mem.write(record, &code.to_le_bytes());
        let _ = self.mem.write(record + 4, &0u32.to_le_bytes());
        let _ = self.mem.write_u64(record + 0x10, 0);
        let _ = self.mem.write(record + 0x18, &2u32.to_le_bytes());
        let (acc, addr) = match fault {
            Some(f) => (
                match f.access {
                    cr_vm::Access::Write => 1u64,
                    _ => 0,
                },
                f.addr,
            ),
            None => (0, 0),
        };
        let _ = self.mem.write_u64(record + 0x20, acc);
        let _ = self.mem.write_u64(record + 0x28, addr);

        let mut cpu = Cpu::new();
        cpu.rip = entry;
        cpu.set_reg(cr_isa::Reg::Rcx, ptrs);
        cpu.set_reg(cr_isa::Reg::Rdx, SCRATCH + 0x800);
        let rsp = SCRATCH + 0xF00;
        let _ = self.mem.write_u64(rsp, TRAP_PAGE);
        cpu.set_reg(cr_isa::Reg::Rsp, rsp);
        for _ in 0..FILTER_STEP_BUDGET {
            if cpu.rip == TRAP_PAGE {
                return cpu.reg(cr_isa::Reg::Rax) as u32 as i32 as i64;
            }
            match cpu.step(&mut self.mem, &mut NullHook) {
                Exit::Normal | Exit::Breakpoint | Exit::Hypercall | Exit::Syscall => {}
                Exit::Halt => {
                    if cpu.rip == TRAP_PAGE + 1 {
                        return cpu.reg(cr_isa::Reg::Rax) as u32 as i32 as i64;
                    }
                }
                Exit::Fault(_) | Exit::IllegalInst => return 0,
            }
        }
        0
    }

    /// Terminate a thread (driver-level; targets park at the trap page).
    pub fn exit_thread(&mut self, tid: u32) {
        if let Some(t) = self.threads.iter_mut().find(|t| t.tid == tid) {
            t.state = TState::Exited;
        }
    }

    /// `(tid, parked, sleeping)` snapshots for driver assertions.
    pub fn thread_states(&self) -> Vec<(u32, bool, bool)> {
        self.threads
            .iter()
            .map(|t| {
                (
                    t.tid,
                    t.state == TState::Parked || t.state == TState::Exited,
                    matches!(t.state, TState::Sleeping(_)),
                )
            })
            .collect()
    }

    /// Fuzzer entry: execute an API behaviour directly against this
    /// process's memory without any guest code.
    pub fn call_api_raw(&mut self, name: &str, args: [u64; 4]) -> ApiOutcome {
        let spec = self
            .api
            .spec_at(self.api.address_of(name))
            .cloned()
            .expect("address_of validated the name");
        self.vtime += 20;
        execute_api(&spec, args, &mut self.mem, self.vtime)
    }
}
