//! Windows API surface: curated functions plus a generated corpus.
//!
//! The paper extracts 20,672 API functions from MSDN and fuzzes the
//! 11,521 that take pointer arguments to find ~400 that handle invalid
//! pointers gracefully (§V-B). MSDN is not available here, so the corpus
//! is generated deterministically with the same funnel proportions; each
//! entry carries a concrete *behaviour spec* that the dispatcher executes,
//! so the fuzzer genuinely measures crash resistance instead of reading
//! ground truth.

use cr_vm::{Access, Fault, Memory};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Base virtual address of the API trampoline region.
pub const API_BASE: u64 = 0x7FF8_0000_0000;
/// Byte stride between API entry points.
pub const API_STRIDE: u64 = 16;

/// How an argument slot is used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArgType {
    /// Plain scalar (integer/handle).
    Scalar,
    /// Pointer the function reads `len` bytes through.
    PtrIn {
        /// Bytes read.
        len: u32,
    },
    /// Pointer the function writes `len` bytes through.
    PtrOut {
        /// Bytes written.
        len: u32,
    },
}

impl ArgType {
    /// Whether this is a pointer argument.
    pub fn is_pointer(self) -> bool {
        !matches!(self, ArgType::Scalar)
    }
}

/// Dispatcher behaviour of an API function.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApiBehavior {
    /// Validates every pointer argument first; invalid pointers produce a
    /// graceful error return — crash-resistant by construction.
    Graceful {
        /// Returned on invalid pointer.
        error_ret: u64,
        /// Returned on success.
        success_ret: u64,
    },
    /// Dereferences pointer arguments directly in user mode; an invalid
    /// pointer raises an exception at the call site.
    RawDeref {
        /// Returned on success.
        success_ret: u64,
    },
    /// §III-C "swallowed exceptions": the call dereferences its pointers
    /// across a context boundary (user→kernel→user callbacks) where the
    /// exception machinery cannot propagate; faults vanish and the call
    /// reports success either way. "The calling program has no way of
    /// detecting that an exception occurred" — useless as an oracle, and
    /// explicitly out of the paper's analysis scope.
    Swallowing {
        /// Returned unconditionally.
        ret: u64,
    },
    /// Curated special semantics (see [`SpecialApi`]).
    Special(SpecialApi),
}

/// Curated APIs with bespoke semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpecialApi {
    /// `VirtualQuery(addr, buf, len)` — the canonical by-design memory
    /// oracle (validates `buf`, reports the state of `addr`).
    VirtualQuery,
    /// `EnterCriticalSection(cs)` — the IE 11 PoC substrate: under
    /// attacker-settable conditions it dereferences `cs->DebugInfo+0x10`.
    EnterCriticalSection,
    /// `LeaveCriticalSection(cs)`.
    LeaveCriticalSection,
    /// `AddVectoredExceptionHandler(first, handler)`.
    AddVectoredExceptionHandler,
    /// `GetTickCount()` — virtual milliseconds.
    GetTickCount,
    /// `Sleep(ms)`.
    Sleep,
    /// `WriteConsoleA(h, buf, len, written, _)`.
    WriteConsole,
    /// `GetPwrCapabilities(out)` — the paper's example of a query API
    /// whose out-pointer is stack-allocated by every caller (raw deref).
    GetPwrCapabilities,
    /// `VirtualAlloc(addr, size, type, protect)`.
    VirtualAlloc,
}

/// One API function: name, prototype, behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiSpec {
    /// Function name (e.g. `ReadFile` or `ApiFn01234`).
    pub name: String,
    /// Argument slots (Windows x64: rcx, rdx, r8, r9).
    pub args: Vec<ArgType>,
    /// Dispatcher behaviour.
    pub behavior: ApiBehavior,
}

impl ApiSpec {
    /// Whether the prototype has at least one pointer argument.
    pub fn has_pointer_arg(&self) -> bool {
        self.args.iter().any(|a| a.is_pointer())
    }
}

/// The process-wide API table: specs and their trampoline addresses.
#[derive(Debug, Clone)]
pub struct ApiTable {
    specs: Vec<ApiSpec>,
    by_name: BTreeMap<String, usize>,
}

impl ApiTable {
    /// Build the curated set plus `generated` corpus functions.
    ///
    /// `graceful_fraction` of generated pointer-taking functions validate
    /// their pointers (the paper found 400 of 11,521 ≈ 3.5%).
    pub fn with_corpus(generated: usize, seed: u64) -> ApiTable {
        let mut specs = curated();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in 0..generated {
            let n_args = rng.gen_range(0..=4);
            let mut args = Vec::new();
            // Match the paper's 55.7% pointer-taking fraction.
            let wants_ptr = rng.gen_bool(0.557) && n_args > 0;
            for a in 0..n_args {
                if wants_ptr && a == 0 {
                    let len = *[4u32, 8, 16, 64].get(rng.gen_range(0..4)).unwrap();
                    if rng.gen_bool(0.5) {
                        args.push(ArgType::PtrIn { len });
                    } else {
                        args.push(ArgType::PtrOut { len });
                    }
                } else if rng.gen_bool(0.2) {
                    args.push(ArgType::PtrIn { len: 8 });
                } else {
                    args.push(ArgType::Scalar);
                }
            }
            let has_ptr = args.iter().any(|a| a.is_pointer());
            // ~3.5% of pointer-taking functions are graceful.
            let behavior = if has_ptr && rng.gen_bool(0.035) {
                ApiBehavior::Graceful {
                    error_ret: 0,
                    success_ret: 1,
                }
            } else {
                ApiBehavior::RawDeref { success_ret: 1 }
            };
            specs.push(ApiSpec {
                name: format!("ApiFn{i:05}"),
                args,
                behavior,
            });
        }
        let by_name = specs
            .iter()
            .enumerate()
            .map(|(i, s)| (s.name.clone(), i))
            .collect();
        ApiTable { specs, by_name }
    }

    /// Only the curated functions (small targets / unit tests).
    pub fn curated_only() -> ApiTable {
        ApiTable::with_corpus(0, 0)
    }

    /// All specs in address order.
    pub fn specs(&self) -> &[ApiSpec] {
        &self.specs
    }

    /// Trampoline address of the `idx`-th function.
    pub fn address_of_index(&self, idx: usize) -> u64 {
        API_BASE + idx as u64 * API_STRIDE
    }

    /// Trampoline address of `name`.
    ///
    /// # Panics
    ///
    /// Panics if the API does not exist (target build bug).
    pub fn address_of(&self, name: &str) -> u64 {
        self.address_of_index(
            *self
                .by_name
                .get(name)
                .unwrap_or_else(|| panic!("unknown API {name:?}")),
        )
    }

    /// Reverse-map an address inside the trampoline region.
    pub fn spec_at(&self, addr: u64) -> Option<&ApiSpec> {
        if addr < API_BASE {
            return None;
        }
        let idx = ((addr - API_BASE) / API_STRIDE) as usize;
        if !(addr - API_BASE).is_multiple_of(API_STRIDE) {
            return None;
        }
        self.specs.get(idx)
    }

    /// Whether `addr` lies in the trampoline region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= API_BASE && addr < API_BASE + self.specs.len() as u64 * API_STRIDE
    }

    /// Size of the trampoline region in bytes (for mapping).
    pub fn region_size(&self) -> u64 {
        (self.specs.len() as u64 * API_STRIDE + 0xFFF) & !0xFFF
    }
}

fn curated() -> Vec<ApiSpec> {
    use ApiBehavior as B;
    use ArgType as A;
    vec![
        ApiSpec {
            name: "VirtualQuery".into(),
            args: vec![A::Scalar, A::PtrOut { len: 48 }, A::Scalar],
            behavior: B::Special(SpecialApi::VirtualQuery),
        },
        ApiSpec {
            name: "EnterCriticalSection".into(),
            args: vec![A::PtrIn { len: 40 }],
            behavior: B::Special(SpecialApi::EnterCriticalSection),
        },
        ApiSpec {
            name: "LeaveCriticalSection".into(),
            args: vec![A::PtrIn { len: 40 }],
            behavior: B::Special(SpecialApi::LeaveCriticalSection),
        },
        ApiSpec {
            name: "AddVectoredExceptionHandler".into(),
            args: vec![A::Scalar, A::Scalar],
            behavior: B::Special(SpecialApi::AddVectoredExceptionHandler),
        },
        ApiSpec {
            name: "GetTickCount".into(),
            args: vec![],
            behavior: B::Special(SpecialApi::GetTickCount),
        },
        ApiSpec {
            name: "Sleep".into(),
            args: vec![A::Scalar],
            behavior: B::Special(SpecialApi::Sleep),
        },
        ApiSpec {
            name: "WriteConsoleA".into(),
            args: vec![
                A::Scalar,
                A::PtrIn { len: 1 },
                A::Scalar,
                A::PtrOut { len: 4 },
            ],
            behavior: B::Special(SpecialApi::WriteConsole),
        },
        ApiSpec {
            name: "GetPwrCapabilities".into(),
            args: vec![A::PtrOut { len: 76 }],
            behavior: B::Special(SpecialApi::GetPwrCapabilities),
        },
        ApiSpec {
            name: "VirtualAlloc".into(),
            args: vec![A::Scalar, A::Scalar, A::Scalar, A::Scalar],
            behavior: B::Special(SpecialApi::VirtualAlloc),
        },
        ApiSpec {
            name: "ReadFile".into(),
            args: vec![
                A::Scalar,
                A::PtrOut { len: 64 },
                A::Scalar,
                A::PtrOut { len: 4 },
            ],
            behavior: B::RawDeref { success_ret: 1 },
        },
        ApiSpec {
            name: "WriteFile".into(),
            args: vec![
                A::Scalar,
                A::PtrIn { len: 64 },
                A::Scalar,
                A::PtrOut { len: 4 },
            ],
            behavior: B::RawDeref { success_ret: 1 },
        },
        ApiSpec {
            name: "IsBadReadPtr".into(),
            args: vec![A::PtrIn { len: 1 }, A::Scalar],
            behavior: B::Graceful {
                error_ret: 1,
                success_ret: 0,
            },
        },
        ApiSpec {
            // User→kernel→user callback path: faults are swallowed with no
            // observable side effect (§III-C).
            name: "KiUserCallbackDispatch".into(),
            args: vec![A::PtrIn { len: 16 }, A::Scalar],
            behavior: B::Swallowing { ret: 0 },
        },
    ]
}

/// Outcome of executing an API behaviour against process memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApiOutcome {
    /// Completed with a return value.
    Returned(u64),
    /// Faulted in user mode (exception to dispatch).
    Faulted(Fault),
    /// Thread must sleep for `ms` then return 0.
    SleepFor(u64),
    /// Registered a VEH handler (address), returns a handle.
    RegisterVeh(u64),
}

/// Execute an API behaviour. Pure with respect to scheduling — the caller
/// (run loop or fuzzer) interprets the outcome.
pub fn execute_api(spec: &ApiSpec, args: [u64; 4], mem: &mut Memory, vtime: u64) -> ApiOutcome {
    match spec.behavior {
        ApiBehavior::Graceful {
            error_ret,
            success_ret,
        } => {
            for (i, a) in spec.args.iter().enumerate() {
                let ptr = args[i];
                match a {
                    ArgType::Scalar => {}
                    ArgType::PtrIn { len } => {
                        if mem.check(ptr, *len as u64, Access::Read).is_err() {
                            return ApiOutcome::Returned(error_ret);
                        }
                    }
                    ArgType::PtrOut { len } => {
                        if mem.check(ptr, *len as u64, Access::Write).is_err() {
                            return ApiOutcome::Returned(error_ret);
                        }
                    }
                }
            }
            // Touch the memory for real so taint/coverage see it.
            for (i, a) in spec.args.iter().enumerate() {
                let ptr = args[i];
                match a {
                    ArgType::PtrOut { len } => {
                        let _ = mem.write(ptr, &vec![0u8; *len as usize]);
                    }
                    ArgType::PtrIn { len } => {
                        let mut buf = vec![0u8; *len as usize];
                        let _ = mem.read(ptr, &mut buf);
                    }
                    ArgType::Scalar => {}
                }
            }
            ApiOutcome::Returned(success_ret)
        }
        ApiBehavior::RawDeref { success_ret } => {
            for (i, a) in spec.args.iter().enumerate() {
                let ptr = args[i];
                match a {
                    ArgType::Scalar => {}
                    ArgType::PtrIn { len } => {
                        let mut buf = vec![0u8; *len as usize];
                        if let Err(f) = mem.read(ptr, &mut buf) {
                            return ApiOutcome::Faulted(f);
                        }
                    }
                    ArgType::PtrOut { len } => {
                        if let Err(f) = mem.write(ptr, &vec![0u8; *len as usize]) {
                            return ApiOutcome::Faulted(f);
                        }
                    }
                }
            }
            ApiOutcome::Returned(success_ret)
        }
        ApiBehavior::Swallowing { ret } => {
            // Attempt the accesses; discard any fault without reporting.
            for (i, a) in spec.args.iter().enumerate() {
                let ptr = args[i];
                match a {
                    ArgType::Scalar => {}
                    ArgType::PtrIn { len } => {
                        let mut buf = vec![0u8; *len as usize];
                        let _ = mem.read(ptr, &mut buf);
                    }
                    ArgType::PtrOut { len } => {
                        let _ = mem.write(ptr, &vec![0u8; *len as usize]);
                    }
                }
            }
            ApiOutcome::Returned(ret)
        }
        ApiBehavior::Special(s) => execute_special(s, args, mem, vtime),
    }
}

fn execute_special(s: SpecialApi, args: [u64; 4], mem: &mut Memory, vtime: u64) -> ApiOutcome {
    match s {
        SpecialApi::VirtualQuery => {
            let (addr, buf, len) = (args[0], args[1], args[2]);
            if len < 48 || mem.check(buf, 48, Access::Write).is_err() {
                return ApiOutcome::Returned(0);
            }
            let mut info = [0u8; 48];
            let base = addr & !0xFFF;
            info[0..8].copy_from_slice(&base.to_le_bytes());
            info[8..16].copy_from_slice(&base.to_le_bytes());
            let (state, protect) = match mem.prot_at(addr) {
                Some(p) => {
                    let prot = match (p.r, p.w, p.x) {
                        (true, true, _) => 0x04u32,   // PAGE_READWRITE
                        (true, false, true) => 0x20,  // PAGE_EXECUTE_READ
                        (true, false, false) => 0x02, // PAGE_READONLY
                        _ => 0x01,                    // PAGE_NOACCESS
                    };
                    (0x1000u32, prot) // MEM_COMMIT
                }
                None => (0x10000, 0x01), // MEM_FREE
            };
            info[24..32].copy_from_slice(&0x1000u64.to_le_bytes()); // RegionSize
            info[32..36].copy_from_slice(&state.to_le_bytes());
            info[36..40].copy_from_slice(&protect.to_le_bytes());
            let _ = mem.write(buf, &info);
            ApiOutcome::Returned(48)
        }
        SpecialApi::EnterCriticalSection => {
            // CRITICAL_SECTION: +0 DebugInfo, +8 LockCount (i32),
            // +16 RecursionCount (i32), +24 OwningThread.
            let cs = args[0];
            let mut head = [0u8; 32];
            if let Err(f) = mem.read(cs, &mut head) {
                return ApiOutcome::Faulted(f);
            }
            let debug_info = u64::from_le_bytes(head[0..8].try_into().unwrap());
            let lock_count = i32::from_le_bytes(head[8..12].try_into().unwrap());
            let recursion = i32::from_le_bytes(head[16..20].try_into().unwrap());
            let owning = u64::from_le_bytes(head[24..32].try_into().unwrap());
            // The "certain circumstances" of the IE PoC: a contended-
            // looking section with debug info forces a read of
            // DebugInfo->ContentionCount at +0x10.
            if lock_count == -2 && recursion == 0 && owning == 0 && debug_info != 0 {
                let mut probe = [0u8; 4];
                if let Err(f) = mem.read(debug_info + 0x10, &mut probe) {
                    return ApiOutcome::Faulted(f);
                }
            }
            // Take the lock: LockCount = 0 (owned, uncontended).
            let _ = mem.write(cs + 8, &0i32.to_le_bytes());
            ApiOutcome::Returned(0)
        }
        SpecialApi::LeaveCriticalSection => {
            let cs = args[0];
            if let Err(f) = mem.write(cs + 8, &(-1i32).to_le_bytes()) {
                return ApiOutcome::Faulted(f);
            }
            ApiOutcome::Returned(0)
        }
        SpecialApi::AddVectoredExceptionHandler => ApiOutcome::RegisterVeh(args[1]),
        SpecialApi::GetTickCount => ApiOutcome::Returned(vtime / crate::STEPS_PER_MS),
        SpecialApi::Sleep => ApiOutcome::SleepFor(args[0]),
        SpecialApi::WriteConsole => {
            let (buf, len, written) = (args[1], args[2], args[3]);
            let mut data = vec![0u8; len as usize];
            if let Err(f) = mem.read(buf, &mut data) {
                return ApiOutcome::Faulted(f);
            }
            if written != 0 {
                let _ = mem.write(written, &(len as u32).to_le_bytes());
            }
            ApiOutcome::Returned(1)
        }
        SpecialApi::GetPwrCapabilities => {
            // Graceful query API: validates the out-pointer and reports
            // failure — a crash-resistant candidate. Unusable in practice
            // because every caller passes a stack-allocated structure
            // (the paper's first exclusion reason, §V-B).
            let out = args[0];
            if mem.check(out, 76, Access::Write).is_err() {
                return ApiOutcome::Returned(0);
            }
            let _ = mem.write(out, &[0u8; 76]);
            ApiOutcome::Returned(1)
        }
        SpecialApi::VirtualAlloc => {
            // Deterministic bump allocation in a dedicated arena.
            let size = (args[1] + 0xFFF) & !0xFFF;
            // The caller (WinProc) rewrites this to a real address; direct
            // execution (fuzzer) just reports success.
            let _ = size;
            ApiOutcome::Returned(0x6_0000_0000)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cr_vm::Prot;

    #[test]
    fn corpus_proportions() {
        let t = ApiTable::with_corpus(2000, 42);
        let total = t.specs().len();
        assert!(total > 2000);
        let with_ptr = t.specs().iter().filter(|s| s.has_pointer_arg()).count();
        let frac = with_ptr as f64 / total as f64;
        assert!((0.4..0.7).contains(&frac), "pointer fraction {frac}");
        let graceful = t
            .specs()
            .iter()
            .filter(|s| s.has_pointer_arg() && matches!(s.behavior, ApiBehavior::Graceful { .. }))
            .count();
        assert!(graceful > 0, "some graceful functions must exist");
    }

    #[test]
    fn deterministic_generation() {
        let a = ApiTable::with_corpus(100, 7);
        let b = ApiTable::with_corpus(100, 7);
        assert_eq!(a.specs(), b.specs());
    }

    #[test]
    fn address_mapping_roundtrips() {
        let t = ApiTable::curated_only();
        let addr = t.address_of("VirtualQuery");
        assert_eq!(t.spec_at(addr).unwrap().name, "VirtualQuery");
        assert!(t.contains(addr));
        assert!(!t.contains(API_BASE - 1));
        assert!(t.spec_at(addr + 1).is_none(), "misaligned address");
    }

    #[test]
    fn graceful_behavior_survives_bad_pointer() {
        let t = ApiTable::curated_only();
        let spec = t.specs().iter().find(|s| s.name == "IsBadReadPtr").unwrap();
        let mut mem = Memory::new();
        let out = execute_api(spec, [0xdead_0000, 8, 0, 0], &mut mem, 0);
        assert_eq!(out, ApiOutcome::Returned(1)); // "is bad" = 1, no fault
    }

    #[test]
    fn rawderef_behavior_faults() {
        let t = ApiTable::curated_only();
        let spec = t.specs().iter().find(|s| s.name == "ReadFile").unwrap();
        let mut mem = Memory::new();
        match execute_api(spec, [4, 0xdead_0000, 64, 0], &mut mem, 0) {
            ApiOutcome::Faulted(f) => assert_eq!(f.addr, 0xdead_0000),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn swallowing_api_gives_no_feedback() {
        // The §III-C class: invalid and valid pointers are observationally
        // identical — success either way, no exception, no error state.
        let t = ApiTable::curated_only();
        let spec = t
            .specs()
            .iter()
            .find(|s| s.name == "KiUserCallbackDispatch")
            .unwrap();
        let mut mem = Memory::new();
        mem.map(0x5000, 0x1000, Prot::RW);
        let good = execute_api(spec, [0x5000, 0, 0, 0], &mut mem, 0);
        let bad = execute_api(spec, [0xdead_0000, 0, 0, 0], &mut mem, 0);
        assert_eq!(good, bad, "no way to tell mapped from unmapped");
        assert_eq!(good, ApiOutcome::Returned(0));
    }

    #[test]
    fn swallowing_api_is_not_a_graceful_candidate_confusion() {
        // The fuzzer will see it as "crash-resistant" (it returns), but it
        // can never be a *memory oracle*: both outcomes are identical, so
        // the inference step of the probe loop has nothing to read.
        let t = ApiTable::curated_only();
        let spec = t
            .specs()
            .iter()
            .find(|s| s.name == "KiUserCallbackDispatch")
            .unwrap();
        assert!(matches!(spec.behavior, ApiBehavior::Swallowing { .. }));
    }

    #[test]
    fn virtual_query_is_a_memory_oracle() {
        let t = ApiTable::curated_only();
        let spec = t.specs().iter().find(|s| s.name == "VirtualQuery").unwrap();
        let mut mem = Memory::new();
        mem.map(0x5000, 0x1000, Prot::RW); // buf
        mem.map(0x9000, 0x1000, Prot::RX); // probed region
                                           // Probe mapped memory.
        assert_eq!(
            execute_api(spec, [0x9000, 0x5000, 48, 0], &mut mem, 0),
            ApiOutcome::Returned(48)
        );
        let state = mem.read_width(0x5000 + 32, 4).unwrap() as u32;
        assert_eq!(state, 0x1000, "MEM_COMMIT");
        // Probe unmapped memory — still no fault, different answer.
        assert_eq!(
            execute_api(spec, [0xdead_0000, 0x5000, 48, 0], &mut mem, 0),
            ApiOutcome::Returned(48)
        );
        let state = mem.read_width(0x5000 + 32, 4).unwrap() as u32;
        assert_eq!(state, 0x10000, "MEM_FREE");
    }

    #[test]
    fn enter_critical_section_probes_debug_info() {
        let t = ApiTable::curated_only();
        let spec = t
            .specs()
            .iter()
            .find(|s| s.name == "EnterCriticalSection")
            .unwrap();
        let mut mem = Memory::new();
        mem.map(0x5000, 0x1000, Prot::RW);
        // Benign CS: no forced circumstances → no probe, lock taken.
        mem.write_u64(0x5000, 0xdead_0000).unwrap(); // DebugInfo (bad!)
        mem.write(0x5008, &(-1i32).to_le_bytes()).unwrap(); // LockCount free
        assert_eq!(
            execute_api(spec, [0x5000, 0, 0, 0], &mut mem, 0),
            ApiOutcome::Returned(0)
        );
        // Forced circumstances: LockCount = -2 → probes DebugInfo+0x10.
        mem.write(0x5008, &(-2i32).to_le_bytes()).unwrap();
        mem.write(0x5010, &0i32.to_le_bytes()).unwrap();
        mem.write_u64(0x5018, 0).unwrap();
        match execute_api(spec, [0x5000, 0, 0, 0], &mut mem, 0) {
            ApiOutcome::Faulted(f) => assert_eq!(f.addr, 0xdead_0010),
            other => panic!("{other:?}"),
        }
    }
}
