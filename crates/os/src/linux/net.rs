//! Virtual TCP network shared between the emulated server and the test
//! driver (the "monitor" of the paper's §IV-A).
//!
//! The driver plays the role of libdft's controlling client: it opens
//! connections to the server's listening ports, injects request bytes and
//! reads responses, all deterministically between scheduler slices.

use std::collections::{HashMap, VecDeque};

/// Identifier of one TCP connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnId(pub u32);

#[derive(Debug, Default)]
struct Conn {
    /// Bytes in flight from client (driver) to server.
    to_server: VecDeque<u8>,
    /// Bytes in flight from server to client.
    to_client: VecDeque<u8>,
    client_closed: bool,
    server_closed: bool,
}

/// The network fabric: listeners, pending connects, live connections.
#[derive(Debug, Default)]
pub struct VirtualNet {
    next_conn: u32,
    /// Port → queue of connections awaiting `accept`.
    backlog: HashMap<u16, VecDeque<ConnId>>,
    /// Ports with a listening socket.
    listening: HashMap<u16, bool>,
    conns: HashMap<ConnId, Conn>,
}

impl VirtualNet {
    /// An empty network.
    pub fn new() -> VirtualNet {
        VirtualNet::default()
    }

    /// Server side: start listening on `port`.
    pub fn listen(&mut self, port: u16) {
        self.listening.insert(port, true);
        self.backlog.entry(port).or_default();
    }

    /// Whether `port` has a listener.
    pub fn is_listening(&self, port: u16) -> bool {
        self.listening.get(&port).copied().unwrap_or(false)
    }

    /// Driver side: open a client connection to `port`.
    ///
    /// Returns `None` if nothing is listening.
    pub fn client_connect(&mut self, port: u16) -> Option<ConnId> {
        if !self.is_listening(port) {
            return None;
        }
        self.next_conn += 1;
        let id = ConnId(self.next_conn);
        self.conns.insert(id, Conn::default());
        self.backlog.get_mut(&port).expect("listener").push_back(id);
        Some(id)
    }

    /// Server side: accept a pending connection on `port`.
    pub fn accept(&mut self, port: u16) -> Option<ConnId> {
        self.backlog.get_mut(&port)?.pop_front()
    }

    /// Whether `port` has a connection waiting to be accepted.
    pub fn has_pending(&self, port: u16) -> bool {
        self.backlog
            .get(&port)
            .map(|q| !q.is_empty())
            .unwrap_or(false)
    }

    /// Driver side: send bytes to the server.
    pub fn client_send(&mut self, id: ConnId, data: &[u8]) {
        if let Some(c) = self.conns.get_mut(&id) {
            c.to_server.extend(data.iter().copied());
        }
    }

    /// Driver side: read up to `max` response bytes.
    pub fn client_recv(&mut self, id: ConnId, max: usize) -> Vec<u8> {
        let Some(c) = self.conns.get_mut(&id) else {
            return Vec::new();
        };
        let n = max.min(c.to_client.len());
        c.to_client.drain(..n).collect()
    }

    /// Driver side: close the client end.
    pub fn client_close(&mut self, id: ConnId) {
        if let Some(c) = self.conns.get_mut(&id) {
            c.client_closed = true;
        }
    }

    /// Whether the server closed its end of the connection.
    pub fn server_closed(&self, id: ConnId) -> bool {
        self.conns.get(&id).map(|c| c.server_closed).unwrap_or(true)
    }

    /// Server side: bytes available to read.
    pub fn server_readable(&self, id: ConnId) -> bool {
        self.conns
            .get(&id)
            .map(|c| !c.to_server.is_empty() || c.client_closed)
            .unwrap_or(false)
    }

    /// Server side: read up to `max` bytes. `None` means "would block";
    /// `Some(empty)` means EOF (client closed).
    pub fn server_recv(&mut self, id: ConnId, max: usize) -> Option<Vec<u8>> {
        let c = self.conns.get_mut(&id)?;
        if c.to_server.is_empty() {
            if c.client_closed {
                return Some(Vec::new()); // EOF
            }
            return None; // would block
        }
        let n = max.min(c.to_server.len());
        Some(c.to_server.drain(..n).collect())
    }

    /// Server side: send bytes to the client. Returns bytes accepted.
    pub fn server_send(&mut self, id: ConnId, data: &[u8]) -> usize {
        match self.conns.get_mut(&id) {
            Some(c) if !c.client_closed => {
                c.to_client.extend(data.iter().copied());
                data.len()
            }
            _ => 0,
        }
    }

    /// Server side: close the server end.
    pub fn server_close(&mut self, id: ConnId) {
        if let Some(c) = self.conns.get_mut(&id) {
            c.server_closed = true;
        }
    }

    /// Response bytes queued for the client (driver-side visibility).
    pub fn client_pending(&self, id: ConnId) -> usize {
        self.conns.get(&id).map(|c| c.to_client.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_accept_send_recv() {
        let mut net = VirtualNet::new();
        net.listen(8080);
        let id = net.client_connect(8080).unwrap();
        assert!(net.has_pending(8080));
        let sid = net.accept(8080).unwrap();
        assert_eq!(sid, id);
        assert!(!net.has_pending(8080));

        net.client_send(id, b"GET /");
        assert!(net.server_readable(id));
        assert_eq!(net.server_recv(id, 3).unwrap(), b"GET".to_vec());
        assert_eq!(net.server_recv(id, 10).unwrap(), b" /".to_vec());
        assert_eq!(net.server_recv(id, 10), None, "empty + open = would block");

        net.server_send(id, b"200 OK");
        assert_eq!(net.client_recv(id, 100), b"200 OK".to_vec());
    }

    #[test]
    fn connect_requires_listener() {
        let mut net = VirtualNet::new();
        assert!(net.client_connect(80).is_none());
        net.listen(80);
        assert!(net.client_connect(80).is_some());
    }

    #[test]
    fn eof_after_client_close() {
        let mut net = VirtualNet::new();
        net.listen(1);
        let id = net.client_connect(1).unwrap();
        net.accept(1).unwrap();
        net.client_send(id, b"x");
        net.client_close(id);
        assert_eq!(net.server_recv(id, 10).unwrap(), b"x".to_vec());
        assert_eq!(net.server_recv(id, 10).unwrap(), Vec::<u8>::new(), "EOF");
        assert_eq!(net.server_send(id, b"late"), 0, "send after close drops");
    }

    #[test]
    fn multiple_parallel_connections() {
        let mut net = VirtualNet::new();
        net.listen(7);
        let a = net.client_connect(7).unwrap();
        let b = net.client_connect(7).unwrap();
        assert_ne!(a, b);
        assert_eq!(net.accept(7), Some(a));
        assert_eq!(net.accept(7), Some(b));
        net.client_send(b, b"second");
        assert!(!net.server_readable(a));
        assert!(net.server_readable(b));
    }
}
