//! Linux syscall numbers, errno values and per-syscall metadata.
//!
//! The metadata table drives the discovery framework: for each syscall it
//! records which argument slots are user-space pointers and whether the
//! kernel responds to an invalid pointer with `-EFAULT` (the
//! crash-resistance root cause of §III-A.1) rather than a fault.

/// x86-64 syscall numbers (subset used by the synthetic servers).
#[allow(missing_docs)]
pub mod nr {
    pub const READ: u64 = 0;
    pub const WRITE: u64 = 1;
    pub const OPEN: u64 = 2;
    pub const CLOSE: u64 = 3;
    pub const MMAP: u64 = 9;
    pub const MPROTECT: u64 = 10;
    pub const MUNMAP: u64 = 11;
    pub const RT_SIGACTION: u64 = 13;
    pub const NANOSLEEP: u64 = 35;
    pub const SOCKET: u64 = 41;
    pub const CONNECT: u64 = 42;
    pub const ACCEPT: u64 = 43;
    pub const SENDTO: u64 = 44;
    pub const RECVFROM: u64 = 45;
    pub const SENDMSG: u64 = 46;
    pub const RECVMSG: u64 = 47;
    pub const BIND: u64 = 49;
    pub const LISTEN: u64 = 50;
    pub const CLONE: u64 = 56;
    pub const EXIT: u64 = 60;
    pub const UNLINK: u64 = 87;
    pub const SYMLINK: u64 = 88;
    pub const MKDIR: u64 = 83;
    pub const CHMOD: u64 = 90;
    pub const GETTIME: u64 = 228; // clock_gettime
    pub const EXIT_GROUP: u64 = 231;
    pub const EPOLL_WAIT: u64 = 232;
    pub const EPOLL_CTL: u64 = 233;
    pub const EPOLL_CREATE1: u64 = 291;
    pub const ACCEPT4: u64 = 288;
}

/// errno values (returned negated in `rax`).
#[allow(missing_docs)]
pub mod errno {
    pub const EPERM: i64 = 1;
    pub const ENOENT: i64 = 2;
    pub const EBADF: i64 = 9;
    pub const EAGAIN: i64 = 11;
    pub const EFAULT: i64 = 14;
    pub const EEXIST: i64 = 17;
    pub const ENOTDIR: i64 = 20;
    pub const EISDIR: i64 = 21;
    pub const EINVAL: i64 = 22;
    pub const ENOSYS: i64 = 38;
    pub const ENOTSOCK: i64 = 88;
    pub const ECONNREFUSED: i64 = 111;
}

/// Human-readable name of a syscall number.
pub fn name(nr_: u64) -> &'static str {
    use nr::*;
    match nr_ {
        READ => "read",
        WRITE => "write",
        OPEN => "open",
        CLOSE => "close",
        MMAP => "mmap",
        MPROTECT => "mprotect",
        MUNMAP => "munmap",
        RT_SIGACTION => "rt_sigaction",
        NANOSLEEP => "nanosleep",
        SOCKET => "socket",
        CONNECT => "connect",
        ACCEPT => "accept",
        SENDTO => "send",
        RECVFROM => "recv",
        SENDMSG => "sendmsg",
        RECVMSG => "recvmsg",
        BIND => "bind",
        LISTEN => "listen",
        CLONE => "clone",
        EXIT => "exit",
        UNLINK => "unlink",
        SYMLINK => "symlink",
        MKDIR => "mkdir",
        CHMOD => "chmod",
        GETTIME => "clock_gettime",
        EXIT_GROUP => "exit_group",
        EPOLL_WAIT => "epoll_wait",
        EPOLL_CTL => "epoll_ctl",
        EPOLL_CREATE1 => "epoll_create1",
        ACCEPT4 => "accept4",
        _ => "unknown",
    }
}

/// Argument slots (0-based, in `rdi,rsi,rdx,r10,r8,r9` order) that carry
/// user-space pointers the kernel dereferences.
pub fn pointer_args(nr_: u64) -> &'static [usize] {
    use nr::*;
    match nr_ {
        READ | WRITE => &[1],
        OPEN => &[0],
        CONNECT | BIND => &[1],
        ACCEPT | ACCEPT4 => &[1, 2],
        SENDTO | RECVFROM => &[1],
        SENDMSG | RECVMSG => &[1],
        UNLINK | CHMOD | MKDIR => &[0],
        SYMLINK => &[0, 1],
        NANOSLEEP => &[0],
        EPOLL_WAIT => &[1],
        EPOLL_CTL => &[3],
        RT_SIGACTION => &[1],
        GETTIME => &[1],
        _ => &[],
    }
}

/// Whether the kernel reports an invalid user pointer for this syscall
/// with `-EFAULT` instead of faulting the process. (On real Linux this is
/// true for essentially all pointer-taking syscalls; the list mirrors the
/// one the paper maintains for its monitor.)
pub fn efault_capable(nr_: u64) -> bool {
    !pointer_args(nr_).is_empty()
}

/// Syscalls that appear as rows of the paper's Table I.
pub const TABLE1_SYSCALLS: &[u64] = &[
    nr::CHMOD,
    nr::CONNECT,
    nr::EPOLL_WAIT,
    nr::MKDIR,
    nr::OPEN,
    nr::READ,
    nr::RECVFROM,
    nr::SENDTO,
    nr::SENDMSG,
    nr::SYMLINK,
    nr::UNLINK,
    nr::WRITE,
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_resolve() {
        assert_eq!(name(nr::READ), "read");
        assert_eq!(name(nr::EPOLL_WAIT), "epoll_wait");
        assert_eq!(name(9999), "unknown");
    }

    #[test]
    fn pointer_metadata() {
        assert_eq!(pointer_args(nr::READ), &[1]);
        assert_eq!(pointer_args(nr::SYMLINK), &[0, 1]);
        assert!(pointer_args(nr::CLOSE).is_empty());
        assert!(efault_capable(nr::RECVFROM));
        assert!(!efault_capable(nr::LISTEN));
    }

    #[test]
    fn table1_rows_are_efault_capable() {
        for &s in TABLE1_SYSCALLS {
            assert!(efault_capable(s), "{} must be EFAULT-capable", name(s));
        }
    }
}
