//! Linux OS personality: processes, threads, syscalls with `-EFAULT`
//! semantics, a virtual network, an in-memory filesystem and signals.
//!
//! The defining behaviour for this paper: **every syscall validates user
//! pointers and reports `-EFAULT` instead of faulting the process**. A
//! server that checks syscall return values therefore survives probes of
//! arbitrary addresses — the crash-resistant primitive class of §III-A.1.

pub mod fs;
pub mod net;
pub mod syscall;

use crate::{OsHook, STEPS_PER_MS};
use cr_image::ElfImage;
use cr_vm::{Access, Cpu, Exit, Fault, Hook, Memory, Prot};
use fs::{FsError, Vfs};
use net::{ConnId, VirtualNet};
use std::collections::HashMap;
use syscall::{errno, nr};

/// SIGSEGV signal number.
pub const SIGSEGV: u32 = 11;

const QUANTUM: u64 = 256;
const STACK_SIZE: u64 = 0x10_0000;
const STACK_TOP: u64 = 0x7FFF_F000_0000;
const MMAP_BASE: u64 = 0x7F00_0000_0000;

/// What a thread is waiting for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Wait {
    /// Readable bytes (or EOF) on a connection.
    ConnReadable(ConnId),
    /// A pending connection on a listening port.
    Accept(u16),
    /// Any readiness among an epoll fd's interests.
    Epoll(i32),
    /// Pure timer.
    Sleep,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ThreadState {
    Runnable,
    Blocked { wait: Wait, deadline: Option<u64> },
    Exited,
}

/// One thread of the emulated process.
#[derive(Debug)]
pub struct Thread {
    /// Thread id (main thread is 1).
    pub tid: u32,
    /// Architectural state.
    pub cpu: Cpu,
    state: ThreadState,
    /// Saved syscall to re-dispatch when the wait condition is met.
    pending: Option<(u64, [u64; 6])>,
    /// Set when the thread was woken by its timer (not by readiness).
    timer_fired: bool,
}

impl Thread {
    /// Whether the thread has exited.
    pub fn exited(&self) -> bool {
        self.state == ThreadState::Exited
    }

    /// Whether the thread is blocked in a syscall.
    pub fn blocked(&self) -> bool {
        matches!(self.state, ThreadState::Blocked { .. })
    }
}

#[derive(Debug)]
enum FdObj {
    Console,
    Socket { port: Option<u16>, listening: bool },
    Conn(ConnId),
    File { path: String, pos: usize },
    Epoll { interests: Vec<(i32, u64)> },
}

/// Details of an unhandled fault (process crash).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashInfo {
    /// Faulting thread.
    pub tid: u32,
    /// Instruction pointer at the fault.
    pub rip: u64,
    /// The memory fault (None for illegal instructions).
    pub fault: Option<Fault>,
    /// Delivered signal number (SIGSEGV / SIGILL).
    pub signal: u32,
}

/// Why [`LinuxProc::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunExit {
    /// Every live thread is blocked with no pending timer the budget can
    /// reach; the driver should inject input (or give up).
    Idle,
    /// The process called `exit_group` (or the last thread exited).
    Exited(i64),
    /// Unhandled fault — the crash the attacker wants to avoid.
    Crashed(CrashInfo),
    /// The step budget ran out while work remained.
    StepLimit,
}

/// An emulated Linux process.
pub struct LinuxProc {
    /// Address space.
    pub mem: Memory,
    /// The virtual network fabric (shared with the test driver).
    pub net: VirtualNet,
    /// The in-memory filesystem.
    pub vfs: Vfs,
    /// Bytes written to stdout/stderr.
    pub console: Vec<u8>,
    /// Virtual time in steps (1 step ≈ 1 µs).
    pub vtime: u64,
    /// Count of syscalls that returned `-EFAULT` (probe visibility).
    pub efault_count: u64,
    threads: Vec<Thread>,
    fds: Vec<Option<FdObj>>,
    sig_handlers: HashMap<u32, u64>,
    next_tid: u32,
    mmap_next: u64,
    exited: Option<i64>,
    crashed: Option<CrashInfo>,
    cur: usize,
}

impl std::fmt::Debug for LinuxProc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LinuxProc")
            .field("threads", &self.threads.len())
            .field("vtime", &self.vtime)
            .field("exited", &self.exited)
            .field("crashed", &self.crashed)
            .finish()
    }
}

impl LinuxProc {
    /// Load an ELF image and prepare the main thread.
    pub fn load(image: &ElfImage) -> LinuxProc {
        let mut mem = Memory::new();
        for seg in &image.segments {
            let prot = Prot {
                r: seg.perm.r,
                w: seg.perm.w,
                x: seg.perm.x,
            };
            mem.map(seg.vaddr, seg.memsz.max(seg.data.len() as u64), prot);
            mem.poke(seg.vaddr, &seg.data)
                .expect("segment fits its mapping");
        }
        mem.map(STACK_TOP - STACK_SIZE, STACK_SIZE, Prot::RW);
        let mut cpu = Cpu::new();
        cpu.rip = image.entry;
        cpu.set_reg(cr_isa::Reg::Rsp, STACK_TOP - 0x100);
        LinuxProc {
            mem,
            net: VirtualNet::new(),
            vfs: Vfs::new(),
            console: Vec::new(),
            vtime: 0,
            efault_count: 0,
            threads: vec![Thread {
                tid: 1,
                cpu,
                state: ThreadState::Runnable,
                pending: None,
                timer_fired: false,
            }],
            fds: vec![
                Some(FdObj::Console),
                Some(FdObj::Console),
                Some(FdObj::Console),
            ],
            sig_handlers: HashMap::new(),
            next_tid: 1,
            mmap_next: MMAP_BASE,
            exited: None,
            crashed: None,
            cur: 0,
        }
    }

    /// The process's threads.
    pub fn threads(&self) -> &[Thread] {
        &self.threads
    }

    /// Crash information, if the process crashed.
    pub fn crash(&self) -> Option<CrashInfo> {
        self.crashed
    }

    /// Whether the process is still alive (not exited, not crashed).
    pub fn alive(&self) -> bool {
        self.exited.is_none() && self.crashed.is_none()
    }

    /// Run until idle/exit/crash or for at most `max_steps` retired
    /// instructions.
    pub fn run(&mut self, max_steps: u64, hook: &mut dyn OsHook) -> RunExit {
        let budget_end = self.vtime.saturating_add(max_steps);
        loop {
            if let Some(code) = self.exited {
                return RunExit::Exited(code);
            }
            if let Some(c) = self.crashed {
                return RunExit::Crashed(c);
            }
            if self.vtime >= budget_end {
                return RunExit::StepLimit;
            }
            self.wake_ready();
            let Some(idx) = self.pick_thread() else {
                // Nobody runnable: can a timer within budget wake someone?
                match self.earliest_deadline() {
                    Some(d) if d <= budget_end => {
                        self.vtime = d.max(self.vtime + 1);
                        continue;
                    }
                    _ => return RunExit::Idle,
                }
            };
            self.cur = idx;
            self.run_thread_slice(idx, budget_end.min(self.vtime + QUANTUM), hook);
        }
    }

    fn run_thread_slice(&mut self, idx: usize, slice_end: u64, hook: &mut dyn OsHook) {
        hook.on_schedule(self.threads[idx].tid);
        // Re-dispatch a pending (blocking) syscall first if one is saved.
        // Argument registers are unchanged while blocked, so the retry
        // re-reads them and re-fires the hook — a restarted syscall
        // re-enters the kernel, which is what the corruption monitor needs.
        if let Some((nr_, _)) = self.threads[idx].pending.take() {
            let tid = self.threads[idx].tid;
            let args = {
                let cpu = &mut self.threads[idx].cpu;
                hook.on_syscall(tid, cpu, &self.mem);
                [
                    cpu.reg(cr_isa::Reg::Rdi),
                    cpu.reg(cr_isa::Reg::Rsi),
                    cpu.reg(cr_isa::Reg::Rdx),
                    cpu.reg(cr_isa::Reg::R10),
                    cpu.reg(cr_isa::Reg::R8),
                    cpu.reg(cr_isa::Reg::R9),
                ]
            };
            self.dispatch(idx, nr_, args, hook);
            if self.threads[idx].state != ThreadState::Runnable {
                return;
            }
        }
        while self.vtime < slice_end
            && self.threads[idx].state == ThreadState::Runnable
            && self.exited.is_none()
            && self.crashed.is_none()
        {
            let tid = self.threads[idx].tid;
            let exit = {
                let t = &mut self.threads[idx];
                t.cpu.step(&mut self.mem, hook)
            };
            self.vtime += 1;
            match exit {
                Exit::Normal | Exit::Breakpoint => {}
                Exit::Hypercall => {}
                Exit::Halt => break, // cooperative yield
                Exit::Syscall => {
                    let (nr_, args) = {
                        let cpu = &mut self.threads[idx].cpu;
                        hook.on_syscall(tid, cpu, &self.mem);
                        let nr_ = cpu.reg(cr_isa::Reg::Rax);
                        let args = [
                            cpu.reg(cr_isa::Reg::Rdi),
                            cpu.reg(cr_isa::Reg::Rsi),
                            cpu.reg(cr_isa::Reg::Rdx),
                            cpu.reg(cr_isa::Reg::R10),
                            cpu.reg(cr_isa::Reg::R8),
                            cpu.reg(cr_isa::Reg::R9),
                        ];
                        (nr_, args)
                    };
                    self.dispatch(idx, nr_, args, hook);
                }
                Exit::Fault(f) => {
                    self.deliver_fault(idx, Some(f));
                    break;
                }
                Exit::IllegalInst => {
                    self.deliver_fault(idx, None);
                    break;
                }
            }
        }
    }

    fn deliver_fault(&mut self, idx: usize, fault: Option<Fault>) {
        let tid = self.threads[idx].tid;
        let rip = self.threads[idx].cpu.rip;
        let signal = if fault.is_some() {
            SIGSEGV
        } else {
            4 /* SIGILL */
        };
        if let Some(&handler) = self.sig_handlers.get(&signal) {
            // Minimal signal delivery: jump to the handler with the signal
            // number in rdi. (No sigreturn — handlers in our targets
            // either exit or long-jump by design.)
            let cpu = &mut self.threads[idx].cpu;
            cpu.set_reg(cr_isa::Reg::Rdi, signal as u64);
            cpu.rip = handler;
            return;
        }
        self.crashed = Some(CrashInfo {
            tid,
            rip,
            fault,
            signal,
        });
    }

    fn pick_thread(&mut self) -> Option<usize> {
        let n = self.threads.len();
        for off in 0..n {
            let i = (self.cur + 1 + off) % n;
            if self.threads[i].state == ThreadState::Runnable {
                return Some(i);
            }
        }
        None
    }

    fn earliest_deadline(&self) -> Option<u64> {
        self.threads
            .iter()
            .filter_map(|t| match t.state {
                ThreadState::Blocked {
                    deadline: Some(d), ..
                } => Some(d),
                _ => None,
            })
            .min()
    }

    fn wake_ready(&mut self) {
        let vtime = self.vtime;
        let mut to_wake = Vec::new();
        for (i, t) in self.threads.iter().enumerate() {
            let ThreadState::Blocked { wait, deadline } = t.state else {
                continue;
            };
            let timer_fired = deadline.map(|d| vtime >= d).unwrap_or(false);
            let ready = match wait {
                Wait::ConnReadable(id) => self.net.server_readable(id),
                Wait::Accept(port) => self.net.has_pending(port),
                Wait::Epoll(epfd) => self.epoll_ready_count(epfd) > 0,
                Wait::Sleep => false,
            };
            if ready || timer_fired {
                to_wake.push((i, timer_fired && !ready));
            }
        }
        for (i, by_timer) in to_wake {
            self.threads[i].state = ThreadState::Runnable;
            self.threads[i].timer_fired = by_timer;
        }
    }

    fn epoll_ready_count(&self, epfd: i32) -> usize {
        let Some(Some(FdObj::Epoll { interests })) = self.fds.get(epfd as usize) else {
            return 0;
        };
        interests
            .iter()
            .filter(|(fd, _)| match self.fds.get(*fd as usize) {
                Some(Some(FdObj::Conn(id))) => self.net.server_readable(*id),
                Some(Some(FdObj::Socket {
                    port: Some(p),
                    listening: true,
                })) => self.net.has_pending(*p),
                _ => false,
            })
            .count()
    }

    fn alloc_fd(&mut self, obj: FdObj) -> i64 {
        for (i, slot) in self.fds.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(obj);
                return i as i64;
            }
        }
        self.fds.push(Some(obj));
        (self.fds.len() - 1) as i64
    }

    fn read_cstr(&self, ptr: u64) -> Result<String, i64> {
        let mut out = Vec::new();
        for i in 0..4096 {
            let mut b = [0u8];
            self.mem.read(ptr + i, &mut b).map_err(|_| -errno::EFAULT)?;
            if b[0] == 0 {
                return Ok(String::from_utf8_lossy(&out).into_owned());
            }
            out.push(b[0]);
        }
        Err(-errno::EINVAL)
    }

    fn block(&mut self, idx: usize, nr_: u64, args: [u64; 6], wait: Wait, deadline: Option<u64>) {
        self.threads[idx].pending = Some((nr_, args));
        self.threads[idx].state = ThreadState::Blocked { wait, deadline };
    }

    fn finish(&mut self, idx: usize, nr_: u64, ret: i64, hook: &mut dyn OsHook) {
        if ret == -errno::EFAULT {
            self.efault_count += 1;
        }
        let tid = self.threads[idx].tid;
        self.threads[idx].cpu.set_reg(cr_isa::Reg::Rax, ret as u64);
        hook.on_syscall_ret(tid, nr_, ret);
    }

    #[allow(clippy::too_many_lines)]
    fn dispatch(&mut self, idx: usize, nr_: u64, args: [u64; 6], hook: &mut dyn OsHook) {
        let ret: i64 = match nr_ {
            nr::READ | nr::RECVFROM => {
                let (fd, buf, count) = (args[0] as i64, args[1], args[2]);
                let nonblock = nr_ == nr::RECVFROM && args[3] & 0x40 != 0; // MSG_DONTWAIT
                match self.fd_kind(fd) {
                    Some(FdKind::Conn(id)) => match self.net.server_recv(id, count as usize) {
                        None if nonblock => -errno::EAGAIN,
                        None => return self.block(idx, nr_, args, Wait::ConnReadable(id), None),
                        Some(data) => match self.mem.write(buf, &data) {
                            Ok(()) => data.len() as i64,
                            Err(_) => {
                                // The crash-resistant path: data already
                                // consumed in real kernels too on partial
                                // copies; we report EFAULT cleanly.
                                -errno::EFAULT
                            }
                        },
                    },
                    Some(FdKind::File) => {
                        let (path, pos) = match &self.fds[fd as usize] {
                            Some(FdObj::File { path, pos }) => (path.clone(), *pos),
                            _ => unreachable!(),
                        };
                        match self.vfs.read_file(&path) {
                            Err(_) => -errno::ENOENT,
                            Ok(data) => {
                                let n = (count as usize).min(data.len().saturating_sub(pos));
                                let chunk = data[pos..pos + n].to_vec();
                                match self.mem.write(buf, &chunk) {
                                    Ok(()) => {
                                        if let Some(FdObj::File { pos, .. }) =
                                            &mut self.fds[fd as usize]
                                        {
                                            *pos += n;
                                        }
                                        n as i64
                                    }
                                    Err(_) => -errno::EFAULT,
                                }
                            }
                        }
                    }
                    Some(FdKind::Console) => 0,
                    _ => -errno::EBADF,
                }
            }
            nr::WRITE | nr::SENDTO => {
                let (fd, buf, count) = (args[0] as i64, args[1], args[2]);
                let mut data = vec![0u8; count as usize];
                if self.mem.read(buf, &mut data).is_err() {
                    self.finish(idx, nr_, -errno::EFAULT, hook);
                    return;
                }
                match self.fd_kind(fd) {
                    Some(FdKind::Conn(id)) => self.net.server_send(id, &data) as i64,
                    Some(FdKind::Console) => {
                        self.console.extend_from_slice(&data);
                        data.len() as i64
                    }
                    Some(FdKind::File) => {
                        let path = match &self.fds[fd as usize] {
                            Some(FdObj::File { path, .. }) => path.clone(),
                            _ => unreachable!(),
                        };
                        match self.vfs.write_file(&path, &data) {
                            Ok(()) => data.len() as i64,
                            Err(_) => -errno::ENOENT,
                        }
                    }
                    _ => -errno::EBADF,
                }
            }
            nr::SENDMSG | nr::RECVMSG => {
                // struct msghdr: iov at +16, iovlen at +24 (single iovec).
                let (fd, msg) = (args[0] as i64, args[1]);
                match (self.mem.read_u64(msg + 16), self.mem.read_u64(msg + 24)) {
                    (Ok(iov), Ok(iovlen)) if iovlen >= 1 => {
                        match (self.mem.read_u64(iov), self.mem.read_u64(iov + 8)) {
                            (Ok(base), Ok(len)) => {
                                let fwd = if nr_ == nr::SENDMSG {
                                    nr::WRITE
                                } else {
                                    nr::READ
                                };
                                let a2 = [fd as u64, base, len, 0, 0, 0];
                                return self.dispatch(idx, fwd, a2, hook);
                            }
                            _ => -errno::EFAULT,
                        }
                    }
                    (Ok(_), Ok(_)) => -errno::EINVAL,
                    _ => -errno::EFAULT,
                }
            }
            nr::OPEN => {
                let flags = args[1];
                match self.read_cstr(args[0]) {
                    Err(e) => e,
                    Ok(path) => {
                        if self.vfs.exists(&path) {
                            self.alloc_fd(FdObj::File { path, pos: 0 })
                        } else if flags & 0x40 != 0 {
                            // O_CREAT
                            match self.vfs.write_file(&path, b"") {
                                Ok(()) => self.alloc_fd(FdObj::File { path, pos: 0 }),
                                Err(_) => -errno::ENOENT,
                            }
                        } else {
                            -errno::ENOENT
                        }
                    }
                }
            }
            nr::CLOSE => {
                let fd = args[0] as usize;
                match self.fds.get_mut(fd) {
                    Some(slot @ Some(_)) => {
                        if let Some(FdObj::Conn(id)) = slot {
                            self.net.server_close(*id);
                        }
                        *slot = None;
                        0
                    }
                    _ => -errno::EBADF,
                }
            }
            nr::SOCKET => self.alloc_fd(FdObj::Socket {
                port: None,
                listening: false,
            }),
            nr::BIND => {
                let (fd, addr) = (args[0] as usize, args[1]);
                let mut sa = [0u8; 4];
                if self.mem.read(addr, &mut sa).is_err() {
                    self.finish(idx, nr_, -errno::EFAULT, hook);
                    return;
                }
                let port = u16::from_be_bytes([sa[2], sa[3]]);
                match self.fds.get_mut(fd) {
                    Some(Some(FdObj::Socket { port: p, .. })) => {
                        *p = Some(port);
                        0
                    }
                    _ => -errno::ENOTSOCK,
                }
            }
            nr::LISTEN => {
                let fd = args[0] as usize;
                match self.fds.get_mut(fd) {
                    Some(Some(FdObj::Socket {
                        port: Some(p),
                        listening,
                    })) => {
                        *listening = true;
                        let p = *p;
                        self.net.listen(p);
                        0
                    }
                    Some(Some(FdObj::Socket { port: None, .. })) => -errno::EINVAL,
                    _ => -errno::ENOTSOCK,
                }
            }
            nr::ACCEPT | nr::ACCEPT4 => {
                let (fd, addr) = (args[0] as i64, args[1]);
                let nonblock = nr_ == nr::ACCEPT4 && args[3] & 0x800 != 0; // SOCK_NONBLOCK
                match self.fd_kind(fd) {
                    Some(FdKind::Listener(port)) => {
                        // addr may be NULL; a non-NULL bad pointer is an
                        // EFAULT — accept is one of Table I's rows.
                        if addr != 0 && self.mem.check(addr, 16, Access::Write).is_err() {
                            -errno::EFAULT
                        } else {
                            match self.net.accept(port) {
                                Some(id) => {
                                    if addr != 0 {
                                        let _ = self.mem.write(addr, &[0u8; 16]);
                                    }
                                    self.alloc_fd(FdObj::Conn(id))
                                }
                                None if nonblock => -errno::EAGAIN,
                                None => {
                                    return self.block(idx, nr_, args, Wait::Accept(port), None)
                                }
                            }
                        }
                    }
                    _ => -errno::EINVAL,
                }
            }
            nr::CONNECT => {
                let addr = args[1];
                let mut sa = [0u8; 4];
                if self.mem.read(addr, &mut sa).is_err() {
                    -errno::EFAULT
                } else {
                    -errno::ECONNREFUSED
                }
            }
            nr::EPOLL_CREATE1 => self.alloc_fd(FdObj::Epoll {
                interests: Vec::new(),
            }),
            nr::EPOLL_CTL => {
                let (epfd, op, fd, event) = (args[0] as usize, args[1], args[2] as i32, args[3]);
                let data = if op == 2 {
                    0 // EPOLL_CTL_DEL ignores the event pointer
                } else {
                    let mut ev = [0u8; 12];
                    if self.mem.read(event, &mut ev).is_err() {
                        self.finish(idx, nr_, -errno::EFAULT, hook);
                        return;
                    }
                    u64::from_le_bytes(ev[4..12].try_into().unwrap())
                };
                match self.fds.get_mut(epfd) {
                    Some(Some(FdObj::Epoll { interests })) => match op {
                        1 => {
                            interests.push((fd, data));
                            0
                        }
                        2 => {
                            interests.retain(|(f, _)| *f != fd);
                            0
                        }
                        3 => {
                            interests.retain(|(f, _)| *f != fd);
                            interests.push((fd, data));
                            0
                        }
                        _ => -errno::EINVAL,
                    },
                    _ => -errno::EBADF,
                }
            }
            nr::EPOLL_WAIT => {
                let (epfd, events, maxevents, timeout) =
                    (args[0] as i32, args[1], args[2] as usize, args[3] as i64);
                // THE Cherokee/PostgreSQL primitive: the kernel validates
                // the events buffer before sleeping and reports -EFAULT.
                if maxevents == 0 {
                    self.finish(idx, nr_, -errno::EINVAL, hook);
                    return;
                }
                if self
                    .mem
                    .check(events, (maxevents * 12) as u64, Access::Write)
                    .is_err()
                {
                    self.finish(idx, nr_, -errno::EFAULT, hook);
                    return;
                }
                let ready = self.epoll_ready(epfd, maxevents);
                if ready.is_empty() {
                    if timeout == 0 || std::mem::take(&mut self.threads[idx].timer_fired) {
                        0
                    } else {
                        let deadline = if timeout < 0 {
                            None
                        } else {
                            Some(self.vtime + timeout as u64 * STEPS_PER_MS)
                        };
                        return self.block(idx, nr_, args, Wait::Epoll(epfd), deadline);
                    }
                } else {
                    for (i, (_fd, data, mask)) in ready.iter().enumerate() {
                        let at = events + (i * 12) as u64;
                        let mut ev = [0u8; 12];
                        ev[0..4].copy_from_slice(&mask.to_le_bytes());
                        ev[4..12].copy_from_slice(&data.to_le_bytes());
                        let _ = self.mem.write(at, &ev);
                    }
                    ready.len() as i64
                }
            }
            nr::NANOSLEEP => {
                let req = args[0];
                let mut ts = [0u8; 16];
                if self.mem.read(req, &mut ts).is_err() {
                    -errno::EFAULT
                } else if std::mem::take(&mut self.threads[idx].timer_fired) {
                    0
                } else {
                    let sec = u64::from_le_bytes(ts[0..8].try_into().unwrap());
                    let nsec = u64::from_le_bytes(ts[8..16].try_into().unwrap());
                    let steps = sec * 1_000_000 + nsec / 1000;
                    let deadline = self.vtime + steps.max(1);
                    return self.block(idx, nr_, args, Wait::Sleep, Some(deadline));
                }
            }
            nr::RT_SIGACTION => {
                let (signo, act) = (args[0] as u32, args[1]);
                if act == 0 {
                    0
                } else {
                    match self.mem.read_u64(act) {
                        Ok(handler) => {
                            self.sig_handlers.insert(signo, handler);
                            0
                        }
                        Err(_) => -errno::EFAULT,
                    }
                }
            }
            nr::GETTIME => {
                let ts = args[1];
                let sec = self.vtime / 1_000_000;
                let nsec = (self.vtime % 1_000_000) * 1000;
                let mut b = [0u8; 16];
                b[0..8].copy_from_slice(&sec.to_le_bytes());
                b[8..16].copy_from_slice(&nsec.to_le_bytes());
                match self.mem.write(ts, &b) {
                    Ok(()) => 0,
                    Err(_) => -errno::EFAULT,
                }
            }
            nr::MMAP => {
                let len = (args[1] + 0xFFF) & !0xFFF;
                let addr = self.mmap_next;
                self.mmap_next += len + 0x1000;
                self.mem.map(addr, len, Prot::RW);
                addr as i64
            }
            nr::MPROTECT => {
                let prot = args[2];
                self.mem.protect(
                    args[0],
                    args[1],
                    Prot {
                        r: prot & 1 != 0,
                        w: prot & 2 != 0,
                        x: prot & 4 != 0,
                    },
                );
                0
            }
            nr::MUNMAP => {
                self.mem.unmap(args[0], args[1]);
                0
            }
            nr::CLONE => {
                // Simplified clone: new thread, child stack = args[1],
                // child sees rax = 0.
                self.next_tid += 1;
                let tid = self.next_tid + 1;
                let mut cpu = self.threads[idx].cpu.clone();
                cpu.set_reg(cr_isa::Reg::Rax, 0);
                cpu.set_reg(cr_isa::Reg::Rsp, args[1]);
                self.threads.push(Thread {
                    tid,
                    cpu,
                    state: ThreadState::Runnable,
                    pending: None,
                    timer_fired: false,
                });
                tid as i64
            }
            nr::EXIT => {
                self.threads[idx].state = ThreadState::Exited;
                if self.threads.iter().all(|t| t.state == ThreadState::Exited) {
                    self.exited = Some(args[0] as i64);
                }
                hook.on_syscall_ret(self.threads[idx].tid, nr_, 0);
                return;
            }
            nr::EXIT_GROUP => {
                self.exited = Some(args[0] as i64);
                hook.on_syscall_ret(self.threads[idx].tid, nr_, 0);
                return;
            }
            nr::CHMOD => match self.read_cstr(args[0]) {
                Err(e) => e,
                Ok(path) => match self.vfs.chmod(&path, args[1] as u32) {
                    Ok(()) => 0,
                    Err(e) => fs_errno(e),
                },
            },
            nr::MKDIR => match self.read_cstr(args[0]) {
                Err(e) => e,
                Ok(path) => match self.vfs.mkdir(&path) {
                    Ok(()) => 0,
                    Err(e) => fs_errno(e),
                },
            },
            nr::UNLINK => match self.read_cstr(args[0]) {
                Err(e) => e,
                Ok(path) => match self.vfs.unlink(&path) {
                    Ok(()) => 0,
                    Err(e) => fs_errno(e),
                },
            },
            nr::SYMLINK => match (self.read_cstr(args[0]), self.read_cstr(args[1])) {
                (Ok(t), Ok(l)) => match self.vfs.symlink(&t, &l) {
                    Ok(()) => 0,
                    Err(e) => fs_errno(e),
                },
                (Err(e), _) | (_, Err(e)) => e,
            },
            _ => -errno::ENOSYS,
        };
        self.finish(idx, nr_, ret, hook);
    }

    fn epoll_ready(&self, epfd: i32, max: usize) -> Vec<(i32, u64, u32)> {
        let Some(Some(FdObj::Epoll { interests })) = self.fds.get(epfd as usize) else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for &(fd, data) in interests {
            if out.len() >= max {
                break;
            }
            let ready = match self.fds.get(fd as usize) {
                Some(Some(FdObj::Conn(id))) => self.net.server_readable(*id),
                Some(Some(FdObj::Socket {
                    port: Some(p),
                    listening: true,
                })) => self.net.has_pending(*p),
                _ => false,
            };
            if ready {
                out.push((fd, data, 1u32)); // EPOLLIN
            }
        }
        out
    }

    fn fd_kind(&self, fd: i64) -> Option<FdKind> {
        if fd < 0 {
            return None;
        }
        match self.fds.get(fd as usize)? {
            Some(FdObj::Console) => Some(FdKind::Console),
            Some(FdObj::Conn(id)) => Some(FdKind::Conn(*id)),
            Some(FdObj::File { .. }) => Some(FdKind::File),
            Some(FdObj::Socket {
                port: Some(p),
                listening: true,
            }) => Some(FdKind::Listener(*p)),
            Some(FdObj::Socket { .. }) => Some(FdKind::Socket),
            Some(FdObj::Epoll { .. }) => Some(FdKind::Epoll),
            None => None,
        }
    }
}

enum FdKind {
    Console,
    Conn(ConnId),
    File,
    Listener(u16),
    Socket,
    Epoll,
}

fn fs_errno(e: FsError) -> i64 {
    match e {
        FsError::NotFound => -errno::ENOENT,
        FsError::Exists => -errno::EEXIST,
        FsError::IsDirectory => -errno::EISDIR,
        FsError::NotDirectory => -errno::ENOTDIR,
    }
}

// Re-exported hook plumbing lives in crate root; keep Hook in scope for
// dyn upcasting in run_thread_slice.
const _: fn(&mut dyn OsHook) -> &mut dyn Hook = |h| h;
