//! Tiny in-memory filesystem for the Linux personality.
//!
//! Exists so the file-flavored syscalls of Table I (`open`, `chmod`,
//! `mkdir`, `unlink`, `symlink`, `read`/`write` on files) have real
//! semantics to exercise: servers serve static files from here and the
//! driver can seed content.

use std::collections::BTreeMap;

/// Errors mapped to errno values by the syscall layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsError {
    /// `ENOENT`
    NotFound,
    /// `EEXIST`
    Exists,
    /// `EISDIR`
    IsDirectory,
    /// `ENOTDIR`
    NotDirectory,
}

#[derive(Debug, Clone)]
enum Node {
    File { data: Vec<u8>, mode: u32 },
    Dir,
    Symlink(String),
}

/// An in-memory tree keyed by absolute path strings.
#[derive(Debug, Default)]
pub struct Vfs {
    nodes: BTreeMap<String, Node>,
}

impl Vfs {
    /// An empty filesystem with just `/`.
    pub fn new() -> Vfs {
        let mut v = Vfs::default();
        v.nodes.insert("/".to_string(), Node::Dir);
        v
    }

    fn parent_exists(&self, path: &str) -> bool {
        match path.rfind('/') {
            Some(0) => true,
            Some(i) => matches!(self.nodes.get(&path[..i]), Some(Node::Dir)),
            None => false,
        }
    }

    /// Create or replace a file.
    ///
    /// # Errors
    ///
    /// `NotFound` if the parent directory is missing, `IsDirectory` if the
    /// path names a directory.
    pub fn write_file(&mut self, path: &str, data: &[u8]) -> Result<(), FsError> {
        if matches!(self.nodes.get(path), Some(Node::Dir)) {
            return Err(FsError::IsDirectory);
        }
        if !self.parent_exists(path) {
            return Err(FsError::NotFound);
        }
        self.nodes.insert(
            path.to_string(),
            Node::File {
                data: data.to_vec(),
                mode: 0o644,
            },
        );
        Ok(())
    }

    /// Read a file, following one level of symlink.
    ///
    /// # Errors
    ///
    /// `NotFound` for missing paths, `IsDirectory` for directories.
    pub fn read_file(&self, path: &str) -> Result<&[u8], FsError> {
        match self.nodes.get(path) {
            Some(Node::File { data, .. }) => Ok(data),
            Some(Node::Dir) => Err(FsError::IsDirectory),
            Some(Node::Symlink(t)) => match self.nodes.get(t) {
                Some(Node::File { data, .. }) => Ok(data),
                Some(Node::Dir) => Err(FsError::IsDirectory),
                _ => Err(FsError::NotFound),
            },
            None => Err(FsError::NotFound),
        }
    }

    /// Whether a file (or symlink to one) exists at `path`.
    pub fn exists(&self, path: &str) -> bool {
        self.nodes.contains_key(path)
    }

    /// `mkdir`.
    ///
    /// # Errors
    ///
    /// `Exists` if the path exists, `NotFound` if the parent is missing.
    pub fn mkdir(&mut self, path: &str) -> Result<(), FsError> {
        if self.nodes.contains_key(path) {
            return Err(FsError::Exists);
        }
        if !self.parent_exists(path) {
            return Err(FsError::NotFound);
        }
        self.nodes.insert(path.to_string(), Node::Dir);
        Ok(())
    }

    /// `unlink` (files and symlinks only).
    ///
    /// # Errors
    ///
    /// `NotFound` for missing paths, `IsDirectory` for directories.
    pub fn unlink(&mut self, path: &str) -> Result<(), FsError> {
        match self.nodes.get(path) {
            Some(Node::Dir) => Err(FsError::IsDirectory),
            Some(_) => {
                self.nodes.remove(path);
                Ok(())
            }
            None => Err(FsError::NotFound),
        }
    }

    /// `symlink target linkpath`.
    ///
    /// # Errors
    ///
    /// `Exists` if the link path exists, `NotFound` if its parent is
    /// missing.
    pub fn symlink(&mut self, target: &str, linkpath: &str) -> Result<(), FsError> {
        if self.nodes.contains_key(linkpath) {
            return Err(FsError::Exists);
        }
        if !self.parent_exists(linkpath) {
            return Err(FsError::NotFound);
        }
        self.nodes
            .insert(linkpath.to_string(), Node::Symlink(target.to_string()));
        Ok(())
    }

    /// `chmod`.
    ///
    /// # Errors
    ///
    /// `NotFound` for missing paths.
    pub fn chmod(&mut self, path: &str, new_mode: u32) -> Result<(), FsError> {
        match self.nodes.get_mut(path) {
            Some(Node::File { mode, .. }) => {
                *mode = new_mode;
                Ok(())
            }
            Some(_) => Ok(()),
            None => Err(FsError::NotFound),
        }
    }

    /// The mode of a file.
    pub fn mode(&self, path: &str) -> Option<u32> {
        match self.nodes.get(path) {
            Some(Node::File { mode, .. }) => Some(*mode),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn file_roundtrip() {
        let mut v = Vfs::new();
        v.write_file("/index.html", b"<html>").unwrap();
        assert_eq!(v.read_file("/index.html").unwrap(), b"<html>");
        assert_eq!(v.read_file("/missing"), Err(FsError::NotFound));
    }

    #[test]
    fn mkdir_and_nesting() {
        let mut v = Vfs::new();
        v.mkdir("/www").unwrap();
        v.write_file("/www/a.txt", b"a").unwrap();
        assert_eq!(v.mkdir("/www"), Err(FsError::Exists));
        assert_eq!(v.mkdir("/no/deep"), Err(FsError::NotFound));
        assert_eq!(v.write_file("/nodir/f", b""), Err(FsError::NotFound));
    }

    #[test]
    fn unlink_semantics() {
        let mut v = Vfs::new();
        v.write_file("/f", b"x").unwrap();
        v.mkdir("/d").unwrap();
        assert_eq!(v.unlink("/d"), Err(FsError::IsDirectory));
        v.unlink("/f").unwrap();
        assert_eq!(v.unlink("/f"), Err(FsError::NotFound));
    }

    #[test]
    fn symlink_follows() {
        let mut v = Vfs::new();
        v.write_file("/real", b"data").unwrap();
        v.symlink("/real", "/link").unwrap();
        assert_eq!(v.read_file("/link").unwrap(), b"data");
        assert_eq!(v.symlink("/real", "/link"), Err(FsError::Exists));
        v.unlink("/real").unwrap();
        assert_eq!(v.read_file("/link"), Err(FsError::NotFound));
    }

    #[test]
    fn chmod_modes() {
        let mut v = Vfs::new();
        v.write_file("/f", b"").unwrap();
        assert_eq!(v.mode("/f"), Some(0o644));
        v.chmod("/f", 0o600).unwrap();
        assert_eq!(v.mode("/f"), Some(0o600));
        assert_eq!(v.chmod("/zzz", 0o600), Err(FsError::NotFound));
    }
}
