//! Defending against crash-resistant probing — the paper's §VII-C
//! countermeasures in action:
//!
//! * the **rate-based detector** stays silent on browsing and asm.js
//!   workloads but alarms on a probing attack;
//! * the **mapped-only-AV policy** preserves the asm.js guard-page
//!   optimization while making the first unmapped probe fatal.
//!
//! ```sh
//! cargo run --release --example defense_monitor
//! ```

use cr_defense::policy::{asmjs_under_policy, probing_under_policy};
use cr_defense::RateDetector;
use cr_targets::browsers::firefox;
use cr_vm::NullHook;

fn main() {
    let det = RateDetector::default();
    println!(
        "rate-based AV anomaly detection (window {} ms, threshold {}):",
        det.window_ms, det.threshold
    );

    let mut sim = firefox::build();
    let t0 = sim.proc.vtime;
    for _ in 0..25 {
        sim.proc.call(sim.render_page, &[], 100_000, &mut NullHook);
    }
    let r = det.analyze(&sim.proc.fault_log, t0, sim.proc.vtime);
    println!(
        "  browsing:  {:>5} AVs, peak {:>4}/window → alarm: {}",
        r.handled_faults, r.peak_window, r.alarm
    );

    let mut sim = firefox::build();
    let t0 = sim.proc.vtime;
    for _ in 0..5 {
        sim.proc
            .call(sim.asmjs_bench, &[], 1_000_000, &mut NullHook);
        sim.proc.run(200_000, &mut NullHook);
    }
    let r = det.analyze(&sim.proc.fault_log, t0, sim.proc.vtime);
    println!(
        "  asm.js:    {:>5} AVs, peak {:>4}/window → alarm: {}",
        r.handled_faults, r.peak_window, r.alarm
    );

    let mut sim = firefox::build();
    let t0 = sim.proc.vtime;
    for i in 0..200u64 {
        firefox::probe(&mut sim, 0x9000_0000_0000 + i * 0x1000, &mut NullHook);
    }
    let r = det.analyze(&sim.proc.fault_log, t0, sim.proc.vtime);
    println!(
        "  probing:   {:>5} AVs, peak {:>4}/window → alarm: {}",
        r.handled_faults, r.peak_window, r.alarm
    );

    println!("\nmapped-only-AV policy:");
    let a = asmjs_under_policy(true);
    println!(
        "  asm.js under policy:  survived={} handled_faults={}",
        a.survived, a.handled_faults
    );
    let p = probing_under_policy(true, 10);
    println!(
        "  probing under policy: survived={} probes_before_crash={}",
        p.survived, p.probes_before_crash
    );
    println!("\ninformation hiding regains its 'one wrong guess = crash' guarantee");
}
