//! Discover crash-resistant syscall primitives in a server binary —
//! the paper's §IV-A pipeline against a single target.
//!
//! The framework boots the server, runs its test workload under taint +
//! pointer-provenance tracking, then re-runs it while invalidating each
//! candidate's pointer source cells and classifies the outcomes.
//!
//! ```sh
//! cargo run --example server_oracle_discovery [server-name]
//! ```

use cr_core::syscall_finder::{discover_server, Classification};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "nginx".to_string());
    let Some(target) = cr_targets::all_servers()
        .into_iter()
        .find(|t| t.name == name)
    else {
        eprintln!(
            "unknown server {name:?}; available: nginx cherokee lighttpd memcached postgresql"
        );
        std::process::exit(1);
    };

    println!("discovering crash-resistant primitives in {name} ...\n");
    let report = discover_server(&target);

    println!("observed syscalls during the test suite:");
    let names: Vec<&str> = report
        .observed_syscalls
        .iter()
        .map(|&n| cr_os::linux::syscall::name(n))
        .collect();
    println!("  {}\n", names.join(" "));

    println!("candidates (attacker-reachable pointer arguments):");
    for f in &report.findings {
        let verdict = match f.classification {
            Classification::CrashesOnInvalidation => "crashes on invalidation (±)",
            Classification::Usable {
                service_after: true,
            } => "USABLE — service survives (⊕)",
            Classification::Usable {
                service_after: false,
            } => "usable per framework, service dead (false positive)",
            Classification::NotRetriggered => "not re-triggered",
        };
        println!(
            "  {:<12} arg {}  sources {:?}  → {}",
            f.syscall_name,
            f.arg_index,
            f.sources
                .iter()
                .map(|s| format!("{s:#x}"))
                .collect::<Vec<_>>(),
            verdict
        );
    }

    let usable = report.usable().len();
    println!("\n{usable} usable primitive(s) reported by the framework");
}
