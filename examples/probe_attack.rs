//! Full §VI-style attack: defeat information hiding with each of the
//! four proof-of-concept memory oracles.
//!
//! A defender hides a SafeStack-like region at an attacker-unknown
//! address; the attacker scans the candidate window with a crash-
//! resistant oracle and locates it without a single crash.
//!
//! ```sh
//! cargo run --release --example probe_attack
//! ```

use cr_exploits::cherokee::CherokeeOracle;
use cr_exploits::firefox::FirefoxOracle;
use cr_exploits::ie::IeOracle;
use cr_exploits::nginx::NginxOracle;
use cr_exploits::{find_region, MemoryOracle, ProbeResult};

fn main() {
    // --- Internet Explorer 11 ------------------------------------------------
    println!("[1/4] IE 11 — MUTX::Enter / EnterCriticalSection oracle");
    let mut ie = IeOracle::new();
    let secret = 0x31_4159_0000u64;
    ie.sim().proc.mem.map(secret, 0x4000, cr_vm::Prot::RW);
    let found = find_region(&mut ie, 0x31_4100_0000, 0x31_4200_0000, 0x1_0000);
    println!(
        "      found {found:?} in {} probes, crashes: {}\n",
        ie.probes(),
        ie.crashed() as u8
    );

    // --- Firefox 46 -----------------------------------------------------------
    println!("[2/4] Firefox 46 — background thread + ntdll VEH oracle");
    let mut fx = FirefoxOracle::new();
    let secret = 0x27_1828_1000u64;
    fx.sim().proc.mem.map(secret, 0x2000, cr_vm::Prot::RW);
    let found = find_region(&mut fx, secret - 0x10_0000, secret + 0x10_0000, 0x1000);
    println!(
        "      found {found:?} in {} probes, crashes: {}\n",
        fx.probes(),
        fx.crashed() as u8
    );

    // --- Nginx 1.9 --------------------------------------------------------------
    println!("[3/4] Nginx 1.9 — parallel-connection recv oracle");
    let mut ng = NginxOracle::new();
    let secret = 0x55_0000_4000u64;
    ng.proc().mem.map(secret, 0x1000, cr_vm::Prot::RW);
    let found = find_region(&mut ng, 0x55_0000_0000, 0x55_0001_0000, 0x1000);
    println!(
        "      found {found:?} in {} probes, crashes: {}\n",
        ng.probes(),
        ng.crashed() as u8
    );

    // --- Cherokee 1.2 -------------------------------------------------------------
    println!("[4/4] Cherokee 1.2 — epoll_wait timing side channel");
    let mut ck = CherokeeOracle::new();
    println!(
        "      calibrated healthy batch latency: {} steps",
        ck.baseline()
    );
    ck.proc().mem.map(0x77_0000_0000, 0x1000, cr_vm::Prot::RW);
    let mapped = ck.probe(0x77_0000_0000);
    let unmapped = ck.probe(0x88_0000_0000);
    println!(
        "      mapped probe: {mapped:?}   unmapped probe: {unmapped:?}   crashes: {}",
        ck.crashed() as u8
    );
    assert_eq!(mapped, ProbeResult::Mapped);
    assert_eq!(unmapped, ProbeResult::Unmapped);

    println!("\ninformation hiding defeated four ways; total crashes: 0");
}
