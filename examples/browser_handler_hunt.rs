//! Hunt for AV-capable exception handlers in browser modules — the
//! paper's §IV-C pipeline: parse `.pdata`, symbolically vet every filter,
//! cross-reference with a browsing trace, and print the candidates an
//! attacker could actually trigger.
//!
//! ```sh
//! cargo run --example browser_handler_hunt
//! ```

use cr_core::seh::{analyze_module, on_path_count, FilterClass};
use cr_os::OsHook;
use cr_vm::{CoverageHook, Hook};

struct Cov(CoverageHook);

impl Hook for Cov {
    fn on_inst(
        &mut self,
        cpu: &cr_vm::Cpu,
        mem: &mut cr_vm::Memory,
        inst: &cr_isa::Inst,
        va: u64,
        len: usize,
    ) {
        self.0.on_inst(cpu, mem, inst, va, len);
    }
}

impl OsHook for Cov {}

fn main() {
    println!("building ie-sim (8 system DLLs + host) and browsing 3 sites ...");
    let mut sim = cr_targets::browsers::ie::build();
    let mut cov = Cov(CoverageHook::new());
    assert!(cr_targets::browsers::ie::browse(&mut sim, 3, &mut cov));
    println!(
        "trace: {} unique instruction addresses\n",
        cov.0.visited.len()
    );

    for module in sim.proc.modules.clone() {
        if module.name == "iexplore.exe" {
            continue;
        }
        let analysis = analyze_module(&module.image);
        let on_path = on_path_count(&analysis, &cov.0.visited);
        println!(
            "{:<14} guarded {:>3} → AV-capable {:>3} → on path {:>3}   (filters {:>3} → {:>3}, undecided {})",
            module.name,
            analysis.guarded_before,
            analysis.guarded_after,
            on_path,
            analysis.filters_before,
            analysis.filters_after,
            analysis.filters_undecided,
        );
        // Show a few concrete candidates with their vetting evidence.
        for f in analysis.functions.iter().filter(|f| f.survives()).take(2) {
            for s in f.scopes.iter().filter(|s| s.class.survives()).take(1) {
                let why = match &s.class {
                    FilterClass::CatchAll => "scope filter field = 1 (catch-all)".to_string(),
                    FilterClass::AcceptsAv { witness } => {
                        format!("solver witness: ExceptionCode = {witness:#x}")
                    }
                    FilterClass::Undecided { reason } => format!("undecided: {reason}"),
                    FilterClass::RejectsAv => unreachable!(),
                };
                println!(
                    "      candidate @ {:#x}..{:#x} — {}",
                    s.begin_va, s.end_va, why
                );
            }
        }
    }
}
