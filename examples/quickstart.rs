//! Quickstart: the three-step probe loop of the paper's Figure 1,
//! end to end, in under a minute of reading.
//!
//! 1. **Overwrite a value in memory** — the attacker's write primitive
//!    corrupts a pointer the program will consume.
//! 2. **Trigger execution of probing** — a legitimately reachable code
//!    path (here: completing an HTTP request) makes the server pass the
//!    corrupted pointer to `recv`.
//! 3. **Infer the state** — the kernel answers `-EFAULT` for unmapped
//!    memory (connection closed, no data) and success for mapped memory
//!    (response arrives). No crash either way.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use cr_exploits::nginx::NginxOracle;
use cr_exploits::{MemoryOracle, ProbeResult};

fn main() {
    println!("booting nginx-sim and standing up the recv memory oracle ...");
    let mut oracle = NginxOracle::new();

    // A defense hides a secret region somewhere the attacker has no
    // pointer to (think: a SafeStack or CPI's metadata table).
    let secret = 0x55_0000_3000u64;
    oracle.proc().mem.map(secret, 0x1000, cr_vm::Prot::RW);
    println!("defender hid a region at {secret:#x} (no references anywhere)\n");

    for addr in [secret - 0x2000, secret - 0x1000, secret, secret + 0x1000] {
        let verdict = oracle.probe(addr);
        println!(
            "probe {addr:#014x} → {}",
            match verdict {
                ProbeResult::Mapped => "MAPPED   ← found something",
                ProbeResult::Unmapped => "unmapped",
                ProbeResult::Inconclusive => "inconclusive",
            }
        );
    }

    println!(
        "\n{} probes issued, crashes: {} — the server never noticed.",
        oracle.probes(),
        if oracle.crashed() { "YES" } else { "zero" }
    );
    assert!(!oracle.crashed());
}
